//! The static Table-1 analyzer: a clean component, a deadlock-seeded
//! mutant of it, and the static-vs-dynamic agreement report on the
//! lock-order specimen.
//!
//! Run with `cargo run --example static_analysis`.

use jcc_core::analyze::{analyze, Severity};
use jcc_core::model::examples;
use jcc_core::model::mutate::{all_mutants, MutationKind};
use jcc_core::pipeline::Pipeline;
use jcc_core::report::render_findings_with_evidence;
use jcc_core::vm::{CallSpec, ExploreConfig, ThreadSpec};

fn main() {
    // 1. The correct Figure-2 monitor: nothing above advisory severity.
    let component = examples::producer_consumer();
    let report = analyze(&component);
    println!("== {} (correct) ==", component.name);
    if report.diagnostics.is_empty() {
        println!("no diagnostics");
    } else {
        print!("{}", report.render());
    }
    assert_eq!(report.count(Severity::High), 0);

    // 2. A deadlock-seeded mutant: hold-lock-forever in `send`. The
    //    analyzer names the class (FF-T4) before any test runs.
    let (mutation, mutant) = all_mutants(&component)
        .into_iter()
        .find(|(m, _)| m.kind == MutationKind::HoldLockForever)
        .expect("corpus components have hold-lock-forever mutants");
    println!("\n== {} + {} ==", component.name, mutation.label());
    let report = analyze(&mutant);
    print!("{}", report.render());
    assert!(report.classes(Severity::High).contains("FF-T4"));

    // 3. Static prediction vs dynamic observation on the lock-order
    //    specimen: the cycle is visible in the source, and exhaustive
    //    exploration confirms the deadlock it predicts.
    let pipeline = Pipeline::new(examples::lock_order_deadlock()).unwrap();
    let scenario = vec![
        ThreadSpec {
            name: "fwd".into(),
            calls: vec![CallSpec::new("forward", vec![])],
        },
        ThreadSpec {
            name: "bwd".into(),
            calls: vec![CallSpec::new("backward", vec![])],
        },
    ];
    let evidence = pipeline.explore_evidence(&scenario, &ExploreConfig::default(), None);
    println!("\n== LockOrder: static prediction vs dynamic observation ==");
    print!(
        "{}",
        render_findings_with_evidence(&pipeline.analysis, &evidence.findings, Some(&evidence))
    );

    // The machine-readable form, for tooling.
    println!("\n== JSON (schema {}) ==", jcc_core::analyze::SCHEMA);
    println!("{}", pipeline.analysis.to_json_string());
}
