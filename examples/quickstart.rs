//! Quickstart: the whole method on one page.
//!
//! 1. Write a concurrent component in the DSL.
//! 2. Build its Concurrency Flow Graphs (CoFGs).
//! 3. Run it on the VM under a controlled schedule.
//! 4. Measure CoFG arc coverage and see what is left to test.
//!
//! Run with `cargo run --example quickstart`.

use jcc_core::cofg::{build_component_cofgs, CoverageTracker};
use jcc_core::model::parse_component;
use jcc_core::report::{render_cofg_arcs, render_coverage};
use jcc_core::vm::trace::apply_trace;
use jcc_core::vm::{compile, CallSpec, RunConfig, ThreadSpec, Value, Vm};

fn main() {
    // 1. A component: a one-slot mailbox.
    let source = r#"
        class Mailbox {
          var message: str = "";
          var present: bool = false;

          synchronized fn post(m: str) {
            while (present) { wait; }
            message = m;
            present = true;
            notifyAll;
          }

          synchronized fn fetch() -> str {
            while (!present) { wait; }
            present = false;
            notifyAll;
            return message;
          }
        }
    "#;
    let component = parse_component(source).expect("parses");
    assert!(jcc_core::model::validate(&component).is_empty());

    // 2. CoFGs: the test obligations.
    let cofgs = build_component_cofgs(&component);
    for g in &cofgs {
        println!("{}", render_cofg_arcs(g));
    }

    // 3. One controlled run: a fetcher that must block, then a poster.
    let mut vm = Vm::new(
        compile(&component).expect("compiles"),
        vec![
            ThreadSpec {
                name: "fetcher".into(),
                calls: vec![CallSpec::new("fetch", vec![])],
            },
            ThreadSpec {
                name: "poster".into(),
                calls: vec![CallSpec::new("post", vec![Value::Str("hello".into())])],
            },
        ],
    );
    let outcome = vm.run(&RunConfig::default());
    println!("run verdict: {:?} in {} steps", outcome.verdict, outcome.steps);
    for (thread, call) in outcome.all_calls() {
        println!(
            "  {}: {} -> {:?}",
            vm.thread_name(thread),
            call.method,
            call.returned
        );
    }

    // 4. Coverage: what did this one test exercise?
    let mut tracker = CoverageTracker::new(cofgs);
    apply_trace(&outcome.trace, &mut tracker);
    println!();
    println!("{}", render_coverage(&tracker));
    println!("Every uncovered arc above is a missing test case.");
}
