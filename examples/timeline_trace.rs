//! Reading a failing schedule: the lost notification (FF-T5), end to end.
//!
//! A deliberately broken "gate" monitor: `pass` waits unconditionally (no
//! predicate loop), `open_gate` notifies. When the opener's notification
//! fires *before* the passer reaches the wait set — place D of the
//! Figure-1 net — it is lost, and the passer then waits forever. The
//! exhaustive explorer finds that schedule deterministically; this example
//! shows how to *read* it: the static prediction, the classified finding,
//! the ASCII causal timeline of the witness, the CoFG arc heat against the
//! directed suite, and the Chrome-trace export for Perfetto.
//!
//! Run with `cargo run --example timeline_trace`.

use jcc_core::obs::timeline::EdgeKind;
use jcc_core::pipeline::Pipeline;
use jcc_core::report::render_findings_with_evidence;
use jcc_core::testgen::scenario::ScenarioSpace;
use jcc_core::testgen::suite::GreedyConfig;
use jcc_core::vm::{CallSpec, ExploreConfig, ThreadSpec};

/// The broken gate: `wait` outside any predicate loop, so a notification
/// that arrives early is lost and never re-checked.
const GATE_SRC: &str = r#"
class Gate {
  var open: bool = false;

  synchronized fn pass() {
    wait;
  }

  synchronized fn open_gate() {
    open = true;
    notify;
  }
}
"#;

fn main() {
    let component = jcc_core::model::parse_component(GATE_SRC).expect("gate source parses");
    println!("== Gate (deliberately broken) ==");
    println!("{}", GATE_SRC.trim());

    let pipeline = Pipeline::new(component).expect("gate validates");

    // The CoFG-directed suite for comparison: which arcs does it cover?
    let space = ScenarioSpace::new(vec![
        CallSpec::new("pass", vec![]),
        CallSpec::new("open_gate", vec![]),
    ]);
    let directed = pipeline.directed_suite(&space, &GreedyConfig::default());

    // One passer, one opener — exhaustively explored. Some schedule loses
    // the notification; the explorer's first witness is deterministic.
    let scenario = vec![
        ThreadSpec {
            name: "passer".into(),
            calls: vec![CallSpec::new("pass", vec![])],
        },
        ThreadSpec {
            name: "opener".into(),
            calls: vec![CallSpec::new("open_gate", vec![])],
        },
    ];
    let evidence = pipeline.explore_evidence(
        &scenario,
        &ExploreConfig::default(),
        Some(&directed.coverage),
    );

    println!("\n== Static prediction vs observed failure, with the schedule ==");
    print!(
        "{}",
        render_findings_with_evidence(&pipeline.analysis, &evidence.findings, Some(&evidence))
    );

    // The witness necessarily contains the lost notification: the only way
    // the passer deadlocks is the opener's notify firing while no thread
    // is in place D (the wait set).
    let timeline = evidence.timeline.as_ref().expect("failure has a witness");
    assert!(
        timeline
            .notes
            .iter()
            .any(|n| n.text.contains("no thread in place D")),
        "the witness must contain the lost notification"
    );
    assert!(
        !timeline.edges.iter().any(|e| e.kind == EdgeKind::NotifyWake),
        "a lost notification wakes nobody"
    );
    assert!(evidence
        .findings
        .iter()
        .any(|f| f.class.code() == "FF-T5"));

    // The same timeline in Chrome Trace Event Format: save it and load the
    // file in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
    let chrome = timeline.to_chrome_string();
    println!("== Chrome-trace export (first 300 bytes) ==");
    println!("{}...", &chrome[..300.min(chrome.len())]);
    let path = std::env::temp_dir().join("gate_timeline.chrome_trace.json");
    std::fs::write(&path, &chrome).expect("temp dir is writable");
    println!("full trace written to {}", path.display());
}
