//! Readers–writers: native execution with writer preference, plus the
//! model-level demonstration that `notify` instead of `notifyAll` is fatal
//! here — waiters wait on *different* predicates, so a single wake-up can
//! be consumed by a thread that just re-waits (FF-T5).
//!
//! Run with `cargo run --example readers_writers`.

use std::sync::Arc;

use jcc_core::components::readers_writers::ReadersWriters;
use jcc_core::detect::classify::classify_explore;
use jcc_core::model::examples;
use jcc_core::model::mutate::{apply_mutation, enumerate_mutations, MutationKind};
use jcc_core::runtime::EventLog;
use jcc_core::vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Vm};

fn main() {
    // --- native: three readers share, a writer excludes ---
    let log = EventLog::new();
    let rw = Arc::new(ReadersWriters::new(&log));
    let readers: Vec<_> = (0..3)
        .map(|i| {
            let rw = Arc::clone(&rw);
            std::thread::spawn(move || {
                rw.start_read();
                let snapshot = rw.snapshot();
                rw.end_read();
                (i, snapshot)
            })
        })
        .collect();
    for h in readers {
        let (i, (readers_now, writing, _)) = h.join().unwrap();
        println!("reader {i} saw {readers_now} concurrent reader(s), writing={writing}");
        assert!(!writing);
    }
    rw.start_write();
    assert_eq!(rw.snapshot(), (0, true, 0));
    rw.end_write();
    println!("writer held exclusive access\n");

    // --- model: the notify-for-notifyAll mutation is a real FF-T5 here ---
    let component = examples::readers_writers();
    let mutation = enumerate_mutations(&component)
        .into_iter()
        .find(|m| {
            m.kind == MutationKind::NotifyInsteadOfNotifyAll && m.method == "endWrite"
        })
        .expect("endWrite has a notifyAll");
    let mutant = apply_mutation(&component, &mutation).unwrap();

    // One writer working, one reader and one more writer queueing up.
    let scenario = vec![
        ThreadSpec {
            name: "writer-1".into(),
            calls: vec![
                CallSpec::new("startWrite", vec![]),
                CallSpec::new("endWrite", vec![]),
            ],
        },
        ThreadSpec {
            name: "reader".into(),
            calls: vec![
                CallSpec::new("startRead", vec![]),
                CallSpec::new("endRead", vec![]),
            ],
        },
        ThreadSpec {
            name: "writer-2".into(),
            calls: vec![
                CallSpec::new("startWrite", vec![]),
                CallSpec::new("endWrite", vec![]),
            ],
        },
    ];

    let correct = explore(
        Vm::new(compile(&component).unwrap(), scenario.clone()),
        &ExploreConfig::default(),
        None,
    );
    println!(
        "correct component: {} schedules complete, {} deadlock",
        correct.completed_paths, correct.deadlock_paths
    );

    let mutated = explore(
        Vm::new(compile(&mutant).unwrap(), scenario),
        &ExploreConfig::default(),
        None,
    );
    println!(
        "endWrite::notify mutant: {} schedules complete, {} deadlock",
        mutated.completed_paths, mutated.deadlock_paths
    );
    for finding in classify_explore(&mutated) {
        println!("  classified: {finding}");
    }
    assert!(
        mutated.deadlock_paths > correct.deadlock_paths,
        "the mutant must introduce lost-wakeup deadlocks"
    );
    println!("\nthe single notify can be consumed by the reader, which re-waits");
    println!("(writers are preferred), stranding writer-2 forever — FF-T5.");
}
