//! Coverage-driven testing: watch CoFG arc coverage grow as scenarios are
//! added, for every component in the corpus — the workflow of the paper's
//! Section 6 (each uncovered arc names the next test to write).
//!
//! The example runs with `jcc-obs` recording on and reads its numbers back
//! out of the machine-readable [`RunReport`] — the same artifact the
//! `jcc-bench` binaries write to `BENCH_*.json` — rather than out of the
//! trackers directly, demonstrating the "consume a run report" workflow
//! (see README, "Reading a run report").
//!
//! Run with `cargo run --example coverage_report`.

use jcc_core::cofg::{build_component_cofgs, CoverageTracker};
use jcc_core::model::examples;
use jcc_core::obs::{self, RunReport};
use jcc_core::report::render_coverage;
use jcc_core::testgen::scenario::{describe, ScenarioSpace};
use jcc_core::testgen::suite::GreedyConfig;
use jcc_core::vm::trace::apply_trace;
use jcc_core::vm::{compile, explore_observed, CallSpec, ExploreConfig, Value, Vm};

fn main() {
    // Record the whole run: exploration publishes its own counters and the
    // coverage loop publishes arc-coverage gauges.
    obs::set_level(obs::ObsLevel::Summary);
    obs::global().reset();
    let started = std::time::Instant::now();

    let component = examples::producer_consumer();
    let cofgs = build_component_cofgs(&component);
    let compiled = compile(&component).unwrap();
    let space = ScenarioSpace::new(vec![
        CallSpec::new("receive", vec![]),
        CallSpec::new("send", vec![Value::Str("a".into())]),
        CallSpec::new("send", vec![Value::Str("ab".into())]),
    ]);
    let suite = jcc_core::testgen::suite::greedy_cover_suite(
        &component,
        &space,
        &GreedyConfig::default(),
    );

    let reg = obs::global();
    let mut tracker = CoverageTracker::new(cofgs);
    println!("building up coverage scenario by scenario:\n");
    for (i, scenario) in suite.scenarios.iter().enumerate() {
        let vm = Vm::new(compiled.clone(), scenario.clone());
        let _ = explore_observed(vm, &ExploreConfig::default(), |vm| {
            tracker.reset_threads();
            apply_trace(vm.trace(), &mut tracker);
        });
        reg.gauge("coverage.ProducerConsumer.covered_arcs")
            .set(tracker.covered_arcs() as u64);
        reg.gauge("coverage.ProducerConsumer.total_arcs")
            .set(tracker.total_arcs() as u64);
        reg.counter("coverage.scenarios").inc();
        println!(
            "after scenario {} ({}): {}/{} arcs",
            i + 1,
            describe(scenario),
            tracker.covered_arcs(),
            tracker.total_arcs()
        );
    }
    println!();
    println!("{}", render_coverage(&tracker));

    println!("corpus summary (directed suites):");
    for (name, c) in examples::corpus() {
        let space = default_space(name);
        let suite =
            jcc_core::testgen::suite::greedy_cover_suite(&c, &space, &GreedyConfig::default());
        reg.gauge(&format!("coverage.{name}.suite_scenarios"))
            .set(suite.scenarios.len() as u64);
        reg.gauge(&format!("coverage.{name}.arc_coverage_pct"))
            .set((suite.coverage_ratio() * 100.0).round() as u64);
    }

    // Everything printed below comes from the RunReport — after a JSON
    // round trip, so it is exactly what a consumer of BENCH_*.json sees.
    let report = RunReport::from_registry(
        "coverage_report",
        obs::level(),
        started.elapsed().as_secs_f64(),
        reg,
    );
    obs::set_level(obs::ObsLevel::Off);
    let report =
        RunReport::from_json_str(&report.to_json_string()).expect("report round-trips");

    for (name, _) in examples::corpus() {
        println!(
            "  {name}: {} scenarios -> {}% arc coverage",
            report
                .gauges
                .get(&format!("coverage.{name}.suite_scenarios"))
                .copied()
                .unwrap_or(0),
            report
                .gauges
                .get(&format!("coverage.{name}.arc_coverage_pct"))
                .copied()
                .unwrap_or(0),
        );
    }
    println!(
        "\nfrom the run report: {} scenarios explored {} VM states ({} schedule \
         transitions) to cover {}/{} ProducerConsumer arcs",
        report.counter("coverage.scenarios"),
        report.counter("vm.explore.states"),
        report.counter("vm.explore.transitions"),
        report.gauges["coverage.ProducerConsumer.covered_arcs"],
        report.gauges["coverage.ProducerConsumer.total_arcs"],
    );
    println!("\n{}", report.render_summary());
}

fn default_space(name: &str) -> ScenarioSpace {
    match name {
        "ProducerConsumer" => ScenarioSpace::new(vec![
            CallSpec::new("receive", vec![]),
            CallSpec::new("send", vec![Value::Str("a".into())]),
            CallSpec::new("send", vec![Value::Str("ab".into())]),
        ]),
        "BoundedBuffer" => ScenarioSpace::new(vec![
            CallSpec::new("put", vec![Value::Int(1)]),
            CallSpec::new("put", vec![Value::Int(2)]),
            CallSpec::new("take", vec![]),
        ]),
        "Semaphore" => ScenarioSpace::new(vec![
            CallSpec::new("init", vec![Value::Int(1)]),
            CallSpec::new("acquire", vec![]),
            CallSpec::new("release", vec![]),
        ]),
        "ReadersWriters" => ScenarioSpace::of_sessions(vec![
            vec![
                CallSpec::new("startRead", vec![]),
                CallSpec::new("endRead", vec![]),
            ],
            vec![
                CallSpec::new("startWrite", vec![]),
                CallSpec::new("endWrite", vec![]),
            ],
        ]),
        "Barrier" => ScenarioSpace::new(vec![
            CallSpec::new("init", vec![Value::Int(2)]),
            CallSpec::new("await", vec![]),
        ]),
        other => panic!("no scenario space for {other}"),
    }
}
