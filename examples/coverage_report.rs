//! Coverage-driven testing: watch CoFG arc coverage grow as scenarios are
//! added, for every component in the corpus — the workflow of the paper's
//! Section 6 (each uncovered arc names the next test to write).
//!
//! Run with `cargo run --example coverage_report`.

use jcc_core::cofg::{build_component_cofgs, CoverageTracker};
use jcc_core::model::examples;
use jcc_core::report::render_coverage;
use jcc_core::testgen::scenario::{describe, ScenarioSpace};
use jcc_core::testgen::suite::GreedyConfig;
use jcc_core::vm::trace::apply_trace;
use jcc_core::vm::{compile, explore_observed, CallSpec, ExploreConfig, Value, Vm};

fn main() {
    let component = examples::producer_consumer();
    let cofgs = build_component_cofgs(&component);
    let compiled = compile(&component).unwrap();
    let space = ScenarioSpace::new(vec![
        CallSpec::new("receive", vec![]),
        CallSpec::new("send", vec![Value::Str("a".into())]),
        CallSpec::new("send", vec![Value::Str("ab".into())]),
    ]);
    let suite = jcc_core::testgen::suite::greedy_cover_suite(
        &component,
        &space,
        &GreedyConfig::default(),
    );

    let mut tracker = CoverageTracker::new(cofgs);
    println!("building up coverage scenario by scenario:\n");
    for (i, scenario) in suite.scenarios.iter().enumerate() {
        let vm = Vm::new(compiled.clone(), scenario.clone());
        let _ = explore_observed(vm, &ExploreConfig::default(), |vm| {
            tracker.reset_threads();
            apply_trace(vm.trace(), &mut tracker);
        });
        println!(
            "after scenario {} ({}): {}/{} arcs",
            i + 1,
            describe(scenario),
            tracker.covered_arcs(),
            tracker.total_arcs()
        );
    }
    println!();
    println!("{}", render_coverage(&tracker));

    println!("corpus summary (directed suites):");
    for (name, c) in examples::corpus() {
        let space = default_space(name);
        let suite =
            jcc_core::testgen::suite::greedy_cover_suite(&c, &space, &GreedyConfig::default());
        println!(
            "  {name}: {} scenarios -> {:.0}% arc coverage",
            suite.scenarios.len(),
            suite.coverage_ratio() * 100.0
        );
    }
}

fn default_space(name: &str) -> ScenarioSpace {
    match name {
        "ProducerConsumer" => ScenarioSpace::new(vec![
            CallSpec::new("receive", vec![]),
            CallSpec::new("send", vec![Value::Str("a".into())]),
            CallSpec::new("send", vec![Value::Str("ab".into())]),
        ]),
        "BoundedBuffer" => ScenarioSpace::new(vec![
            CallSpec::new("put", vec![Value::Int(1)]),
            CallSpec::new("put", vec![Value::Int(2)]),
            CallSpec::new("take", vec![]),
        ]),
        "Semaphore" => ScenarioSpace::new(vec![
            CallSpec::new("init", vec![Value::Int(1)]),
            CallSpec::new("acquire", vec![]),
            CallSpec::new("release", vec![]),
        ]),
        "ReadersWriters" => ScenarioSpace::of_sessions(vec![
            vec![
                CallSpec::new("startRead", vec![]),
                CallSpec::new("endRead", vec![]),
            ],
            vec![
                CallSpec::new("startWrite", vec![]),
                CallSpec::new("endWrite", vec![]),
            ],
        ]),
        "Barrier" => ScenarioSpace::new(vec![
            CallSpec::new("init", vec![Value::Int(2)]),
            CallSpec::new("await", vec![]),
        ]),
        other => panic!("no scenario space for {other}"),
    }
}
