//! The paper's worked example, end to end: Figure 2's producer–consumer
//! monitor through the full pipeline — CoFG-directed test-sequence
//! generation, exhaustive schedule exploration, a deterministic native run
//! under the abstract clock, and a ConAn-style script export.
//!
//! Run with `cargo run --example producer_consumer`.

use std::sync::Arc;

use jcc_core::clock::{Schedule, TestDriver};
use jcc_core::components::ProducerConsumer;
use jcc_core::detect::completion::{check_completions, CompletionExpectation, Expectation};
use jcc_core::model::examples;
use jcc_core::pipeline::Pipeline;
use jcc_core::runtime::EventLog;
use jcc_core::testgen::conan::to_conan_script;
use jcc_core::testgen::scenario::{describe, ScenarioSpace};
use jcc_core::testgen::suite::GreedyConfig;
use jcc_core::vm::{CallSpec, Value};

fn main() {
    // Record the whole run with jcc-obs: the JSON report printed at the end
    // is the same machine-readable artifact the bench binaries write to
    // BENCH_*.json (see README, "Reading a run report").
    jcc_core::obs::set_level(jcc_core::obs::ObsLevel::Summary);
    jcc_core::obs::global().reset();
    let started = std::time::Instant::now();

    let component = examples::producer_consumer();
    let pipeline = Pipeline::new(component).expect("Figure 2 is valid");
    println!(
        "ProducerConsumer: {} methods, {} CoFG arcs to cover\n",
        pipeline.component.methods.len(),
        pipeline.total_arcs()
    );

    // CoFG-directed test sequences.
    let space = ScenarioSpace::new(vec![
        CallSpec::new("receive", vec![]),
        CallSpec::new("send", vec![Value::Str("a".into())]),
        CallSpec::new("send", vec![Value::Str("ab".into())]),
    ]);
    let suite = pipeline.directed_suite(&space, &GreedyConfig::default());
    println!(
        "directed suite: {} scenarios, {:.0}% arc coverage ({} candidates examined)",
        suite.scenarios.len(),
        suite.coverage_ratio() * 100.0,
        suite.candidates_examined
    );
    for s in &suite.scenarios {
        println!("  {}", describe(s));
    }

    // Export the first scenario as a ConAn-style script.
    println!("\nConAn-style script for the first scenario:");
    println!("{}", to_conan_script("ProducerConsumer", &suite.scenarios[0]));

    // Deterministic native execution with completion-time checks: the
    // canonical "receive blocks until send" test.
    println!("--- native deterministic run ---");
    let log = EventLog::new();
    let pc = Arc::new(ProducerConsumer::new(&log));
    let consumer = Arc::clone(&pc);
    let producer = Arc::clone(&pc);
    let schedule = Schedule::new()
        .call("receive", 1, move |_| {
            assert_eq!(consumer.receive().unwrap(), 'z');
        })
        .call("send", 2, move |_| {
            producer.send("z").unwrap();
        });
    let (records, _) = TestDriver::new().run(schedule);
    let violations = check_completions(
        &records,
        &[
            Expectation::new("receive", CompletionExpectation::Between(2, 3)),
            Expectation::new("send", CompletionExpectation::Between(2, 3)),
        ],
    );
    for r in &records {
        println!(
            "  {} released t={} completed {:?}",
            r.label, r.released_at, r.completed_at
        );
    }
    if violations.is_empty() {
        println!("completion-time oracle: PASS");
    } else {
        println!("completion-time oracle: {violations:?}");
    }

    println!("\n--- machine-readable run report (jcc-obs/v1) ---");
    let report = jcc_core::obs::RunReport::from_registry(
        "producer_consumer",
        jcc_core::obs::level(),
        started.elapsed().as_secs_f64(),
        jcc_core::obs::global(),
    );
    jcc_core::obs::set_level(jcc_core::obs::ObsLevel::Off);
    print!("{}", report.to_json_string());
}
