//! Deadlock hunting: lock-order-graph prediction (a single probe thread),
//! exhaustive confirmation (a model checker over all schedules), and the
//! Table-1 classification of what was found.
//!
//! Run with `cargo run --example deadlock_hunt`.

use jcc_core::detect::classify::{classify_cycles, classify_explore};
use jcc_core::detect::lockorder::LockOrderGraph;
use jcc_core::detect::normalize::from_vm_trace;
use jcc_core::model::examples;
use jcc_core::vm::{compile, explore, CallSpec, ExploreConfig, RunConfig, ThreadSpec, Vm};

fn main() {
    let component = examples::lock_order_deadlock();
    let compiled = compile(&component).unwrap();

    // Phase 1 — prediction: run each method once on a single thread and
    // build the lock-order graph. No deadlock happens, but the graph
    // already contains the inverted edge pair.
    println!("phase 1: single-threaded probe");
    let mut probe = Vm::new(
        compiled.clone(),
        vec![ThreadSpec {
            name: "probe".into(),
            calls: vec![
                CallSpec::new("forward", vec![]),
                CallSpec::new("backward", vec![]),
            ],
        }],
    );
    let out = probe.run(&RunConfig::default());
    assert!(!out.verdict.is_failure(), "probe itself cannot deadlock");
    let graph = LockOrderGraph::build(&from_vm_trace(&out.trace));
    println!("  lock-order edges: {:?}", graph.edges());
    let cycles = graph.cycles();
    for finding in classify_cycles(&cycles) {
        println!("  predicted: {finding}");
    }
    assert!(!cycles.is_empty());

    // Phase 2 — confirmation: explore every 2-thread schedule.
    println!("\nphase 2: exhaustive schedule exploration with two threads");
    let vm = Vm::new(
        compiled,
        vec![
            ThreadSpec {
                name: "fwd".into(),
                calls: vec![CallSpec::new("forward", vec![])],
            },
            ThreadSpec {
                name: "bwd".into(),
                calls: vec![CallSpec::new("backward", vec![])],
            },
        ],
    );
    let result = explore(vm, &ExploreConfig::default(), None);
    println!(
        "  {} states, {} transitions: {} schedules complete, {} deadlock",
        result.states, result.transitions, result.completed_paths, result.deadlock_paths
    );
    for finding in classify_explore(&result) {
        println!("  confirmed: {finding}");
    }
    let witness = result.deadlock_witness.expect("deadlock witness");
    println!("\n  witness interleaving:");
    print!(
        "{}",
        jcc_core::vm::trace::render_trace(
            &witness.trace,
            &["fwd".to_string(), "bwd".to_string()],
            &["this".to_string(), "a".to_string(), "b".to_string()],
        )
    );
}
