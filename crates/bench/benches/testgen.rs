//! Benchmarks for test-sequence generation (E5 substrate): greedy suite
//! construction, signature enumeration and the abstract clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use jcc_core::clock::AbstractClock;
use jcc_core::model::examples;
use jcc_core::petri::Parallelism;
use jcc_core::pipeline::{mutation_study, MutationStudyConfig};
use jcc_core::testgen::scenario::ScenarioSpace;
use jcc_core::testgen::signature::{enumerate_signatures, EnumLimits};
use jcc_core::testgen::suite::{greedy_cover_suite, GreedyConfig};
use jcc_core::vm::{compile, CallSpec, ThreadSpec, Value, Vm};

fn bench_greedy_suite(c: &mut Criterion) {
    let component = examples::bounded_buffer();
    let space = ScenarioSpace::new(vec![
        CallSpec::new("put", vec![Value::Int(1)]),
        CallSpec::new("put", vec![Value::Int(2)]),
        CallSpec::new("take", vec![]),
    ]);
    let mut group = c.benchmark_group("testgen/greedy_suite");
    group.sample_size(10);
    group.bench_function("bounded_buffer", |b| {
        b.iter(|| {
            black_box(
                greedy_cover_suite(&component, &space, &GreedyConfig::default())
                    .scenarios
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let component = examples::producer_consumer();
    let compiled = compile(&component).unwrap();
    let threads = vec![
        ThreadSpec {
            name: "c".into(),
            calls: vec![CallSpec::new("receive", vec![])],
        },
        ThreadSpec {
            name: "p".into(),
            calls: vec![CallSpec::new("send", vec![Value::Str("ab".into())])],
        },
    ];
    let mut group = c.benchmark_group("testgen/enumerate_signatures");
    group.sample_size(10);
    group.bench_function("producer_consumer_2threads", |b| {
        b.iter(|| {
            let vm = Vm::new(compiled.clone(), threads.clone());
            black_box(enumerate_signatures(vm, EnumLimits::default()).0.len())
        })
    });
    group.finish();
}

fn bench_mutation_study(c: &mut Criterion) {
    // The full (mutant x scenario) matrix, sequential vs fanned-out; the
    // detection matrix is identical at every worker count.
    let component = examples::producer_consumer();
    let space = ScenarioSpace::new(vec![
        CallSpec::new("receive", vec![]),
        CallSpec::new("send", vec![Value::Str("a".into())]),
    ]);
    let mut group = c.benchmark_group("testgen/mutation_study");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let config = MutationStudyConfig {
                    parallelism: Parallelism::with_threads(workers),
                    ..MutationStudyConfig::default()
                };
                b.iter(|| {
                    black_box(mutation_study(&component, &space, &config).directed_score())
                })
            },
        );
    }
    group.finish();
}

fn bench_clock(c: &mut Criterion) {
    c.bench_function("clock/tick", |b| {
        let clock = AbstractClock::new();
        b.iter(|| black_box(clock.tick()))
    });
    c.bench_function("clock/await_satisfied", |b| {
        let clock = AbstractClock::new();
        clock.tick_to(1_000_000_000);
        b.iter(|| {
            clock.await_time(5);
            black_box(clock.time())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_greedy_suite, bench_signatures, bench_mutation_study, bench_clock
}
criterion_main!(benches);
