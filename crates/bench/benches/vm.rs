//! Benchmarks for the VM: scheduled runs (E3) and exhaustive exploration
//! (E8), plus the native monitor under contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use jcc_core::model::examples;
use jcc_core::vm::{
    compile, explore, explore_portfolio, CallSpec, ExploreConfig, Parallelism, PortfolioConfig,
    RunConfig, Scheduler, ThreadSpec, Value, Vm,
};

fn pc_threads(chars: usize) -> Vec<ThreadSpec> {
    vec![
        ThreadSpec {
            name: "c".into(),
            calls: (0..chars).map(|_| CallSpec::new("receive", vec![])).collect(),
        },
        ThreadSpec {
            name: "p".into(),
            calls: vec![CallSpec::new("send", vec![Value::Str("x".repeat(chars))])],
        },
    ]
}

fn bench_scheduled_run(c: &mut Criterion) {
    let component = examples::producer_consumer();
    let compiled = compile(&component).unwrap();
    let mut group = c.benchmark_group("vm/run_round_robin");
    for chars in [1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(chars), &chars, |b, &chars| {
            b.iter(|| {
                let mut vm = Vm::new(compiled.clone(), pc_threads(chars));
                black_box(vm.run(&RunConfig::default()).steps)
            })
        });
    }
    group.finish();
}

fn bench_random_run(c: &mut Criterion) {
    let component = examples::producer_consumer();
    let compiled = compile(&component).unwrap();
    c.bench_function("vm/run_random_seeded", |b| {
        b.iter(|| {
            let mut vm = Vm::new(compiled.clone(), pc_threads(8));
            black_box(
                vm.run(&RunConfig {
                    scheduler: Scheduler::Random(7),
                    max_steps: 50_000,
                })
                .steps,
            )
        })
    });
}

fn bench_explore(c: &mut Criterion) {
    let component = examples::producer_consumer();
    let compiled = compile(&component).unwrap();
    let mut group = c.benchmark_group("vm/explore_all_schedules");
    group.sample_size(10);
    for consumers in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(consumers),
            &consumers,
            |b, &consumers| {
                b.iter(|| {
                    let mut threads = vec![ThreadSpec {
                        name: "p".into(),
                        calls: vec![CallSpec::new(
                            "send",
                            vec![Value::Str("x".repeat(consumers))],
                        )],
                    }];
                    for i in 0..consumers {
                        threads.push(ThreadSpec {
                            name: format!("c{i}"),
                            calls: vec![CallSpec::new("receive", vec![])],
                        });
                    }
                    let vm = Vm::new(compiled.clone(), threads);
                    black_box(explore(vm, &ExploreConfig::default(), None).states)
                })
            },
        );
    }
    group.finish();
}

fn bench_portfolio(c: &mut Criterion) {
    // Exhaustive census + seeded-random probes across worker counts; the
    // census is identical to sequential `explore` at every point.
    let component = examples::producer_consumer();
    let compiled = compile(&component).unwrap();
    let mut group = c.benchmark_group("vm/explore_portfolio");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let config = PortfolioConfig {
                    explore: ExploreConfig {
                        parallelism: Parallelism::with_threads(workers),
                        ..ExploreConfig::default()
                    },
                    probes_per_worker: 16,
                    ..PortfolioConfig::default()
                };
                b.iter(|| {
                    let vm = Vm::new(compiled.clone(), pc_threads(2));
                    black_box(explore_portfolio(vm, &config).probes_run)
                })
            },
        );
    }
    group.finish();
}

fn bench_native_monitor(c: &mut Criterion) {
    use jcc_core::runtime::{EventLog, JavaMonitor};
    c.bench_function("runtime/enter_exit_uncontended", |b| {
        let log = EventLog::new();
        let m = JavaMonitor::new("bench", &log, 0u64);
        b.iter(|| {
            let g = m.enter();
            g.with(|d| *d += 1);
            drop(g);
            log.clear();
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scheduled_run, bench_random_run, bench_explore, bench_portfolio,
        bench_native_monitor
}
criterion_main!(benches);
