//! Benchmarks for the detectors (E7): lockset analysis and lock-order graph
//! construction over synthetic event streams of varying length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use jcc_core::detect::lockorder::LockOrderGraph;
use jcc_core::detect::lockset::LocksetAnalyzer;
use jcc_core::detect::normalize::{MonEvent, MonEventKind};

/// A well-locked workload: `threads` threads each do `ops` lock-protected
/// increments over `vars` variables.
fn locked_stream(threads: u64, ops: usize, vars: usize) -> Vec<MonEvent> {
    let mut out = Vec::with_capacity(threads as usize * ops * 4);
    for t in 1..=threads {
        for i in 0..ops {
            let var = format!("v{}", i % vars);
            out.push(MonEvent {
                thread: t,
                kind: MonEventKind::Acquire(1),
            });
            out.push(MonEvent {
                thread: t,
                kind: MonEventKind::Read(var.clone()),
            });
            out.push(MonEvent {
                thread: t,
                kind: MonEventKind::Write(var),
            });
            out.push(MonEvent {
                thread: t,
                kind: MonEventKind::Release(1),
            });
        }
    }
    out
}

/// A nested-lock workload building a deep lock-order graph.
fn nested_stream(threads: u64, depth: u64) -> Vec<MonEvent> {
    let mut out = Vec::new();
    for t in 1..=threads {
        for start in 0..depth {
            for l in start..depth {
                out.push(MonEvent {
                    thread: t,
                    kind: MonEventKind::Acquire(l),
                });
            }
            for l in (start..depth).rev() {
                out.push(MonEvent {
                    thread: t,
                    kind: MonEventKind::Release(l),
                });
            }
        }
    }
    out
}

fn bench_lockset(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect/lockset");
    for ops in [100usize, 1_000, 10_000] {
        let stream = locked_stream(4, ops, 8);
        group.throughput(criterion::Throughput::Elements(stream.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ops), &stream, |b, stream| {
            b.iter(|| black_box(LocksetAnalyzer::analyze(stream).len()))
        });
    }
    group.finish();
}

fn bench_lockorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect/lockorder");
    for depth in [4u64, 16, 64] {
        let stream = nested_stream(4, depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &stream, |b, stream| {
            b.iter(|| {
                let g = LockOrderGraph::build(stream);
                black_box(g.cycles().len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lockset, bench_lockorder
}
criterion_main!(benches);
