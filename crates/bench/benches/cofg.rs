//! Benchmarks for CoFG construction (E4), parsing and the HAZOP table
//! generation (E2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use jcc_core::cofg::build_component_cofgs;
use jcc_core::hazop::generate_table;
use jcc_core::model::{examples, parse_component};
use jcc_core::petri::JavaNet;

fn bench_parse(c: &mut Criterion) {
    c.bench_function("model/parse_producer_consumer", |b| {
        b.iter(|| black_box(parse_component(examples::PRODUCER_CONSUMER_SRC).unwrap()))
    });
    c.bench_function("model/parse_readers_writers", |b| {
        b.iter(|| black_box(parse_component(examples::READERS_WRITERS_SRC).unwrap()))
    });
}

fn bench_build_cofgs(c: &mut Criterion) {
    let mut group = c.benchmark_group("cofg/build");
    for (name, component) in examples::corpus() {
        group.bench_function(name, |b| {
            b.iter(|| black_box(build_component_cofgs(&component).len()))
        });
    }
    group.finish();
}

fn bench_hazop(c: &mut Criterion) {
    let net = JavaNet::new(1);
    c.bench_function("hazop/generate_table1", |b| {
        b.iter(|| black_box(generate_table(&net).len()))
    });
}

fn bench_mutations(c: &mut Criterion) {
    let component = examples::producer_consumer();
    c.bench_function("mutate/all_mutants", |b| {
        b.iter(|| black_box(jcc_core::model::mutate::all_mutants(&component).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_parse, bench_build_cofgs, bench_hazop, bench_mutations
}
criterion_main!(benches);
