//! Benchmarks for the petri-net engine: firing throughput, reachability
//! exploration (E1/E8 substrate) and invariant discovery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use jcc_core::petri::{invariant, JavaNet, Parallelism, ReachGraph, ReachLimits, Transition};

fn bench_fire_cycle(c: &mut Criterion) {
    let j = JavaNet::new(1);
    let net = j.net();
    let seq = [
        j.transition(0, Transition::T1),
        j.transition(0, Transition::T2),
        j.transition(0, Transition::T3),
        j.transition(0, Transition::T5),
        j.transition(0, Transition::T2),
        j.transition(0, Transition::T4),
    ];
    c.bench_function("petri/fire_full_cycle", |b| {
        b.iter(|| {
            let mut m = net.initial_marking();
            for &t in &seq {
                m = net.fire(&m, t).unwrap();
            }
            black_box(m)
        })
    });
}

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("petri/reachability");
    for threads in [1usize, 2, 3, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let j = JavaNet::new(threads);
                b.iter(|| {
                    let g = ReachGraph::explore(j.net(), ReachLimits::default());
                    black_box(g.stats().states)
                })
            },
        );
    }
    group.finish();
}

fn bench_reachability_workers(c: &mut Criterion) {
    // Sequential vs parallel frontier on one fixed net (N=5 threads,
    // ~10^4 states): same graph by construction, throughput differs.
    let j = JavaNet::new(5);
    let mut group = c.benchmark_group("petri/reachability_workers");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let limits = ReachLimits {
                    parallelism: Parallelism::with_threads(workers),
                    ..ReachLimits::default()
                };
                b.iter(|| {
                    let g = ReachGraph::explore(j.net(), limits);
                    black_box(g.stats().states)
                })
            },
        );
    }
    group.finish();
}

fn bench_invariants(c: &mut Criterion) {
    let mut group = c.benchmark_group("petri/invariant_basis");
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let j = JavaNet::new(threads);
                b.iter(|| black_box(invariant::invariant_basis(j.net()).len()))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fire_cycle, bench_reachability, bench_reachability_workers, bench_invariants
}
criterion_main!(benches);
