//! E1 — regenerate Figure 1: the petri-net model of Java concurrency.
//!
//! Prints the net's structure, its DOT rendering, the reachability graph of
//! the single-thread model, the discovered place invariants, and the
//! dashed-arc side condition's effect (the wait-forever dead state).

use jcc_core::petri::{
    dot, invariant, JavaNet, ReachGraph, ReachLimits, Transition,
};

fn main() {
    let reporter = jcc_core::obs::BenchReporter::init("fig1_model");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } };
    }
    say!("=== Figure 1: petri-net model of concurrency ===\n");
    let j = JavaNet::new(1);
    let net = j.net();

    say!(
        "Places ({}): A (outside), B (requesting), C (critical section), D (waiting), E (lock available)",
        net.num_places()
    );
    say!("Transitions ({}):", net.num_transitions());
    for t in Transition::ALL {
        let id = j.transition(0, t);
        let ins: Vec<&str> = net.inputs(id).iter().map(|&(p, _)| net.place_name(p)).collect();
        let outs: Vec<&str> = net.outputs(id).iter().map(|&(p, _)| net.place_name(p)).collect();
        say!(
            "  {t}: {} — {} -> {}",
            t.description(),
            ins.join("+"),
            outs.join("+")
        );
    }

    say!("\n--- DOT rendering (initial marking) ---");
    say!("{}", dot::net_to_dot(net, &net.initial_marking()));

    say!("--- Reachability (1 thread, raw net) ---");
    let g = ReachGraph::explore(net, ReachLimits::default());
    let stats = g.stats();
    say!(
        "states: {}, edges: {}, deadlocks: {}, 1-bounded: {}",
        stats.states,
        stats.edges,
        stats.deadlocks,
        g.is_k_bounded(1)
    );
    for (i, m) in g.markings().iter().enumerate() {
        say!("  s{i}: {}", dot::marking_label(net, m));
    }

    say!("\n--- Reachability under the dashed-arc side condition ---");
    let gf = ReachGraph::explore_filtered(net, ReachLimits::default(), j.notify_side_condition());
    let dead = gf.dead_states();
    say!(
        "states: {}, dead states: {} (a lone thread that waits can never be woken)",
        gf.stats().states,
        dead.len()
    );
    for &s in &dead {
        let path = gf.path_to(s).unwrap();
        let names: Vec<&str> = path.iter().map(|&t| net.transition_name(t)).collect();
        say!(
            "  dead: {} via firing sequence {}",
            dot::marking_label(net, &gf.markings()[s]),
            names.join(", ")
        );
    }

    say!("\n--- Place invariants (P-semiflows) ---");
    let basis = invariant::invariant_basis(net);
    for b in &basis {
        let terms: Vec<String> = net
            .places()
            .filter(|&p| b[p.index()] != 0)
            .map(|p| {
                let w = b[p.index()];
                if w == 1 {
                    net.place_name(p).to_string()
                } else {
                    format!("{w}·{}", net.place_name(p))
                }
            })
            .collect();
        let value = invariant::weighted_sum(&net.initial_marking(), b);
        say!("  {} = {value} (conserved)", terms.join(" + "));
    }

    say!("\n--- N-thread composition ---");
    for threads in 1..=4 {
        let jn = JavaNet::new(threads);
        let g = ReachGraph::explore(jn.net(), ReachLimits::default());
        say!(
            "  {threads} thread(s): {} states, {} edges, mutex invariant holds: {}",
            g.stats().states,
            g.stats().edges,
            invariant::is_invariant(jn.net(), &jn.mutex_invariant())
        );
    }
    reporter.finish();
}
