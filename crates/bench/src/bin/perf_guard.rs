//! Throughput, coverage, and capture-overhead regression guard for the
//! bench run reports.
//!
//! Compares a freshly generated `BENCH_<exp>.json` run report against a
//! checked-in baseline (`ci/bench_baseline*.json`) and exits non-zero when
//! the current run regressed. CI runs it right after each bench smoke, so
//! an accidental hot-path regression (a re-boxed marking, a dropped
//! interner, a lock sneaking into the capture path) fails the build
//! instead of landing silently.
//!
//! Three rules, each keyed off what the **baseline** declares:
//!
//! * **Throughput** — for each known throughput key (`states_per_sec` for
//!   the exploration benches, `events_per_sec` for the e12 live monitor)
//!   that the baseline carries, the current run must reach [`FLOOR`] × the
//!   baseline figure. A baseline with *no* throughput key is a
//!   configuration error, not a pass.
//! * **Coverage** — when the baseline carries `arc_coverage_pct`, the
//!   current run may lose at most [`COVERAGE_EPSILON`] points and must not
//!   lose the figure. Coverage is a correctness signal, not a timing.
//! * **Overhead budgets** — when the baseline carries
//!   `max_capture_overhead_pct` or `max_introspection_overhead_pct` (an
//!   absolute budget, not a measured figure), the current run's
//!   `capture_overhead_pct` / `introspection_overhead_pct` must not
//!   exceed it. The e12 capture budget is 5%: an always-on monitor that
//!   costs more than that is not always-on in practice. The e14
//!   introspection budget is also 5%: the live span tree + profiler +
//!   heartbeat stack must stay cheap enough to leave on during real
//!   exploration runs.
//!
//! The throughput comparison is deliberately one-sided: runs *faster*
//! than baseline always pass, and the baseline is only ratcheted up by
//! hand (update the baseline file alongside the optimisation that earned
//! it). The 20% head-room absorbs same-machine-class scheduler noise; the
//! baseline assumes runs on comparable hardware, which is what a pinned
//! CI runner pool provides.
//!
//! Usage: `perf_guard [current.json] [baseline.json]` — both arguments
//! optional, defaulting to `BENCH_e8.json` and `ci/bench_baseline.json`
//! relative to the working directory.

use std::process::ExitCode;

/// Fraction of baseline throughput a run must reach to pass.
const FLOOR: f64 = 0.8;

/// Percentage points of arc coverage a run may lose before failing —
/// float-formatting slack only, coverage is not a timing.
const COVERAGE_EPSILON: f64 = 0.5;

/// Every throughput figure the guard knows how to gate. A baseline opts
/// into a gate by carrying the key. `reduction_factor` (full states per
/// reduced state) and `reduction_equiv_states_per_sec` (full-size states
/// per reduced-run second) gate the ample-set + thread-symmetry
/// reductions: losing either means the reduction stopped pruning or
/// stopped being fast, both regressions. `java_loc_per_sec` gates the
/// Java frontend's full-pipeline throughput (E13).
const THROUGHPUT_KEYS: &[&str] = &[
    "states_per_sec",
    "events_per_sec",
    "reduction_factor",
    "reduction_equiv_states_per_sec",
    "java_loc_per_sec",
];

/// Absolute overhead budgets: when the baseline carries the first key (a
/// cap, set by hand), the run report's second key (a measured figure) must
/// stay at or below it.
const OVERHEAD_BUDGETS: &[(&str, &str)] = &[
    ("max_capture_overhead_pct", "capture_overhead_pct"),
    ("max_introspection_overhead_pct", "introspection_overhead_pct"),
];

/// Gate one overhead budget the baseline declares. Returns `true` on
/// failure.
fn gate_budget(budget_key: &str, current_key: &str, current: Option<f64>, budget: f64) -> bool {
    let Some(overhead) = current else {
        eprintln!(
            "perf_guard: FAIL — baseline budgets {budget_key} ({budget:.1}%) but the run \
             report has no {current_key} figure"
        );
        return true;
    };
    println!("perf_guard: {current_key} current {overhead:.2} vs budget {budget:.1}");
    if overhead > budget {
        eprintln!(
            "perf_guard: FAIL — {current_key} {overhead:.2}% exceeds the {budget:.1}% budget"
        );
        return true;
    }
    false
}

/// Extract the value of the exact quoted key `"{key}"` from a JSON
/// document with a quoted-token scan.
///
/// The run report is machine-written by `jcc_obs::BenchReporter` with
/// sorted string keys and no string values containing the token, so a full
/// JSON parser buys nothing here — and the bench crate stays free of one.
/// The quoted match (both quotes included) cannot confuse a longer
/// suffix-sharing key (`packed_states_per_sec` vs `states_per_sec`).
fn quoted_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Gate one throughput key present in the baseline. Returns `true` on
/// failure.
fn gate_throughput(key: &str, current: Option<f64>, baseline: f64, current_path: &str) -> bool {
    let Some(current) = current else {
        eprintln!(
            "perf_guard: FAIL — baseline has {key} ({baseline:.0}) but the run report \
             {current_path} lost the figure"
        );
        return true;
    };
    let floor = baseline * FLOOR;
    let ratio = current / baseline.max(1e-9);
    println!(
        "perf_guard: {key} current {current:.0} vs baseline {baseline:.0} \
         (x{ratio:.2}, floor {floor:.0})"
    );
    if current < floor {
        eprintln!(
            "perf_guard: FAIL — {key} regressed more than {:.0}% below baseline",
            (1.0 - FLOOR) * 100.0
        );
        return true;
    }
    false
}

fn read_report(path: &str, what: &str) -> Result<String, String> {
    std::fs::read_to_string(path)
        .map_err(|e| format!("perf_guard: cannot read {what} {path}: {e}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let current_path = args.next().unwrap_or_else(|| "BENCH_e8.json".into());
    let baseline_path = args.next().unwrap_or_else(|| "ci/bench_baseline.json".into());

    let (current_text, baseline_text) = match (
        read_report(&current_path, "run report"),
        read_report(&baseline_path, "baseline"),
    ) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;

    // Throughput gates: one per key the baseline declares.
    let mut gated = 0;
    for key in THROUGHPUT_KEYS {
        if let Some(base) = quoted_number(&baseline_text, key) {
            gated += 1;
            failed |= gate_throughput(key, quoted_number(&current_text, key), base, &current_path);
        }
    }
    if gated == 0 {
        eprintln!(
            "perf_guard: FAIL — baseline {baseline_path} declares no throughput figure \
             (expected one of {THROUGHPUT_KEYS:?})"
        );
        failed = true;
    }

    // Coverage gate: only when the baseline knows the figure.
    if let Some(base_cov) = quoted_number(&baseline_text, "arc_coverage_pct") {
        match quoted_number(&current_text, "arc_coverage_pct") {
            None => {
                eprintln!(
                    "perf_guard: FAIL — baseline has arc_coverage_pct ({base_cov:.1}) but \
                     the run report lost the figure"
                );
                failed = true;
            }
            Some(cur_cov) => {
                println!(
                    "perf_guard: arc_coverage_pct current {cur_cov:.1} vs baseline \
                     {base_cov:.1} (epsilon {COVERAGE_EPSILON})"
                );
                if cur_cov < base_cov - COVERAGE_EPSILON {
                    eprintln!(
                        "perf_guard: FAIL — arc coverage dropped more than \
                         {COVERAGE_EPSILON} points below baseline"
                    );
                    failed = true;
                }
            }
        }
    }

    // Overhead budgets: only when the baseline sets one. Each budget key
    // (an absolute cap) gates the matching measured figure.
    for (budget_key, current_key) in OVERHEAD_BUDGETS {
        if let Some(budget) = quoted_number(&baseline_text, budget_key) {
            failed |= gate_budget(
                budget_key,
                current_key,
                quoted_number(&current_text, current_key),
                budget,
            );
        }
    }

    if failed {
        return ExitCode::FAILURE;
    }
    println!("perf_guard: OK");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_exact_key_not_derived_variants() {
        let json = r#"{"derived":{"boxed_states_per_sec":99.0,
            "packed_states_per_sec":88.0,"states_per_sec":123456.5}}"#;
        assert_eq!(quoted_number(json, "states_per_sec"), Some(123456.5));
    }

    #[test]
    fn missing_key_is_none() {
        assert_eq!(
            quoted_number(r#"{"packed_states_per_sec":1.0}"#, "states_per_sec"),
            None
        );
        assert_eq!(quoted_number("{}", "states_per_sec"), None);
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(
            quoted_number(r#"{"states_per_sec":1.25e5}"#, "states_per_sec"),
            Some(1.25e5)
        );
    }

    #[test]
    fn coverage_key_extracts_like_throughput() {
        let json = r#"{"derived":{"arc_coverage_pct":100,"states_per_sec":5.0}}"#;
        assert_eq!(quoted_number(json, "arc_coverage_pct"), Some(100.0));
        assert_eq!(quoted_number(json, "absent_key"), None);
    }

    #[test]
    fn throughput_gate_applies_floor_one_sided() {
        // Above the floor, at the floor, and faster-than-baseline all pass.
        assert!(!gate_throughput("states_per_sec", Some(90.0), 100.0, "r"));
        assert!(!gate_throughput("states_per_sec", Some(80.0), 100.0, "r"));
        assert!(!gate_throughput("states_per_sec", Some(500.0), 100.0, "r"));
        // Below the floor, or the figure lost entirely, fails.
        assert!(gate_throughput("states_per_sec", Some(79.0), 100.0, "r"));
        assert!(gate_throughput("events_per_sec", None, 100.0, "r"));
    }

    #[test]
    fn reduction_keys_are_gated_when_the_baseline_carries_them() {
        let json = r#"{"derived":{"reduction_factor":120.5,
            "reduction_equiv_states_per_sec":2.5e6,"states_per_sec":1.0}}"#;
        assert_eq!(quoted_number(json, "reduction_factor"), Some(120.5));
        assert_eq!(
            quoted_number(json, "reduction_equiv_states_per_sec"),
            Some(2.5e6)
        );
        assert!(THROUGHPUT_KEYS.contains(&"reduction_factor"));
        assert!(THROUGHPUT_KEYS.contains(&"reduction_equiv_states_per_sec"));
        // One-sided like every throughput gate: a deeper reduction passes.
        assert!(!gate_throughput("reduction_factor", Some(200.0), 120.0, "r"));
        assert!(gate_throughput("reduction_factor", Some(90.0), 120.0, "r"));
    }

    #[test]
    fn overhead_budgets_gate_both_capture_and_introspection() {
        // Under or at budget passes; over budget or a lost figure fails.
        assert!(!gate_budget(
            "max_introspection_overhead_pct",
            "introspection_overhead_pct",
            Some(3.2),
            5.0
        ));
        assert!(!gate_budget(
            "max_introspection_overhead_pct",
            "introspection_overhead_pct",
            Some(5.0),
            5.0
        ));
        assert!(gate_budget(
            "max_introspection_overhead_pct",
            "introspection_overhead_pct",
            Some(5.1),
            5.0
        ));
        assert!(gate_budget(
            "max_introspection_overhead_pct",
            "introspection_overhead_pct",
            None,
            5.0
        ));
        // The e14 pair is registered alongside the e12 one.
        assert!(OVERHEAD_BUDGETS
            .contains(&("max_introspection_overhead_pct", "introspection_overhead_pct")));
        assert!(OVERHEAD_BUDGETS.contains(&("max_capture_overhead_pct", "capture_overhead_pct")));
    }

    #[test]
    fn e12_keys_extract_from_a_live_monitor_report() {
        let json = r#"{"derived":{"capture_overhead_pct":3.3,"drop_rate_pct":0,
            "events_per_sec":91609.4,"states_per_sec":0}}"#;
        assert_eq!(quoted_number(json, "events_per_sec"), Some(91609.4));
        assert_eq!(quoted_number(json, "capture_overhead_pct"), Some(3.3));
        let baseline = r#"{"derived":{"events_per_sec":40000,
            "max_capture_overhead_pct":5.0}}"#;
        assert_eq!(quoted_number(baseline, "max_capture_overhead_pct"), Some(5.0));
        assert_eq!(quoted_number(baseline, "states_per_sec"), None);
    }
}
