//! Throughput regression guard for the e8 state-space benchmark.
//!
//! Compares the `states_per_sec` figure of a freshly generated
//! `BENCH_e8.json` run report against the checked-in baseline in
//! `ci/bench_baseline.json` and exits non-zero when the current run is more
//! than 20% below the baseline. CI runs it right after the e8 bench smoke,
//! so an accidental hot-path regression (a re-boxed marking, a dropped
//! interner, a hash gone quadratic) fails the build instead of landing
//! silently.
//!
//! The comparison is deliberately one-sided: runs *faster* than baseline
//! always pass, and the baseline is only ratcheted up by hand (update
//! `ci/bench_baseline.json` alongside the optimisation that earned it).
//! The 20% head-room absorbs same-machine-class scheduler noise; the
//! baseline assumes runs on comparable hardware, which is what a pinned CI
//! runner pool provides.
//!
//! Usage: `perf_guard [current.json] [baseline.json]` — both arguments
//! optional, defaulting to `BENCH_e8.json` and `ci/bench_baseline.json`
//! relative to the working directory.

use std::process::ExitCode;

/// Fraction of baseline throughput a run must reach to pass.
const FLOOR: f64 = 0.8;

/// Extract the value of the exact top-level-or-nested key
/// `"states_per_sec"` from a JSON document with a quoted-token scan.
///
/// The run report is machine-written by `jcc_obs::BenchReporter` with
/// sorted string keys and no string values containing the token, so a full
/// JSON parser buys nothing here — and the bench crate stays free of one.
/// The quoted match (`"states_per_sec"` including both quotes) cannot
/// confuse the longer `packed_`/`boxed_states_per_sec` derived keys.
fn states_per_sec(json: &str) -> Option<f64> {
    let key = "\"states_per_sec\"";
    let at = json.find(key)?;
    let rest = json[at + key.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn read_rate(path: &str, what: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("perf_guard: cannot read {what} {path}: {e}"))?;
    states_per_sec(&text)
        .ok_or_else(|| format!("perf_guard: no \"states_per_sec\" figure in {what} {path}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let current_path = args.next().unwrap_or_else(|| "BENCH_e8.json".into());
    let baseline_path = args.next().unwrap_or_else(|| "ci/bench_baseline.json".into());

    let (current, baseline) = match (
        read_rate(&current_path, "run report"),
        read_rate(&baseline_path, "baseline"),
    ) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let floor = baseline * FLOOR;
    let ratio = current / baseline.max(1e-9);
    println!(
        "perf_guard: states_per_sec current {current:.0} vs baseline {baseline:.0} \
         (x{ratio:.2}, floor {floor:.0})"
    );
    if current < floor {
        eprintln!(
            "perf_guard: FAIL — throughput regressed more than {:.0}% below baseline",
            (1.0 - FLOOR) * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("perf_guard: OK");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_exact_key_not_derived_variants() {
        let json = r#"{"derived":{"boxed_states_per_sec":99.0,
            "packed_states_per_sec":88.0,"states_per_sec":123456.5}}"#;
        assert_eq!(states_per_sec(json), Some(123456.5));
    }

    #[test]
    fn missing_key_is_none() {
        assert_eq!(states_per_sec(r#"{"packed_states_per_sec":1.0}"#), None);
        assert_eq!(states_per_sec("{}"), None);
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(states_per_sec(r#"{"states_per_sec":1.25e5}"#), Some(1.25e5));
    }
}
