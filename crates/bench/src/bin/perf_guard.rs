//! Throughput and coverage regression guard for the e8 state-space
//! benchmark.
//!
//! Compares the `states_per_sec` figure of a freshly generated
//! `BENCH_e8.json` run report against the checked-in baseline in
//! `ci/bench_baseline.json` and exits non-zero when the current run is more
//! than 20% below the baseline. CI runs it right after the e8 bench smoke,
//! so an accidental hot-path regression (a re-boxed marking, a dropped
//! interner, a hash gone quadratic) fails the build instead of landing
//! silently.
//!
//! When the baseline also carries an `arc_coverage_pct` figure (CoFG arc
//! coverage unioned over e8's exhaustive explorations), the guard
//! additionally fails if the current run's coverage dropped by more than
//! half a percentage point — or lost the figure entirely. Coverage is a
//! correctness signal, not a timing: there is no noise head-room to grant,
//! only the epsilon for float formatting. Baselines without the key skip
//! the check (back-compat with pre-coverage reports).
//!
//! The comparison is deliberately one-sided: runs *faster* than baseline
//! always pass, and the baseline is only ratcheted up by hand (update
//! `ci/bench_baseline.json` alongside the optimisation that earned it).
//! The 20% head-room absorbs same-machine-class scheduler noise; the
//! baseline assumes runs on comparable hardware, which is what a pinned CI
//! runner pool provides.
//!
//! Usage: `perf_guard [current.json] [baseline.json]` — both arguments
//! optional, defaulting to `BENCH_e8.json` and `ci/bench_baseline.json`
//! relative to the working directory.

use std::process::ExitCode;

/// Fraction of baseline throughput a run must reach to pass.
const FLOOR: f64 = 0.8;

/// Percentage points of arc coverage a run may lose before failing —
/// float-formatting slack only, coverage is not a timing.
const COVERAGE_EPSILON: f64 = 0.5;

/// Extract the value of the exact quoted key `"{key}"` from a JSON
/// document with a quoted-token scan.
///
/// The run report is machine-written by `jcc_obs::BenchReporter` with
/// sorted string keys and no string values containing the token, so a full
/// JSON parser buys nothing here — and the bench crate stays free of one.
/// The quoted match (both quotes included) cannot confuse a longer
/// suffix-sharing key (`packed_states_per_sec` vs `states_per_sec`).
fn quoted_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The e8 throughput figure.
fn states_per_sec(json: &str) -> Option<f64> {
    quoted_number(json, "states_per_sec")
}

fn read_report(path: &str, what: &str) -> Result<String, String> {
    std::fs::read_to_string(path)
        .map_err(|e| format!("perf_guard: cannot read {what} {path}: {e}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let current_path = args.next().unwrap_or_else(|| "BENCH_e8.json".into());
    let baseline_path = args.next().unwrap_or_else(|| "ci/bench_baseline.json".into());

    let (current_text, baseline_text) = match (
        read_report(&current_path, "run report"),
        read_report(&baseline_path, "baseline"),
    ) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let (current, baseline) = match (
        states_per_sec(&current_text),
        states_per_sec(&baseline_text),
    ) {
        (Some(c), Some(b)) => (c, b),
        (c, b) => {
            if c.is_none() {
                eprintln!(
                    "perf_guard: no \"states_per_sec\" figure in run report {current_path}"
                );
            }
            if b.is_none() {
                eprintln!("perf_guard: no \"states_per_sec\" figure in baseline {baseline_path}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    let floor = baseline * FLOOR;
    let ratio = current / baseline.max(1e-9);
    println!(
        "perf_guard: states_per_sec current {current:.0} vs baseline {baseline:.0} \
         (x{ratio:.2}, floor {floor:.0})"
    );
    if current < floor {
        eprintln!(
            "perf_guard: FAIL — throughput regressed more than {:.0}% below baseline",
            (1.0 - FLOOR) * 100.0
        );
        failed = true;
    }

    // Coverage gate: only when the baseline knows the figure.
    if let Some(base_cov) = quoted_number(&baseline_text, "arc_coverage_pct") {
        match quoted_number(&current_text, "arc_coverage_pct") {
            None => {
                eprintln!(
                    "perf_guard: FAIL — baseline has arc_coverage_pct ({base_cov:.1}) but \
                     the run report lost the figure"
                );
                failed = true;
            }
            Some(cur_cov) => {
                println!(
                    "perf_guard: arc_coverage_pct current {cur_cov:.1} vs baseline \
                     {base_cov:.1} (epsilon {COVERAGE_EPSILON})"
                );
                if cur_cov < base_cov - COVERAGE_EPSILON {
                    eprintln!(
                        "perf_guard: FAIL — arc coverage dropped more than \
                         {COVERAGE_EPSILON} points below baseline"
                    );
                    failed = true;
                }
            }
        }
    }

    if failed {
        return ExitCode::FAILURE;
    }
    println!("perf_guard: OK");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_exact_key_not_derived_variants() {
        let json = r#"{"derived":{"boxed_states_per_sec":99.0,
            "packed_states_per_sec":88.0,"states_per_sec":123456.5}}"#;
        assert_eq!(states_per_sec(json), Some(123456.5));
    }

    #[test]
    fn missing_key_is_none() {
        assert_eq!(states_per_sec(r#"{"packed_states_per_sec":1.0}"#), None);
        assert_eq!(states_per_sec("{}"), None);
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(states_per_sec(r#"{"states_per_sec":1.25e5}"#), Some(1.25e5));
    }

    #[test]
    fn coverage_key_extracts_like_throughput() {
        let json = r#"{"derived":{"arc_coverage_pct":100,"states_per_sec":5.0}}"#;
        assert_eq!(quoted_number(json, "arc_coverage_pct"), Some(100.0));
        assert_eq!(quoted_number(json, "absent_key"), None);
    }
}
