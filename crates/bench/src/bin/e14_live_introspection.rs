//! E14 — live-introspection overhead: the full live stack (hierarchical
//! span tree, stack-mirroring sampling profiler, progress heartbeats,
//! Prometheus exposition) on the e8 exploration workload, against the same
//! workload with the stack off.
//!
//! The claim under test: watching a run live is free enough to leave on.
//! Three interleaved rounds, best-of-three each way (the e8/e12 defence
//! against one-off scheduler noise), with both arms warmed untimed first.
//! The off arm still records at `summary` level — the subtraction isolates
//! what the *live* additions (tree + mirror + sampler + heartbeat +
//! progress publication) cost on top of ordinary metrics. Acceptance: the
//! explored graph is identical in both arms, and overhead stays under the
//! 5% budget (`max_introspection_overhead_pct` in the e14 baseline).

use std::time::{Duration, Instant};

use jcc_core::obs;
use jcc_core::petri::{JavaNet, Parallelism, ReachGraph, ReachLimits};

fn main() {
    let mut reporter = obs::BenchReporter::init("e14_live_introspection");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } };
    }
    say!("=== E14: live-introspection overhead ===\n");

    let saved_level = reporter.level();
    // Both arms record at summary; only the live features differ.
    obs::set_level(obs::ObsLevel::Summary);
    obs::SpanTree::reset();
    let _worker = obs::register_thread("bench");

    // Each timed arm explores the net REPS times: on a single-core host a
    // ~10ms window is one scheduler decision wide, and a lone watcher
    // wake-up mid-window swings the subtraction by double digits. A
    // ~50ms batch amortizes the wake-ups into the steady-state figure the
    // budget is about.
    const REPS: usize = 5;
    let n = 7;
    let j = JavaNet::new(n);
    let seq_limits = ReachLimits {
        parallelism: Parallelism::sequential(),
        ..ReachLimits::default()
    };

    // Warm BOTH arms untimed: whichever arm runs first in a cold process
    // pays allocator/cache warm-up for both (the e8 lesson).
    obs::set_span_tree(false);
    obs::set_progress(false);
    let warm_off = ReachGraph::explore(j.net(), seq_limits);
    obs::set_span_tree(true);
    obs::set_progress(true);
    let warm_on = {
        let profiler = obs::Profiler::start(Duration::from_millis(5), 0xe14);
        let heartbeat = obs::Heartbeat::start(Duration::from_millis(10), |_| {});
        let g = ReachGraph::explore(j.net(), seq_limits);
        heartbeat.stop();
        let _ = profiler.stop();
        g
    };
    assert_eq!(
        warm_off.stats(),
        warm_on.stats(),
        "introspection must not change the explored graph"
    );

    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut on_wall = 0.0f64;
    let mut last_profile = None;
    for _ in 0..3 {
        // OFF arm: live features disabled, no watcher threads.
        obs::set_span_tree(false);
        obs::set_progress(false);
        let t0 = Instant::now();
        let mut g_off = ReachGraph::explore(j.net(), seq_limits);
        for _ in 1..REPS {
            g_off = ReachGraph::explore(j.net(), seq_limits);
        }
        best_off = best_off.min(t0.elapsed().as_secs_f64());

        // ON arm: the whole stack. Profiler/heartbeat start and stop
        // outside the timed region — their *running* cost is the claim,
        // not their spawn cost — and one untimed exploration runs after
        // the spawn so the watcher threads' lazy setup (stack, TLS, first
        // sleep) finishes before the clock starts; on a single-core host
        // that setup otherwise lands inside the timed window.
        obs::set_span_tree(true);
        obs::set_progress(true);
        let seg0 = Instant::now();
        let profiler = obs::Profiler::start(Duration::from_millis(5), 0xe14);
        let heartbeat = obs::Heartbeat::start(Duration::from_millis(10), |_| {});
        let _settle = ReachGraph::explore(j.net(), seq_limits);
        let t0 = Instant::now();
        let mut g_on = ReachGraph::explore(j.net(), seq_limits);
        for _ in 1..REPS {
            g_on = ReachGraph::explore(j.net(), seq_limits);
        }
        best_on = best_on.min(t0.elapsed().as_secs_f64());
        heartbeat.stop();
        last_profile = Some(profiler.stop());
        on_wall += seg0.elapsed().as_secs_f64();

        // The graph must be identical with the introspection stack on:
        // same states, edges, frontier peak — and the same dead states.
        assert_eq!(g_off.stats(), g_on.stats(), "arms must agree");
        assert_eq!(
            g_off.dead_states(),
            g_on.dead_states(),
            "dead-state sets must agree"
        );
    }
    obs::set_span_tree(false);
    obs::set_progress(false);

    let states = warm_off.stats().states;
    let raw_overhead_pct = (best_on - best_off) / best_off.max(1e-9) * 100.0;
    let overhead_pct = raw_overhead_pct.max(0.0);
    let noise_floor_pct = (-raw_overhead_pct).max(0.0);
    say!(
        "--- introspection overhead (petri reach N={n}, {states} states, warmed, best of 3) ---\n\
         off: {best_off:.4}s, live: {best_on:.4}s -> overhead {overhead_pct:.2}% \
         (noise floor {noise_floor_pct:.2}%, budget: < 5%)"
    );
    reporter.set_derived("introspection_overhead_pct", overhead_pct);
    reporter.set_derived("introspection_noise_floor_pct", noise_floor_pct);
    // The throughput figure the gate wants: with the live stack ON.
    reporter.set_derived(
        "states_per_sec",
        (states * REPS) as f64 / best_on.max(1e-9),
    );

    // Heartbeat / profiler activity while the live arm ran.
    let reg = obs::global();
    let beats = reg.counter("live.heartbeat.count").get();
    let samples = reg.counter("live.profiler.samples").get();
    let heartbeats_per_sec = beats as f64 / on_wall.max(1e-9);
    let samples_per_sec = samples as f64 / on_wall.max(1e-9);
    say!(
        "live activity over {on_wall:.3}s on-time: {beats} heartbeats \
         ({heartbeats_per_sec:.1}/s), {samples} profiler samples ({samples_per_sec:.1}/s)"
    );
    reporter.set_derived("heartbeats_per_sec", heartbeats_per_sec);
    reporter.set_derived("profiler_samples_per_sec", samples_per_sec);

    // --- exposition self-check -------------------------------------------
    // Serve the populated registry on an ephemeral port and fetch it back
    // curl-style: every registered counter, gauge and histogram must
    // appear in the Prometheus text (the acceptance criterion for
    // `--expose`).
    {
        let server = obs::ExposeServer::start(0).expect("bind ephemeral metrics port");
        let body = obs::fetch_metrics(server.local_addr()).expect("fetch metrics");
        let mut covered = 0usize;
        for (name, _) in reg.counter_values() {
            let n = obs::expose::sanitize_metric_name(&name);
            assert!(body.contains(&n), "counter {name} missing from exposition");
            covered += 1;
        }
        for (name, _) in reg.gauge_values() {
            let n = obs::expose::sanitize_metric_name(&name);
            assert!(body.contains(&n), "gauge {name} missing from exposition");
            covered += 1;
        }
        for (name, _) in reg.histogram_values() {
            let n = obs::expose::sanitize_metric_name(&name);
            assert!(
                body.contains(&format!("{n}_count")),
                "histogram {name} missing from exposition"
            );
            covered += 1;
        }
        server.stop();
        say!("exposition self-check: {covered} registered metrics all present in scrape");
        reporter.set_derived("exposed_metrics", covered as f64);
    }

    // --- flame-table artifact --------------------------------------------
    // The profiler's flame table plus the span tree, next to the report
    // (honoring $JCC_OBS_DIR like every bench artifact).
    if let Some(profile) = &last_profile {
        let tree = obs::SpanTree::snapshot();
        let dir = std::env::var("JCC_OBS_DIR").unwrap_or_else(|_| ".".to_string());
        let path = std::path::PathBuf::from(dir).join("BENCH_e14_flame.txt");
        let mut text = profile.render_flame_table();
        text.push('\n');
        text.push_str(&tree.render_ascii());
        match std::fs::write(&path, &text) {
            Ok(()) => say!("flame table written to {}", path.display()),
            Err(e) => eprintln!("obs: cannot write {}: {e}", path.display()),
        }
        if !reporter.quiet() {
            print!("\n{text}");
        }
    }

    obs::set_level(saved_level);
    reporter.finish();
}
