//! E3 — regenerate Figure 2: the producer–consumer monitor, exercised both
//! natively (real threads, abstract clock) and on the VM (deterministic
//! schedules).

use std::sync::Arc;

use jcc_core::clock::{Schedule, TestDriver};
use jcc_core::components::ProducerConsumer;
use jcc_core::model::examples;
use jcc_core::model::pretty::print_component;
use jcc_core::runtime::EventLog;
use jcc_core::vm::{compile, CallSpec, RunConfig, ThreadSpec, Value, Vm};

fn main() {
    let reporter = jcc_core::obs::BenchReporter::init("fig2_monitor");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } };
    }
    say!("=== Figure 2: the producer-consumer monitor ===\n");
    let component = examples::producer_consumer();
    say!("--- Monitor IR (as parsed from the DSL) ---");
    say!("{}", print_component(&component));

    say!("--- VM run: producer sends \"abc\", consumer receives 3 chars ---");
    let mut vm = Vm::new(
        compile(&component).expect("compiles"),
        vec![
            ThreadSpec {
                name: "consumer".into(),
                calls: vec![
                    CallSpec::new("receive", vec![]),
                    CallSpec::new("receive", vec![]),
                    CallSpec::new("receive", vec![]),
                ],
            },
            ThreadSpec {
                name: "producer".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("abc".into())])],
            },
        ],
    );
    let out = vm.run(&RunConfig::default());
    say!("verdict: {:?} in {} steps", out.verdict, out.steps);
    for (thread, result) in out.all_calls() {
        say!(
            "  {}: {}(..) -> {:?} (started step {}, completed {:?})",
            vm.thread_name(thread),
            result.method,
            result.returned,
            result.started_step,
            result.completed_step
        );
    }

    say!("\n--- Native run under the abstract clock ---");
    let log = EventLog::new();
    let pc = Arc::new(ProducerConsumer::new(&log));
    let c1 = Arc::clone(&pc);
    let c2 = Arc::clone(&pc);
    let p = Arc::clone(&pc);
    let schedule = Schedule::new()
        .call("receive#1", 1, move |_| {
            let ch = c1.receive().expect("guarded receive");
            assert_eq!(ch, 'h');
        })
        .call("send(hi)", 2, move |_| {
            p.send("hi").expect("guarded send");
        })
        .call("receive#2", 3, move |_| {
            let ch = c2.receive().expect("guarded receive");
            assert_eq!(ch, 'i');
        });
    let (records, clock) = TestDriver::new().run(schedule);
    say!("final clock time: {}", clock.time());
    for r in &records {
        say!(
            "  {} released at t={} completed at {:?}",
            r.label, r.released_at, r.completed_at
        );
    }
    say!(
        "\nmonitor transitions logged natively: T1={} T2={} T3={} T4={} T5={}",
        log.count_transition(jcc_core::petri::Transition::T1),
        log.count_transition(jcc_core::petri::Transition::T2),
        log.count_transition(jcc_core::petri::Transition::T3),
        log.count_transition(jcc_core::petri::Transition::T4),
        log.count_transition(jcc_core::petri::Transition::T5),
    );
    reporter.finish();
}
