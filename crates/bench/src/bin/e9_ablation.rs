//! E9 — ablation: arc coverage alone vs. arc coverage plus the
//! companion-work criteria (waiter plurality, post-wake observation,
//! notify effectiveness, mixed waiters).
//!
//! Quantifies DESIGN.md's call-out that the extra goals are load-bearing:
//! the arc-only suite passes the paper's Section-6 criterion yet misses
//! mutants the strengthened suite kills.

use jcc_core::model::examples;
use jcc_core::pipeline::{mutation_study, MutationStudyConfig};
use jcc_core::testgen::scenario::ScenarioSpace;
use jcc_core::testgen::suite::GreedyConfig;
use jcc_core::vm::{CallSpec, Value};

fn main() {
    let reporter = jcc_core::obs::BenchReporter::init("e9_ablation");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } };
    }
    let studies: Vec<(&str, jcc_core::model::Component, ScenarioSpace)> = vec![
        (
            "ProducerConsumer",
            examples::producer_consumer(),
            ScenarioSpace::new(vec![
                CallSpec::new("receive", vec![]),
                CallSpec::new("send", vec![Value::Str("a".into())]),
                CallSpec::new("send", vec![Value::Str("ab".into())]),
            ]),
        ),
        (
            "Semaphore",
            examples::semaphore(),
            ScenarioSpace::new(vec![
                CallSpec::new("init", vec![Value::Int(1)]),
                CallSpec::new("acquire", vec![]),
                CallSpec::new("release", vec![]),
            ]),
        ),
    ];

    say!("=== E9: suite-criteria ablation ===\n");
    say!(
        "{:<18} {:>16} {:>10} {:>18} {:>10}",
        "component", "arc-only kills", "scenarios", "strengthened kills", "scenarios"
    );
    for (name, component, space) in studies {
        let arc_only_cfg = MutationStudyConfig {
            greedy: GreedyConfig {
                extra_goals: false,
                ..GreedyConfig::default()
            },
            ..MutationStudyConfig::default()
        };
        let arc_only = mutation_study(&component, &space, &arc_only_cfg);
        let strengthened =
            mutation_study(&component, &space, &MutationStudyConfig::default());
        let (a, at) = arc_only.directed_score();
        let (s, st) = strengthened.directed_score();
        say!(
            "{:<18} {:>12}/{:<3} {:>10} {:>14}/{:<3} {:>10}",
            name, a, at, arc_only.directed_suite_size, s, st,
            strengthened.directed_suite_size
        );
        // Which mutants does only the strengthened suite kill?
        for (m_arc, m_str) in arc_only.mutants.iter().zip(&strengthened.mutants) {
            assert_eq!(m_arc.mutation, m_str.mutation);
            if !m_arc.detected_directed && m_str.detected_directed {
                say!(
                    "    gained by extra goals: {} ({})",
                    m_str.mutation.label(),
                    m_str.mutation.kind.seeded_class().code()
                );
            }
        }
    }
    say!(
        "\n(the extra goals implement the criteria of Harvey & Strooper 2001 — the\n\
         paper's [13] — beyond the plain CoFG arc criterion of Section 6)"
    );
    reporter.finish();
}
