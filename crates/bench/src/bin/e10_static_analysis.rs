//! E10 — the static analyzer (`jcc-analyze`) evaluated against the mutant
//! corpus, with VM exploration + `jcc-detect` as ground truth.
//!
//! For every mutant of every corpus component, the analyzer's verdict is
//! the *delta* of diagnostic identities (check, class, method) at >=
//! Medium severity between the mutant and its correct parent, projected
//! to Table-1 class codes. Ground truth per mutant:
//!
//! * the **seeded** class, when the mutant is confirmed — detected by the
//!   exhaustive signature-set comparison on the directed suite, failed to
//!   compile, newly classified by exhaustive exploration, or statically
//!   seeded by construction (EF-T1, behaviourally neutral by design);
//! * plus any classes exhaustive exploration newly assigns to the mutant
//!   (`classify_explore` over the suite's scenarios, minus the parent's
//!   baseline classes from the same deliberately unbalanced scenarios).
//!
//! Recall for a class counts confirmed mutants *seeded* with it;
//! precision counts predictions against the full truth set. The four
//! deadlock/race specimens contribute FF-T2 data points (two faulty, two
//! controls) since no mutation operator seeds a lock-order cycle.
//!
//! Expected shape: recall >= 0.6 on FF-T2 / FF-T5 / EF-T3 / EF-T5, zero
//! High-severity diagnostics on the unmutated corpus, and byte-identical
//! analyzer output across runs — all asserted below.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use jcc_core::analyze::{analyze, Severity};
use jcc_core::components::zoo::full_corpus;
use jcc_core::model::examples;
use jcc_core::model::mutate::all_mutants;
use jcc_core::model::Component;
use jcc_core::pipeline::Pipeline;
use jcc_core::testgen::corpus::space_for;
use jcc_core::testgen::scenario::Scenario;
use jcc_core::testgen::signature::{enumerate_signatures, EnumLimits};
use jcc_core::testgen::suite::GreedyConfig;
use jcc_core::vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Vm};

/// Per-class hit/miss tallies for precision and recall.
#[derive(Default, Clone)]
struct Tally {
    pred_hit: usize,
    pred_miss: usize,
    rec_hit: usize,
    rec_miss: usize,
}

impl Tally {
    fn precision(&self) -> Option<f64> {
        let n = self.pred_hit + self.pred_miss;
        (n > 0).then(|| self.pred_hit as f64 / n as f64)
    }
    fn recall(&self) -> Option<f64> {
        let n = self.rec_hit + self.rec_miss;
        (n > 0).then(|| self.rec_hit as f64 / n as f64)
    }
}

/// Classes the exhaustive exploration assigns to `component` over
/// `scenarios` (union across scenarios).
fn dynamic_classes(component: &Component, scenarios: &[Scenario]) -> BTreeSet<String> {
    let Ok(compiled) = compile(component) else {
        return BTreeSet::new();
    };
    let config = ExploreConfig {
        max_states: 60_000,
        max_depth: 1_500,
        ..ExploreConfig::default()
    };
    let mut out = BTreeSet::new();
    for scenario in scenarios {
        let result = explore(Vm::new(compiled.clone(), scenario.clone()), &config, None);
        for finding in jcc_core::detect::classify::classify_explore(&result) {
            out.insert(finding.class.code());
        }
    }
    out
}

/// The analyzer's class-level verdict: diagnostic identities at >= Medium
/// that the mutant has and the parent lacks, projected to class codes.
fn predicted_delta(
    parent_ids: &BTreeSet<(String, String, String)>,
    mutant: &Component,
    analyze_clock: &mut Duration,
) -> BTreeSet<String> {
    let t0 = Instant::now();
    let report = analyze(mutant);
    *analyze_clock += t0.elapsed();
    report
        .identities(Severity::Medium)
        .difference(parent_ids)
        .map(|(_, class, _)| class.clone())
        .collect()
}

fn main() {
    let mut reporter = jcc_core::obs::BenchReporter::init("e10_static_analysis");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } };
    }

    // -- Gate 1: the unmutated corpus — seed monitors AND the component
    // -- zoo — earns zero High diagnostics, and the analyzer's output is
    // -- byte-identical across runs.
    for (name, component) in full_corpus() {
        let a = analyze(&component);
        let b = analyze(&component);
        assert_eq!(a.render(), b.render(), "{name}: nondeterministic render");
        assert_eq!(
            a.to_json_string(),
            b.to_json_string(),
            "{name}: nondeterministic JSON"
        );
        assert_eq!(
            a.count(Severity::High),
            0,
            "{name} (correct) got High diagnostics:\n{}",
            a.render()
        );
    }
    say!("gate: zero High-severity diagnostics on the clean corpus; output deterministic\n");

    let limits = EnumLimits {
        max_states: 40_000,
        max_depth: 1_000,
    };

    let mut tallies: BTreeMap<String, Tally> = BTreeMap::new();
    let mut analyze_clock = Duration::ZERO;
    let mut mutants_total = 0usize;
    let mut mutants_confirmed = 0usize;

    // -- The mutant corpus: every component of the full corpus (seed
    // -- monitors + zoo), scenario spaces from the canonical registry.
    for (name, parent) in full_corpus() {
        let space = space_for(name)
            .unwrap_or_else(|| panic!("{name} missing from the scenario registry"));
        let pipeline = Pipeline::new(parent.clone()).expect("corpus is valid");
        let scenarios: Vec<Scenario> =
            pipeline.directed_suite(&space, &GreedyConfig::default()).scenarios;
        let parent_baseline = dynamic_classes(&parent, &scenarios);
        let correct_sigs: Vec<_> = scenarios
            .iter()
            .map(|s| enumerate_signatures(Vm::new(pipeline.compiled.clone(), s.clone()), limits).0)
            .collect();
        let t0 = Instant::now();
        let parent_ids = analyze(&parent).identities(Severity::Medium);
        analyze_clock += t0.elapsed();

        say!("== {name}: {} mutants ==", all_mutants(&parent).len());
        for (mutation, mutant) in all_mutants(&parent) {
            mutants_total += 1;
            let predicted = predicted_delta(&parent_ids, &mutant, &mut analyze_clock);
            let seeded = mutation.kind.seeded_class().code();

            let compiled = compile(&mutant).ok();
            let detected = compiled.as_ref().is_some_and(|mc| {
                scenarios.iter().zip(&correct_sigs).any(|(s, correct)| {
                    enumerate_signatures(Vm::new(mc.clone(), s.clone()), limits).0 != *correct
                })
            });
            let dynamic: BTreeSet<String> = dynamic_classes(&mutant, &scenarios)
                .difference(&parent_baseline)
                .cloned()
                .collect();
            let confirmed = detected
                || compiled.is_none()
                || !dynamic.is_empty()
                || !mutation.kind.is_behavioural_failure();
            let mut truth = dynamic.clone();
            if confirmed {
                truth.insert(seeded.clone());
                mutants_confirmed += 1;
                let t = tallies.entry(seeded.clone()).or_default();
                if predicted.contains(&seeded) {
                    t.rec_hit += 1;
                } else {
                    t.rec_miss += 1;
                }
            }
            for p in &predicted {
                let t = tallies.entry(p.clone()).or_default();
                if truth.contains(p) {
                    t.pred_hit += 1;
                } else {
                    t.pred_miss += 1;
                }
            }
            say!(
                "  {:<44} seeded {seeded} {} predicted {predicted:?} truth {truth:?}",
                mutation.label(),
                if confirmed { "confirmed" } else { "unconfirmed" },
            );
        }
    }

    // -- The specimens: FF-T2 data points (no mutation operator seeds a
    // -- lock-order cycle). Two faulty, two controls.
    let specimens: Vec<(&str, Component, Vec<&str>)> = vec![
        (
            "LockOrder",
            examples::lock_order_deadlock(),
            vec!["forward", "backward"],
        ),
        (
            "DiningDeadlock",
            examples::dining_deadlock(),
            vec!["eat0", "eat1", "eat2"],
        ),
        (
            "DiningOrdered",
            examples::dining_ordered(),
            vec!["eat0", "eat1", "eat2"],
        ),
        (
            "RacyCounter",
            examples::racy_counter(),
            vec!["increment", "increment", "get"],
        ),
    ];
    say!("\n== specimens (FF-T2) ==");
    for (name, component, calls) in specimens {
        let scenario: Scenario = calls
            .iter()
            .enumerate()
            .map(|(i, m)| ThreadSpec {
                name: format!("t{i}"),
                calls: vec![CallSpec::new(*m, vec![])],
            })
            .collect();
        let t0 = Instant::now();
        let report = analyze(&component);
        analyze_clock += t0.elapsed();
        let predicted = report.classes(Severity::Medium).contains("FF-T2");
        let truth = dynamic_classes(&component, &[scenario]).contains("FF-T2");
        let t = tallies.entry("FF-T2".into()).or_default();
        match (truth, predicted) {
            (true, true) => {
                t.rec_hit += 1;
                t.pred_hit += 1;
            }
            (true, false) => t.rec_miss += 1,
            (false, true) => t.pred_miss += 1,
            (false, false) => {}
        }
        say!("  {name:<16} deadlock observed: {truth}, cycle predicted: {predicted}");
    }

    // -- Scores.
    say!("\n{:<8} {:>10} {:>8} {:>14} {:>14}", "class", "precision", "recall", "predictions", "truth-cases");
    for (class, t) in &tallies {
        let fmt = |v: Option<f64>| v.map_or("n/a".to_string(), |x| format!("{x:.2}"));
        say!(
            "{class:<8} {:>10} {:>8} {:>14} {:>14}",
            fmt(t.precision()),
            fmt(t.recall()),
            t.pred_hit + t.pred_miss,
            t.rec_hit + t.rec_miss,
        );
        let key = class.to_lowercase().replace('-', "_");
        if let Some(p) = t.precision() {
            reporter.set_derived(&format!("precision_{key}"), p);
        }
        if let Some(r) = t.recall() {
            reporter.set_derived(&format!("recall_{key}"), r);
        }
    }
    say!(
        "\n{mutants_total} mutants ({mutants_confirmed} confirmed) + 4 specimens; \
         analyzer wall-clock {analyze_clock:.1?} total"
    );

    // -- Gate 2: the acceptance floor on the headline classes.
    for class in ["FF-T2", "FF-T5", "EF-T3", "EF-T5"] {
        let recall = tallies
            .get(class)
            .and_then(|t| t.recall())
            .unwrap_or_else(|| panic!("no ground-truth cases for {class}"));
        assert!(
            recall >= 0.6,
            "recall floor missed for {class}: {recall:.2} < 0.60"
        );
    }
    say!("gate: recall >= 0.60 on FF-T2, FF-T5, EF-T3, EF-T5");

    reporter.set_derived("components_total", full_corpus().len() as f64);
    reporter.set_derived("mutants_total", mutants_total as f64);
    reporter.set_derived("mutants_confirmed", mutants_confirmed as f64);
    reporter.set_derived("specimens", 4.0);
    reporter.set_derived("analyze_ms_total", analyze_clock.as_secs_f64() * 1e3);
    reporter.finish();
}
