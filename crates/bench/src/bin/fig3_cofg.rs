//! E4 — regenerate Figure 3: the Concurrency Flow Graphs for the
//! producer–consumer's `receive` and `send`, with the published-arc
//! comparison (including the paper's arc-3 anomaly).

use jcc_core::cofg::paper::{compare_with_figure3, figure3_arcs, ArcMatch};
use jcc_core::cofg::{build_component_cofgs, dot};
use jcc_core::model::examples;
use jcc_core::report::render_cofg_arcs;

fn main() {
    println!("=== Figure 3: CoFGs for the producer-consumer monitor ===\n");
    let component = examples::producer_consumer();
    let graphs = build_component_cofgs(&component);

    for g in &graphs {
        println!("{}", render_cofg_arcs(g));
    }

    println!("--- Comparison with the published arc table ---");
    let paper = figure3_arcs();
    for g in &graphs {
        let (matches, extra) = compare_with_figure3(g);
        println!("{}.{}:", g.component, g.method);
        for (pa, m) in paper.iter().zip(&matches) {
            let printed: Vec<String> = pa.printed.iter().map(|t| t.to_string()).collect();
            let verdict = match m {
                ArcMatch::MatchesPrinted => "matches the printed sequence".to_string(),
                ArcMatch::MatchesDerived => format!(
                    "matches the systematic derivation ({}); the paper prints {} — see DESIGN.md",
                    pa.derived
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                    printed.join(",")
                ),
                ArcMatch::TransitionMismatch { built } => {
                    format!("MISMATCH: built {built:?}")
                }
                ArcMatch::Missing => "MISSING".to_string(),
            };
            println!(
                "  arc {}: {} -> {} — {}",
                pa.number,
                pa.from.display(),
                pa.to.display(),
                verdict
            );
        }
        println!("  extra arcs beyond the paper's five: {extra}");
    }

    let send = &graphs[1];
    let receive = &graphs[0];
    println!(
        "\nsend CoFG identical to receive CoFG (paper's claim): {}",
        receive.isomorphic(send)
    );

    println!("\n--- derived test requirements (Brinch Hansen step 1) ---");
    let mut reqs = jcc_core::cofg::requirements::requirements(receive);
    reqs.extend(jcc_core::cofg::requirements::requirements(send));
    println!(
        "{}",
        jcc_core::cofg::requirements::render_requirements(&reqs)
    );

    println!("\n--- DOT rendering (both methods) ---");
    println!("{}", dot::component_to_dot(&graphs));
}
