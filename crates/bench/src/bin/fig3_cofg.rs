//! E4 — regenerate Figure 3: the Concurrency Flow Graphs for the
//! producer–consumer's `receive` and `send`, with the published-arc
//! comparison (including the paper's arc-3 anomaly).

use jcc_core::cofg::paper::{compare_with_figure3, figure3_arcs, ArcMatch};
use jcc_core::cofg::{build_component_cofgs, dot};
use jcc_core::model::examples;
use jcc_core::report::render_cofg_arcs;

fn main() {
    let reporter = jcc_core::obs::BenchReporter::init("fig3_cofg");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } };
    }
    say!("=== Figure 3: CoFGs for the producer-consumer monitor ===\n");
    let component = examples::producer_consumer();
    let graphs = build_component_cofgs(&component);

    for g in &graphs {
        say!("{}", render_cofg_arcs(g));
    }

    say!("--- Comparison with the published arc table ---");
    let paper = figure3_arcs();
    for g in &graphs {
        let (matches, extra) = compare_with_figure3(g);
        say!("{}.{}:", g.component, g.method);
        for (pa, m) in paper.iter().zip(&matches) {
            let printed: Vec<String> = pa.printed.iter().map(|t| t.to_string()).collect();
            let verdict = match m {
                ArcMatch::MatchesPrinted => "matches the printed sequence".to_string(),
                ArcMatch::MatchesDerived => format!(
                    "matches the systematic derivation ({}); the paper prints {} — see DESIGN.md",
                    pa.derived
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                    printed.join(",")
                ),
                ArcMatch::TransitionMismatch { built } => {
                    format!("MISMATCH: built {built:?}")
                }
                ArcMatch::Missing => "MISSING".to_string(),
            };
            say!(
                "  arc {}: {} -> {} — {}",
                pa.number,
                pa.from.display(),
                pa.to.display(),
                verdict
            );
        }
        say!("  extra arcs beyond the paper's five: {extra}");
    }

    let send = &graphs[1];
    let receive = &graphs[0];
    say!(
        "\nsend CoFG identical to receive CoFG (paper's claim): {}",
        receive.isomorphic(send)
    );

    say!("\n--- derived test requirements (Brinch Hansen step 1) ---");
    let mut reqs = jcc_core::cofg::requirements::requirements(receive);
    reqs.extend(jcc_core::cofg::requirements::requirements(send));
    say!(
        "{}",
        jcc_core::cofg::requirements::render_requirements(&reqs)
    );

    say!("\n--- DOT rendering (both methods) ---");
    say!("{}", dot::component_to_dot(&graphs));
    reporter.finish();
}
