//! E7 — the runtime detectors the paper cites: the Eraser lockset race
//! detector on an FF-T1 specimen, and lock-order cycle detection on a
//! lock-inversion specimen, with classification into Table-1 classes.

use jcc_core::detect::classify::{classify_cycles, classify_races};
use jcc_core::detect::lockorder::LockOrderGraph;
use jcc_core::detect::lockset::LocksetAnalyzer;
use jcc_core::detect::normalize::from_vm_trace;
use jcc_core::model::examples;
use jcc_core::vm::{compile, explore, CallSpec, ExploreConfig, RunConfig, ThreadSpec, Vm};

fn main() {
    let mut reporter = jcc_core::obs::BenchReporter::init("e7_detectors");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } };
    }
    say!("=== E7: Eraser lockset + lock-order deadlock detection ===\n");

    // --- FF-T1: the racy counter ---
    say!("--- RacyCounter (unsynchronized increment) ---");
    let c = examples::racy_counter();
    let mut vm = Vm::new(
        compile(&c).unwrap(),
        vec![
            ThreadSpec {
                name: "a".into(),
                calls: vec![CallSpec::new("increment", vec![])],
            },
            ThreadSpec {
                name: "b".into(),
                calls: vec![CallSpec::new("increment", vec![])],
            },
        ],
    );
    let out = vm.run(&RunConfig::default());
    let races = LocksetAnalyzer::analyze(&from_vm_trace(&out.trace));
    for finding in classify_races(&races) {
        say!("  {finding}");
    }
    // Interference witnessed concretely: some schedule loses an update.
    let vm2 = Vm::new(
        compile(&c).unwrap(),
        vec![
            ThreadSpec {
                name: "a".into(),
                calls: vec![CallSpec::new("increment", vec![])],
            },
            ThreadSpec {
                name: "b".into(),
                calls: vec![CallSpec::new("increment", vec![])],
            },
        ],
    );
    let result = explore(vm2, &ExploreConfig::default(), None);
    say!(
        "  exhaustive check: {} schedules complete; interference makes the final count \
         schedule-dependent (lockset flags the cause statically-on-trace)",
        result.completed_paths
    );

    // --- FF-T2: opposite lock orders ---
    say!("\n--- LockOrder (forward: a then b; backward: b then a) ---");
    let c = examples::lock_order_deadlock();
    let mut vm = Vm::new(
        compile(&c).unwrap(),
        vec![ThreadSpec {
            name: "probe".into(),
            calls: vec![
                CallSpec::new("forward", vec![]),
                CallSpec::new("backward", vec![]),
            ],
        }],
    );
    let out = vm.run(&RunConfig::default());
    let graph = LockOrderGraph::build(&from_vm_trace(&out.trace));
    say!("  lock-order edges: {:?}", graph.edges());
    let cycles = graph.cycles();
    for finding in classify_cycles(&cycles) {
        say!("  {finding}");
    }
    // Confirm the predicted deadlock actually exists under some schedule.
    let vm2 = Vm::new(
        compile(&c).unwrap(),
        vec![
            ThreadSpec {
                name: "f".into(),
                calls: vec![CallSpec::new("forward", vec![])],
            },
            ThreadSpec {
                name: "b".into(),
                calls: vec![CallSpec::new("backward", vec![])],
            },
        ],
    );
    let result = explore(vm2, &ExploreConfig::default(), None);
    say!(
        "  exhaustive confirmation: {} of {} terminal paths deadlock (predicted by the cycle)",
        result.deadlock_paths,
        result.deadlock_paths + result.completed_paths
    );
    reporter.set_derived("races_found", races.len() as f64);
    reporter.set_derived("lock_order_cycles", cycles.len() as f64);
    reporter.finish();
}
