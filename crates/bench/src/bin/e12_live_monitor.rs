//! E12 — always-on monitor saturation: N producer threads hammer the
//! lock-free capture path with zoo-derived event streams while a collector
//! drains the per-thread rings into the online detectors.
//!
//! Three questions, answered with internal gates:
//!
//! 1. **Overhead** — per-event capture cost against an uninstrumented
//!    baseline doing the identical synthetic work (warmed, interleaved,
//!    best-of-3; the same clamp discipline as e8's obs-overhead figure).
//!    Budget: < 5% at `summary` level.
//! 2. **Losslessness** — at sampling rate 1 with a live collector the CI
//!    smoke workload must complete with **zero drops**, and the online
//!    verdicts must byte-match the post-hoc `jcc-detect` classification on
//!    every corpus stream.
//! 3. **Degradation** — with a deliberately tiny ring the producer never
//!    blocks: it sheds events, the stream carries `CaptureGap` records,
//!    and the online monitor flags itself degraded.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use jcc_core::components::zoo::full_corpus;
use jcc_core::detect::classify_runtime_events;
use jcc_core::runtime::{EventKind, EventLog, MonitorId, OnlineMonitor};
use jcc_core::testgen::corpus::space_for;
use jcc_core::vm::{compile, RunConfig, ThreadSpec, TraceEvent, TraceEventKind, Vm};

/// One capture call, pre-decoded from a VM trace.
type Op = (MonitorId, EventKind);

/// Producer threads in the saturation arms. Fixed, so the workload (and
/// the baseline it is compared to) is identical on every host.
const PRODUCERS: usize = 4;

/// Target capture calls per producer per timed run.
const EVENTS_PER_PRODUCER: usize = 20_000;

/// Rounds of the splitmix work chain between captures — the "component
/// doing real work" stand-in (a few µs/event, what a monitor method body
/// costs between sync points). Sized so the fixed per-event monitor cost
/// (capture + collector + online detectors, which share the CPU budget on
/// a core-starved host) lands inside the 5% budget rather than dominating
/// the loop.
const WORK_ROUNDS: u64 = 3_500;

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The uninstrumented unit of work: a data-dependent splitmix chain the
/// optimizer cannot collapse.
fn work_unit(seed: u64) -> u64 {
    let mut acc = seed;
    for _ in 0..WORK_ROUNDS {
        acc = mix64(acc);
    }
    acc
}

/// Decode a VM trace into capture calls, the same mapping the online
/// differential suite uses (lock index = monitor id, field = variable).
fn ops_of(trace: &[TraceEvent]) -> Vec<(u64, Op)> {
    let mut out = Vec::with_capacity(trace.len());
    for e in trace {
        let thread = e.thread as u64 + 1;
        let op = match &e.kind {
            TraceEventKind::Transition { t, lock } => {
                Some((MonitorId(*lock as u64), EventKind::Transition(*t)))
            }
            TraceEventKind::NotifyIssued { lock, all, waiters } => Some((
                MonitorId(*lock as u64),
                EventKind::NotifyIssued {
                    all: *all,
                    waiters: *waiters,
                },
            )),
            TraceEventKind::FieldRead { field } => {
                Some((MonitorId(0), EventKind::Read { var: field.clone() }))
            }
            TraceEventKind::FieldWrite { field } => {
                Some((MonitorId(0), EventKind::Write { var: field.clone() }))
            }
            TraceEventKind::MethodStart { method } => Some((
                MonitorId(0),
                EventKind::MethodStart {
                    method: method.clone(),
                },
            )),
            TraceEventKind::MethodEnd { method } => Some((
                MonitorId(0),
                EventKind::MethodEnd {
                    method: method.clone(),
                },
            )),
            _ => None,
        };
        if let Some(op) = op {
            out.push((thread, op));
        }
    }
    out
}

/// One deterministic VM run per corpus component, decoded into capture
/// calls (with the originating VM thread, for the controlled replays).
fn corpus_streams() -> Vec<(String, Vec<(u64, Op)>)> {
    full_corpus()
        .into_iter()
        .map(|(name, component)| {
            let compiled = compile(&component).unwrap();
            let space = space_for(name).expect("corpus component is registered");
            let mut vm = Vm::new(
                compiled,
                space
                    .templates
                    .iter()
                    .enumerate()
                    .map(|(i, session)| ThreadSpec {
                        name: format!("t{i}"),
                        calls: session.clone(),
                    })
                    .collect(),
            );
            let out = vm.run(&RunConfig::default());
            (name.to_string(), ops_of(&out.trace))
        })
        .collect()
}

/// The uninstrumented arm: every producer does the identical per-event
/// work, no capture. Returns wall seconds.
fn run_baseline(master: &Arc<Vec<Op>>, reps: usize) -> f64 {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let master = Arc::clone(master);
            std::thread::spawn(move || {
                let mut acc = p as u64;
                for rep in 0..reps {
                    for (i, _) in master.iter().enumerate() {
                        acc = work_unit(acc ^ (rep as u64) << 32 ^ i as u64);
                    }
                }
                std::hint::black_box(acc)
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    t0.elapsed().as_secs_f64()
}

/// The instrumented arm: same work, plus one capture per event, with a
/// live collector draining the rings into the online detectors. Returns
/// (wall seconds, drops, events captured, findings the collector saw).
fn run_instrumented(master: &Arc<Vec<Op>>, reps: usize) -> (f64, u64, u64, usize) {
    let log = EventLog::new();
    log.set_ring_capacity_words(1 << 15);
    let done = Arc::new(AtomicBool::new(false));
    let collector = {
        let log = log.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut online = OnlineMonitor::default();
            while !done.load(Ordering::Acquire) {
                log.drain_for_each(|e| online.observe(&e));
                std::thread::yield_now();
            }
            log.drain_for_each(|e| online.observe(&e));
            online
        })
    };

    let t0 = Instant::now();
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let log = log.clone();
            let master = Arc::clone(master);
            std::thread::spawn(move || {
                let mut acc = p as u64;
                for rep in 0..reps {
                    for (i, (monitor, kind)) in master.iter().enumerate() {
                        acc = work_unit(acc ^ (rep as u64) << 32 ^ i as u64);
                        log.log(*monitor, kind.clone());
                    }
                }
                std::hint::black_box(acc)
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let wall = t0.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);
    let online = collector.join().unwrap();
    let drops = log.drop_count();
    (wall, drops, online.events_seen(), online.verdicts().len())
}

fn main() {
    let mut reporter = jcc_core::obs::BenchReporter::init("e12_live_monitor");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } };
    }
    say!("=== E12: always-on monitor saturation ===\n");

    let streams = corpus_streams();
    let master: Vec<Op> = streams
        .iter()
        .flat_map(|(_, ops)| ops.iter().map(|(_, op)| op.clone()))
        .collect();
    let master = Arc::new(master);
    assert!(!master.is_empty(), "corpus produced no events");
    let reps = (EVENTS_PER_PRODUCER / master.len()).max(1);
    let events_per_run = (PRODUCERS * reps * master.len()) as u64;
    say!(
        "workload: {} producers x {} reps x {} zoo-derived events = {} captures/run",
        PRODUCERS,
        reps,
        master.len(),
        events_per_run
    );

    // --- differential gate: online verdicts byte-match post-hoc detect ---
    // Controlled single-driver replays of every corpus stream, before any
    // saturation: rate 1, no drops, verdict strings must be identical.
    let mut online_findings = 0usize;
    for (name, ops) in &streams {
        let log = EventLog::new();
        for (thread, (monitor, kind)) in ops {
            log.log_as(*thread, *monitor, kind.clone());
        }
        assert_eq!(log.drop_count(), 0, "{name}: controlled replay dropped");
        let events = log.snapshot();
        let mut online = OnlineMonitor::default();
        online.observe_all(&events);
        let got: Vec<String> = online.verdicts().iter().map(|f| f.to_string()).collect();
        let want: Vec<String> = classify_runtime_events(&events)
            .iter()
            .map(|f| f.to_string())
            .collect();
        assert_eq!(got, want, "{name}: online diverged from post-hoc detect");
        online_findings += got.len();
    }
    say!(
        "differential gate: online == post-hoc on all {} corpus streams ({} findings)",
        streams.len(),
        online_findings
    );
    reporter.set_derived("online_findings", online_findings as f64);

    // --- saturation: capture overhead vs uninstrumented baseline ---
    // Warm both arms untimed (first-arm allocator/cache warm-up must not
    // skew the subtraction), then three interleaved rounds, best of each.
    run_baseline(&master, reps);
    run_instrumented(&master, reps);
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut total_drops = 0u64;
    let mut total_captured = 0u64;
    let mut total_produced = 0u64;
    for _ in 0..3 {
        best_off = best_off.min(run_baseline(&master, reps));
        let (wall, drops, captured, _) = run_instrumented(&master, reps);
        best_on = best_on.min(wall);
        total_drops += drops;
        total_captured += captured;
        total_produced += events_per_run;
    }
    assert_eq!(
        total_captured + total_drops,
        total_produced,
        "every capture call either lands in the stream or is counted as a drop"
    );
    // The acceptance bar: the CI smoke workload completes losslessly at
    // sampling rate 1 — the ring plus a live collector absorb saturation.
    assert_eq!(total_drops, 0, "rate-1 smoke workload must not drop events");
    let raw_overhead_pct = (best_on - best_off) / best_off * 100.0;
    let overhead_pct = raw_overhead_pct.max(0.0);
    let noise_floor_pct = (-raw_overhead_pct).max(0.0);
    let events_per_sec = events_per_run as f64 / best_on.max(1e-9);
    let ns_per_event = best_on * 1e9 / events_per_run as f64;
    let drop_rate_pct = total_drops as f64 / total_produced as f64 * 100.0;
    say!(
        "\n--- saturation (warmed, best of 3) ---\n\
         baseline: {best_off:.4}s, instrumented: {best_on:.4}s \
         -> overhead {overhead_pct:.2}% (noise floor {noise_floor_pct:.2}%, budget < 5%)\n\
         {events_per_sec:.0} events/s across {PRODUCERS} producers \
         ({ns_per_event:.0} ns/event incl. work), drops {total_drops} ({drop_rate_pct:.2}%)"
    );
    reporter.set_derived("events_per_sec", events_per_sec);
    reporter.set_derived("capture_overhead_pct", overhead_pct);
    reporter.set_derived("capture_noise_floor_pct", noise_floor_pct);
    reporter.set_derived("drop_rate_pct", drop_rate_pct);

    // Capture-latency percentiles, from the sampled latency histogram the
    // producers feed while obs is enabled (also surfaced by e8).
    let latency = jcc_core::obs::global()
        .histogram("runtime.capture.latency_ns")
        .snapshot();
    if latency.count > 0 {
        let (p50, p90, p99) = (
            latency.percentile(50.0).unwrap_or(0),
            latency.percentile(90.0).unwrap_or(0),
            latency.percentile(99.0).unwrap_or(0),
        );
        say!("capture latency (ns, log2 buckets): p50 {p50}, p90 {p90}, p99 {p99}");
        reporter.set_derived("capture_latency_p50_ns", p50 as f64);
        reporter.set_derived("capture_latency_p90_ns", p90 as f64);
        reporter.set_derived("capture_latency_p99_ns", p99 as f64);
    }

    // --- sampling sweep: deterministic, sync-exact, monotone ---
    let (sweep_name, sweep_ops) = streams
        .iter()
        .max_by_key(|(_, ops)| ops.len())
        .expect("streams nonempty");
    let replay_sampled = |shift: u32| -> Vec<jcc_core::runtime::Event> {
        let log = EventLog::new();
        log.set_sampling(shift, 0xe12_5eed);
        for (thread, (monitor, kind)) in sweep_ops {
            log.log_as(*thread, *monitor, kind.clone());
        }
        log.snapshot()
    };
    let full_len = sweep_ops.len();
    let is_sync = |k: &EventKind| {
        matches!(k, EventKind::Transition(_) | EventKind::NotifyIssued { .. })
    };
    let sync_total = replay_sampled(0)
        .iter()
        .filter(|e| is_sync(&e.kind))
        .count();
    say!("\n--- sampling sweep ({sweep_name}, {full_len} events) ---");
    let mut prev_kept = usize::MAX;
    for shift in [0u32, 2, 4] {
        let events = replay_sampled(shift);
        let again = replay_sampled(shift);
        assert_eq!(events, again, "sampling must be deterministic under replay");
        let kept = events.len();
        let sync_kept = events.iter().filter(|e| is_sync(&e.kind)).count();
        assert_eq!(
            sync_kept, sync_total,
            "transitions and notifications are never sampled out"
        );
        if shift == 0 {
            assert_eq!(kept, full_len, "rate 1 keeps every event");
        }
        assert!(kept <= prev_kept, "kept events shrink as the rate coarsens");
        prev_kept = kept;
        let kept_pct = kept as f64 / full_len as f64 * 100.0;
        say!(
            "  1/{:<3} kept {kept}/{full_len} ({kept_pct:.1}%), sync events exact",
            1u64 << shift
        );
        reporter.set_derived(&format!("sampling_shift{shift}_kept_pct"), kept_pct);
    }

    // --- graceful degradation: tiny ring, no collector ---
    // The producer must never block: it sheds, and once the collector
    // frees space the stream carries the gap record.
    {
        let log = EventLog::new();
        log.set_ring_capacity_words(64);
        let m = MonitorId(1);
        for i in 0..64 {
            log.log_as(
                1,
                m,
                EventKind::Write {
                    var: format!("v{}", i % 4),
                },
            );
        }
        let shed = log.drop_count();
        assert!(shed > 0, "a 64-word ring must overflow under 64 events");
        let mut online = OnlineMonitor::default();
        log.drain_for_each(|e| online.observe(&e));
        log.log_as(1, m, EventKind::Write { var: "v0".into() });
        log.drain_for_each(|e| online.observe(&e));
        assert!(online.degraded(), "the gap record must mark degraded mode");
        assert_eq!(online.dropped_events(), shed, "gap records carry the tally");
        say!(
            "\n--- degradation (64-word ring, no collector) ---\n\
             shed {shed} events without blocking; online monitor degraded: {}, \
             ring occupancy high-water {} words",
            online.degraded(),
            log.ring_occupancy_hwm()
        );
        reporter.set_derived("stress_shed_events", shed as f64);
    }
    reporter.set_derived(
        "ring_occupancy_hwm_words",
        jcc_core::obs::global()
            .gauge("runtime.ring.occupancy_hwm_words")
            .get() as f64,
    );

    reporter.finish();
}
