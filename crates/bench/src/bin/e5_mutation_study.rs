//! E5 — the mutation study: CoFG-directed suites vs undirected random
//! testing, over the component corpus, per Table-1 failure class.
//!
//! Expected shape: the directed suite detects every behavioural mutant
//! except provable equivalents (the notify-for-notifyAll mutants of
//! components whose every method re-notifies); the random baseline misses
//! the wait/notify-path mutants that need specific interleavings.

use std::time::Instant;

use jcc_core::components::zoo::full_corpus;
use jcc_core::petri::Parallelism;
use jcc_core::pipeline::{mutation_study, MutationStudyConfig};
use jcc_core::report::render_study;
use jcc_core::testgen::corpus::space_for;

fn main() {
    let mut reporter = jcc_core::obs::BenchReporter::init("e5_mutation_study");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } };
    }
    // The full corpus — the five seed monitors plus the component zoo —
    // with each component's scenario space from the canonical registry.
    // (Readers–writers and the zoo's heterogeneous-waiter monitors are
    // where notify-for-notifyAll is a genuine FF-T5; on single-predicate
    // monitors it is an equivalent mutant.)
    let studies: Vec<(&str, jcc_core::model::Component)> = full_corpus();

    let seq_config = MutationStudyConfig {
        parallelism: Parallelism::sequential(),
        ..MutationStudyConfig::default()
    };
    // At least two workers, so the fan-out engine is exercised even on a
    // single-core host.
    let par_config = MutationStudyConfig {
        parallelism: Parallelism::with_threads(Parallelism::available().threads.max(2)),
        ..MutationStudyConfig::default()
    };
    let workers = par_config.parallelism.threads;
    let mut grand_directed = (0usize, 0usize);
    let mut grand_random = (0usize, 0usize);
    let mut components_scored = 0usize;
    for (name, component) in studies {
        let space = space_for(name)
            .unwrap_or_else(|| panic!("{name} missing from the scenario registry"));
        say!("================================================================");
        say!("E5 mutation study: {name}");
        say!("================================================================");
        let t0 = Instant::now();
        let sequential = mutation_study(&component, &space, &seq_config);
        let seq_time = t0.elapsed();
        let t0 = Instant::now();
        let result = mutation_study(&component, &space, &par_config);
        let par_time = t0.elapsed();
        assert_eq!(
            sequential.directed_score(),
            result.directed_score(),
            "parallel study must reproduce the sequential scores"
        );
        assert_eq!(sequential.random_score(), result.random_score());
        say!("{}", render_study(&result));
        say!(
            "throughput: sequential {seq_time:.1?}, parallel x{workers} {par_time:.1?}\n"
        );
        components_scored += 1;
        let (dd, dt) = result.directed_score();
        let (rd, rt) = result.random_score();
        grand_directed.0 += dd;
        grand_directed.1 += dt;
        grand_random.0 += rd;
        grand_random.1 += rt;
    }
    say!("================================================================");
    say!(
        "TOTAL behavioural mutants detected — directed: {}/{} ({:.0}%), random: {}/{} ({:.0}%)",
        grand_directed.0,
        grand_directed.1,
        100.0 * grand_directed.0 as f64 / grand_directed.1 as f64,
        grand_random.0,
        grand_random.1,
        100.0 * grand_random.0 as f64 / grand_random.1 as f64,
    );
    reporter.set_derived("components_scored", components_scored as f64);
    reporter.set_derived("behavioural_mutants", grand_directed.1 as f64);
    reporter.set_derived("detected_directed_total", grand_directed.0 as f64);
    reporter.set_derived("detected_random_total", grand_random.0 as f64);
    reporter.finish();
}
