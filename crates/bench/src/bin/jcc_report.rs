//! `jcc-report` — the cross-run regression ledger.
//!
//! Takes two or more `BENCH_*.json` run reports (as written by
//! `BenchReporter` / `JCC_OBS=summary`) in chronological order, diffs each
//! consecutive pair — counters, derived throughputs, coverage percentages —
//! and renders the result as a human table plus, with `--out=PATH`, the
//! stable machine-readable `jcc-ledger/v1` JSON.
//!
//! ```text
//! cargo run -p jcc-bench --bin jcc-report -- BENCH_old.json BENCH_new.json \
//!     --out=jcc-ledger.json --gate
//! ```
//!
//! Flags:
//!
//! * `--out=PATH` — also write the ledger JSON to `PATH`,
//! * `--gate` — exit non-zero when any comparison regressed (throughput
//!   below the floor, coverage dropped by more than the epsilon, or a
//!   coverage key disappeared) — the CI wiring,
//! * `--quiet` — suppress the human table (the exit code and `--out` file
//!   still carry the verdict).
//!
//! Diffing a report against itself yields zero regressions by construction;
//! CI runs exactly that as a self-check.

use std::process::ExitCode;

use jcc_core::obs::ledger::Ledger;
use jcc_core::obs::RunReport;

fn usage() -> ExitCode {
    eprintln!(
        "usage: jcc-report <BENCH_a.json> <BENCH_b.json> [more.json ...] \
         [--out=PATH] [--gate] [--quiet]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut gate = false;
    let mut quiet = false;
    for arg in std::env::args().skip(1) {
        if let Some(path) = arg.strip_prefix("--out=") {
            out = Some(path.to_string());
        } else if arg == "--gate" {
            gate = true;
        } else if arg == "--quiet" {
            quiet = true;
        } else if arg.starts_with("--") {
            eprintln!("jcc-report: unknown flag {arg}");
            return usage();
        } else {
            files.push(arg);
        }
    }
    if files.len() < 2 {
        return usage();
    }

    let mut reports: Vec<RunReport> = Vec::with_capacity(files.len());
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("jcc-report: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match RunReport::from_json_str(&text) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("jcc-report: {path} is not a run report: {e:?}");
                return ExitCode::from(2);
            }
        }
    }

    let ledger = Ledger::from_reports(&reports);
    if !quiet {
        print!("{}", ledger.render_table());
    }
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, ledger.to_json_string()) {
            eprintln!("jcc-report: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        if !quiet {
            println!("ledger written to {path}");
        }
    }
    let regressions = ledger.regression_count();
    if gate && regressions > 0 {
        eprintln!("jcc-report: {regressions} regression(s) — failing the gate");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
