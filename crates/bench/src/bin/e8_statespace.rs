//! E8 — state-space growth: the N-thread petri composition and VM schedule
//! exploration of the producer–consumer, versus thread count.

use jcc_core::model::examples;
use jcc_core::petri::{JavaNet, ReachGraph, ReachLimits};
use jcc_core::vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Value, Vm};

fn main() {
    println!("=== E8: state-space growth ===\n");

    println!("--- Figure-1 net composed for N threads ---");
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12}",
        "threads", "states", "edges", "edges*", "dead*"
    );
    for n in 1..=6 {
        let j = JavaNet::new(n);
        let g = ReachGraph::explore(j.net(), ReachLimits::default());
        let gf = ReachGraph::explore_filtered(
            j.net(),
            ReachLimits::default(),
            j.notify_side_condition(),
        );
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>12}",
            n,
            g.stats().states,
            g.stats().edges,
            gf.stats().edges,
            gf.dead_states().len()
        );
    }
    println!(
        "(* under the dashed-arc side condition: notifications need a notifier inside the \
         monitor — the dead states are the all-threads-waiting lost-wakeup configurations)"
    );

    println!("\n--- VM schedule exploration: producer-consumer ---");
    println!(
        "{:>10} {:>10} {:>12} {:>11} {:>10}",
        "consumers", "states", "transitions", "completed†", "deadlocks"
    );
    let component = examples::producer_consumer();
    let compiled = compile(&component).unwrap();
    for consumers in 1..=3 {
        let mut threads = vec![ThreadSpec {
            name: "p".into(),
            calls: vec![CallSpec::new(
                "send",
                vec![Value::Str("x".repeat(consumers))],
            )],
        }];
        for i in 0..consumers {
            threads.push(ThreadSpec {
                name: format!("c{i}"),
                calls: vec![CallSpec::new("receive", vec![])],
            });
        }
        let vm = Vm::new(compiled.clone(), threads);
        let r = explore(vm, &ExploreConfig::default(), None);
        println!(
            "{:>10} {:>10} {:>12} {:>11} {:>10}",
            consumers, r.states, r.transitions, r.completed_paths, r.deadlock_paths
        );
    }
    println!(
        "\n(† distinct terminal completion states after state-merging; each consumer \
         receives one character and the send provides exactly enough, so no schedule \
         deadlocks)"
    );
}
