//! E8 — state-space growth: the N-thread petri composition and VM schedule
//! exploration of the producer–consumer, versus thread count.

use std::time::Instant;

use jcc_core::cofg::{build_component_cofgs, CoverageTracker};
use jcc_core::model::examples;
use jcc_core::petri::{JavaNet, Parallelism, ReachGraph, ReachLimits};
use jcc_core::vm::{
    compile, explore, explore_portfolio, timeline_of_outcome, CallSpec, ExploreConfig,
    PortfolioConfig, RunConfig, ThreadSpec, Value, Vm,
};

fn main() {
    let mut reporter = jcc_core::obs::BenchReporter::init("e8_statespace");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } };
    }
    say!("=== E8: state-space growth ===\n");

    say!("--- Figure-1 net composed for N threads ---");
    say!(
        "{:>8} {:>10} {:>10} {:>12} {:>12}",
        "threads", "states", "edges", "edges*", "dead*"
    );
    for n in 1..=6 {
        let j = JavaNet::new(n);
        let g = ReachGraph::explore(j.net(), ReachLimits::default());
        let gf = ReachGraph::explore_filtered(
            j.net(),
            ReachLimits::default(),
            j.notify_side_condition(),
        );
        // Publishes the per-transition petri.firing.T* counters.
        let _ = g.firing_counts_by_kind(j.net());
        say!(
            "{:>8} {:>10} {:>10} {:>12} {:>12}",
            n,
            g.stats().states,
            g.stats().edges,
            gf.stats().edges,
            gf.dead_states().len()
        );
    }
    say!(
        "(* under the dashed-arc side condition: notifications need a notifier inside the \
         monitor — the dead states are the all-threads-waiting lost-wakeup configurations)"
    );

    say!("\n--- VM schedule exploration: producer-consumer ---");
    say!(
        "{:>10} {:>10} {:>12} {:>11} {:>10}",
        "consumers", "states", "transitions", "completed†", "deadlocks"
    );
    let component = examples::producer_consumer();
    let compiled = compile(&component).unwrap();
    let mut tracker = CoverageTracker::new(build_component_cofgs(&component));
    for consumers in 1..=3 {
        let mut threads = vec![ThreadSpec {
            name: "p".into(),
            calls: vec![CallSpec::new(
                "send",
                vec![Value::Str("x".repeat(consumers))],
            )],
        }];
        for i in 0..consumers {
            threads.push(ThreadSpec {
                name: format!("c{i}"),
                calls: vec![CallSpec::new("receive", vec![])],
            });
        }
        let vm = Vm::new(compiled.clone(), threads);
        let r = explore(vm, &ExploreConfig::default(), Some(&mut tracker));
        say!(
            "{:>10} {:>10} {:>12} {:>11} {:>10}",
            consumers, r.states, r.transitions, r.completed_paths, r.deadlock_paths
        );
    }
    say!(
        "\n(† distinct terminal completion states after state-merging; each consumer \
         receives one character and the send provides exactly enough, so no schedule \
         deadlocks)"
    );
    let arc_coverage_pct = tracker.ratio() * 100.0;
    say!(
        "CoFG arc coverage over all explored schedules: {}/{} ({arc_coverage_pct:.1}%)",
        tracker.covered_arcs(),
        tracker.total_arcs()
    );
    reporter.set_derived("arc_coverage_pct", arc_coverage_pct);

    // One concrete schedule's causal timeline, exported in Chrome Trace
    // Event Format (load the file in Perfetto / chrome://tracing). The
    // timeline is a pure function of the recorded trace, so this costs the
    // benchmark nothing and can never change a result.
    {
        let mut threads = vec![ThreadSpec {
            name: "producer".into(),
            calls: vec![CallSpec::new("send", vec![Value::Str("xxx".into())])],
        }];
        for i in 0..3 {
            threads.push(ThreadSpec {
                name: format!("consumer-{i}"),
                calls: vec![CallSpec::new("receive", vec![])],
            });
        }
        let mut vm = Vm::new(compiled.clone(), threads);
        let outcome = vm.run(&RunConfig::default());
        let cofgs = build_component_cofgs(&component);
        let timeline = timeline_of_outcome(&outcome, Some(&cofgs));
        reporter.write_chrome_trace(&timeline);
    }

    say!("\n--- sequential vs parallel throughput ---");
    // At least two workers, so the parallel engine is exercised even on a
    // single-core host (where it can only show its overhead, not a speedup).
    let threads = Parallelism::available().threads.max(2);
    let parallel = Parallelism::with_threads(threads);
    let big = JavaNet::new(6);
    let t0 = Instant::now();
    let seq = ReachGraph::explore(
        big.net(),
        ReachLimits {
            parallelism: Parallelism::sequential(),
            ..ReachLimits::default()
        },
    );
    let seq_time = t0.elapsed();
    let t0 = Instant::now();
    let par = ReachGraph::explore(
        big.net(),
        ReachLimits {
            parallelism: parallel,
            ..ReachLimits::default()
        },
    );
    let par_time = t0.elapsed();
    assert_eq!(seq.stats(), par.stats(), "parallel graph must be identical");
    say!(
        "petri reachability (N=6, {} states): sequential {:.1?}, parallel x{} {:.1?}",
        seq.stats().states,
        seq_time,
        threads,
        par_time
    );
    reporter.set_derived("petri_seq_seconds", seq_time.as_secs_f64());
    reporter.set_derived("petri_par_seconds", par_time.as_secs_f64());

    // --- state-space reduction: ample sets + thread-symmetry quotient ---
    // The same net explored full and reduced. The reduced run reaches the
    // same deadlock verdicts over a fraction of the states, so its
    // *equivalent* throughput — full-size states per reduced-run second —
    // is the figure an exploration user experiences.
    {
        use jcc_core::petri::Reduction;
        let n = 10;
        let j = JavaNet::new(n);
        let seq_limits = ReachLimits {
            parallelism: Parallelism::sequential(),
            ..ReachLimits::default()
        };
        let t0 = Instant::now();
        let full = ReachGraph::explore(j.net(), seq_limits);
        let full_secs = t0.elapsed().as_secs_f64().max(1e-9);
        let t0 = Instant::now();
        let reduced = ReachGraph::explore(
            j.net(),
            ReachLimits {
                reduction: Reduction::full(Some(j.thread_symmetry())),
                ..seq_limits
            },
        );
        let red_secs = t0.elapsed().as_secs_f64().max(1e-9);
        // Verdict equivalence (the orbit-level proof lives in the petri
        // test suite); here the deadlock-freedom verdicts must agree.
        assert_eq!(
            full.dead_states().is_empty(),
            reduced.dead_states().is_empty(),
            "reduction changed the deadlock verdict"
        );
        assert!(reduced.stats().states < full.stats().states);
        let reduction_factor = full.stats().states as f64 / reduced.stats().states.max(1) as f64;
        let equiv_rate = full.stats().states as f64 / red_secs;
        say!(
            "\n--- reduction: JavaNet(N={n}) full vs ample+symmetry ---\n\
             full {} states in {full_secs:.3}s ({:.0} states/s); reduced {} states in \
             {red_secs:.3}s -> x{reduction_factor:.1} fewer states, \
             {equiv_rate:.0} equivalent states/s",
            full.stats().states,
            full.stats().states as f64 / full_secs,
            reduced.stats().states,
        );
        reporter.set_derived("reduction_factor", reduction_factor);
        reporter.set_derived("reduction_equiv_states_per_sec", equiv_rate);

        // The VM explorer's knobs on the 4-consumer producer–consumer
        // (consumers share a name, so they form one symmetry group).
        let mk = || {
            Vm::new(compiled.clone(), {
                let mut t = vec![ThreadSpec {
                    name: "p".into(),
                    calls: vec![CallSpec::new("send", vec![Value::Str("xxxx".into())])],
                }];
                for _ in 0..4 {
                    t.push(ThreadSpec {
                        name: "c".into(),
                        calls: vec![CallSpec::new("receive", vec![])],
                    });
                }
                t
            })
        };
        let vm_full = explore(mk(), &ExploreConfig::default(), None);
        let vm_reduced = explore(
            mk(),
            &ExploreConfig {
                symmetry: true,
                ample: true,
                ..ExploreConfig::default()
            },
            None,
        );
        assert_eq!(
            vm_full.found_failure(),
            vm_reduced.found_failure(),
            "reduction changed the VM failure verdict"
        );
        let vm_reduction_factor = vm_full.states as f64 / vm_reduced.states.max(1) as f64;
        say!(
            "vm explorer (4 symmetric consumers): full {} states, reduced {} \
             (x{vm_reduction_factor:.1}, {} branches pruned)",
            vm_full.states, vm_reduced.states, vm_reduced.ample_pruned
        );
        reporter.set_derived("vm_reduction_factor", vm_reduction_factor);
    }

    // --- packed vs boxed representation, same net, same engine shape ---
    // An 8-place token ring with 10 tokens: C(17,7) = 19448 reachable
    // markings, eligible for the packed `u64` representation. The boxed
    // reference engine explores the identical net for the before/after
    // comparison the interning work targets.
    {
        let mut b = jcc_core::petri::NetBuilder::new();
        let places: Vec<_> = (0..8)
            .map(|i| b.place(format!("r{i}"), if i == 0 { 10 } else { 0 }))
            .collect();
        for i in 0..8 {
            b.transition(format!("step{i}"), &[places[i]], &[places[(i + 1) % 8]]);
        }
        let ring = b.build().unwrap();
        let seq_limits = ReachLimits {
            parallelism: Parallelism::sequential(),
            ..ReachLimits::default()
        };
        // Interleaved best-of-3, the same defence against one-off scheduler
        // and warm-up noise the obs-overhead measurement uses.
        let mut packed_time = f64::INFINITY;
        let mut boxed_time = f64::INFINITY;
        let mut packed = ReachGraph::explore(&ring, seq_limits);
        let mut boxed = ReachGraph::explore_boxed(&ring, seq_limits, |_, _| true);
        for _ in 0..3 {
            let t0 = Instant::now();
            packed = ReachGraph::explore(&ring, seq_limits);
            packed_time = packed_time.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            boxed = ReachGraph::explore_boxed(&ring, seq_limits, |_, _| true);
            boxed_time = boxed_time.min(t0.elapsed().as_secs_f64());
        }
        assert_eq!(packed.stats(), boxed.stats(), "engines must agree");
        let packed_rate = packed.stats().states as f64 / packed_time.max(1e-9);
        let boxed_rate = boxed.stats().states as f64 / boxed_time.max(1e-9);
        say!(
            "\n--- packed vs boxed (8-place ring, {} states) ---\n\
             packed {:.4}s ({:.0} states/s), boxed {:.4}s ({:.0} states/s) -> x{:.2}",
            packed.stats().states,
            packed_time,
            packed_rate,
            boxed_time,
            boxed_rate,
            packed_rate / boxed_rate.max(1e-9)
        );
        reporter.set_derived("packed_states_per_sec", packed_rate);
        reporter.set_derived("boxed_states_per_sec", boxed_rate);
    }

    let vm = Vm::new(compiled.clone(), {
        let mut t = vec![ThreadSpec {
            name: "p".into(),
            calls: vec![CallSpec::new("send", vec![Value::Str("xxx".into())])],
        }];
        for i in 0..3 {
            t.push(ThreadSpec {
                name: format!("c{i}"),
                calls: vec![CallSpec::new("receive", vec![])],
            });
        }
        t
    });
    let t0 = Instant::now();
    let seq = explore(vm.clone(), &ExploreConfig::default(), None);
    let seq_time = t0.elapsed();
    let t0 = Instant::now();
    let par = explore_portfolio(
        vm,
        &PortfolioConfig {
            explore: ExploreConfig {
                parallelism: parallel,
                ..ExploreConfig::default()
            },
            ..PortfolioConfig::default()
        },
    );
    let par_time = t0.elapsed();
    let census = par.result.expect("no early_exit: census completes");
    assert_eq!(census.tally(), seq.tally(), "portfolio census must match");
    say!(
        "vm schedule portfolio (3 consumers, {} states, {} probes): sequential {:.1?}, \
         portfolio x{} {:.1?}",
        census.states, par.probes_run, seq_time, threads, par_time
    );
    reporter.set_derived("vm_seq_seconds", seq_time.as_secs_f64());
    reporter.set_derived("vm_portfolio_seconds", par_time.as_secs_f64());

    // --- obs overhead self-measurement ---
    // The same N=6 sequential reachability, observed vs unobserved; three
    // interleaved rounds, best-of-three each way (the standard defence
    // against one-off scheduler noise). The acceptance bar for the obs
    // subsystem is < 5% at `summary` level.
    let saved_level = reporter.level();
    let seq_limits = ReachLimits {
        parallelism: Parallelism::sequential(),
        ..ReachLimits::default()
    };
    // Warm BOTH arms untimed first: whichever arm runs first in a cold
    // process pays allocator/cache warm-up for both, which used to skew the
    // subtraction negative (the "observed" arm looked *faster* than off).
    jcc_core::obs::set_level(jcc_core::obs::ObsLevel::Off);
    let warm_off = ReachGraph::explore(big.net(), seq_limits);
    jcc_core::obs::set_level(jcc_core::obs::ObsLevel::Summary);
    let warm_on = ReachGraph::explore(big.net(), seq_limits);
    assert_eq!(warm_off.stats(), warm_on.stats());
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut states_off = 0usize;
    let mut states_on = 0usize;
    for _ in 0..3 {
        jcc_core::obs::set_level(jcc_core::obs::ObsLevel::Off);
        let t0 = Instant::now();
        let g = ReachGraph::explore(big.net(), seq_limits);
        best_off = best_off.min(t0.elapsed().as_secs_f64());
        states_off = g.stats().states;

        jcc_core::obs::set_level(jcc_core::obs::ObsLevel::Summary);
        let t0 = Instant::now();
        let g = ReachGraph::explore(big.net(), seq_limits);
        best_on = best_on.min(t0.elapsed().as_secs_f64());
        states_on = g.stats().states;
    }
    jcc_core::obs::set_level(saved_level);
    assert_eq!(states_off, states_on, "observation must not change results");
    // Anything the subtraction says below zero is measurement noise, not a
    // speedup from observing: report the raw residue separately so a noisy
    // host is visible, but never let it masquerade as negative overhead.
    let raw_overhead_pct = (best_on - best_off) / best_off * 100.0;
    let overhead_pct = raw_overhead_pct.max(0.0);
    let noise_floor_pct = (-raw_overhead_pct).max(0.0);
    say!(
        "\n--- obs overhead (petri reach N=6, {} states, warmed, best of 3) ---\n\
         off: {:.4}s, summary: {:.4}s -> overhead {:.2}% (noise floor {:.2}%, budget: < 5%)",
        states_off, best_off, best_on, overhead_pct, noise_floor_pct
    );
    reporter.set_derived("obs_overhead_pct", overhead_pct);
    reporter.set_derived("obs_noise_floor_pct", noise_floor_pct);

    // --- capture-latency percentiles ---
    // A 100k-event exercise of the lock-free capture path (the always-on
    // monitor's producer side), against the sampled per-event latency
    // histogram. Forced to `summary` like the overhead arms, restored
    // after.
    {
        use jcc_core::petri::Transition as T;
        use jcc_core::runtime::{EventKind, EventLog, MonitorId};
        jcc_core::obs::set_level(jcc_core::obs::ObsLevel::Summary);
        let log = EventLog::new();
        for i in 0..100_000u64 {
            let t = if i % 2 == 0 { T::T2 } else { T::T4 };
            log.log_as(1 + (i & 3), MonitorId(i & 7), EventKind::Transition(t));
            if i % 4096 == 0 {
                log.drain_for_each(|_| {});
            }
        }
        log.drain_for_each(|_| {});
        assert_eq!(log.drop_count(), 0, "drained capture must be lossless");
        jcc_core::obs::set_level(saved_level);
        let snap = jcc_core::obs::global()
            .histogram("runtime.capture.latency_ns")
            .snapshot();
        let (p50, p90, p99) = (
            snap.percentile(50.0).unwrap_or(0),
            snap.percentile(90.0).unwrap_or(0),
            snap.percentile(99.0).unwrap_or(0),
        );
        say!(
            "\n--- capture latency (100k events, {} samples, log2 buckets) ---\n\
             p50 {p50} ns, p90 {p90} ns, p99 {p99} ns",
            snap.count
        );
        reporter.set_derived("capture_latency_p50_ns", p50 as f64);
        reporter.set_derived("capture_latency_p90_ns", p90 as f64);
        reporter.set_derived("capture_latency_p99_ns", p99 as f64);
    }
    reporter.finish();
}
