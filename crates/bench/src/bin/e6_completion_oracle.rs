//! E6 — the completion-time oracle on native threads: seed Table-1 faults
//! into the Figure-2 monitor, run a deterministic ConAn-style schedule, and
//! show that checking call completion times detects each fault and narrows
//! it to the classes the paper predicts.

use std::sync::Arc;

use jcc_core::clock::{Schedule, TestDriver};
use jcc_core::components::{PcFaults, ProducerConsumer};
use jcc_core::detect::completion::{
    check_completions, CompletionExpectation, Expectation,
};
use jcc_core::runtime::EventLog;

fn run_schedule(faults: PcFaults) -> Vec<jcc_core::clock::CallRecord> {
    let log = EventLog::new();
    let pc = Arc::new(ProducerConsumer::with_faults(&log, faults));
    let c1 = Arc::clone(&pc);
    let p1 = Arc::clone(&pc);
    let c2 = Arc::clone(&pc);
    // The canonical deterministic test: a consumer that must block at t=1,
    // a producer that releases it at t=2, a second consumer at t=3 that
    // must block forever (only one character was sent).
    let schedule = Schedule::new()
        .call("receive#1", 1, move |_| {
            let _ = c1.receive();
        })
        .call("send(x)", 2, move |_| {
            let _ = p1.send("x");
        })
        .call("receive#2", 3, move |_| {
            let _ = c2.receive();
        });
    let (records, _) = TestDriver::new().run(schedule);
    records
}

fn expectations() -> Vec<Expectation> {
    vec![
        // The first receive completes exactly when the send wakes it.
        Expectation::new("receive#1", CompletionExpectation::Between(2, 3)),
        Expectation::new("send(x)", CompletionExpectation::Between(2, 3)),
        // The second receive must stay suspended.
        Expectation::new("receive#2", CompletionExpectation::Never),
    ]
}

fn main() {
    let mut reporter = jcc_core::obs::BenchReporter::init("e6_completion_oracle");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } };
    }
    say!("=== E6: the completion-time oracle (ConAn technique) ===\n");
    let cases: Vec<(&str, PcFaults, &str)> = vec![
        ("correct component", PcFaults::default(), "-"),
        (
            "skip_wait (FF-T3)",
            PcFaults {
                skip_wait: true,
                ..PcFaults::default()
            },
            "FF-T3",
        ),
        (
            "drop_notify (FF-T5)",
            PcFaults {
                drop_notify: true,
                ..PcFaults::default()
            },
            "FF-T5",
        ),
        (
            "spurious_wait_in_send (EF-T3)",
            PcFaults {
                spurious_wait_in_send: true,
                ..PcFaults::default()
            },
            "EF-T3",
        ),
    ];

    let mut faults_flagged = 0usize;
    for (label, faults, seeded) in cases {
        say!("--- {label} ---");
        let records = run_schedule(faults);
        for r in &records {
            say!(
                "  {} released t={} completed {:?}",
                r.label, r.released_at, r.completed_at
            );
        }
        let violations = check_completions(&records, &expectations());
        if violations.is_empty() {
            say!("  oracle: PASS (all completion times as expected)\n");
        } else {
            faults_flagged += 1;
            for v in &violations {
                let candidates: Vec<String> = v
                    .candidate_classes()
                    .iter()
                    .map(|c| c.code())
                    .collect();
                say!(
                    "  oracle: FAIL on {} — {:?}; candidate classes: {}",
                    v.label,
                    v.deviation,
                    candidates.join(", ")
                );
            }
            say!("  seeded class: {seeded}\n");
        }
    }
    reporter.set_derived("faults_flagged", faults_flagged as f64);
    reporter.finish();
}
