//! E13 — the Java frontend end to end over the checked-in mini-corpus.
//!
//! Runs `jcc check` (parse → lower → analyze → render) over
//! `tests/java_corpus/`:
//!
//! * **clean/** at the default `--deny=high` must exit 0 — the zero-
//!   false-positive gate extended to Java input,
//! * **buggy/** at `--deny=medium` must exit 1, and every file must
//!   produce exactly its seeded per-class diagnostic counts,
//! * **invalid/** must exit 2 while still analyzing the recovered rest
//!   of the file.
//!
//! Determinism is asserted by running the whole sweep twice and
//! comparing rendered text and JSON byte-for-byte. Throughput is
//! published as `java_loc_per_sec` (lines of code through the full
//! pipeline per second, measured over repeated in-memory sweeps) and
//! gated by `perf_guard` against `ci/bench_baseline_e13.json`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use jcc_core::analyze::Severity;
use jcc_core::javasrc::check::{check_files, check_paths, CheckOptions, Format};
use jcc_core::obs::BenchReporter;

/// Seeded per-class diagnostic counts `(high, medium, low)` — the
/// expected-findings oracle for the corpus.
const EXPECTED: &[(&str, (usize, usize, usize))] = &[
    // clean/
    ("Barrier", (0, 0, 0)),
    ("BoundedBuffer", (0, 0, 0)),
    ("BoundedStack", (0, 0, 0)),
    ("FutureCell", (0, 0, 0)),
    ("Mailbox", (0, 0, 0)),
    ("ProducerConsumer", (0, 0, 0)),
    ("ReadersWriters", (0, 2, 0)), // benign missed-notification heuristics
    ("Semaphore", (0, 1, 0)),      // the documented benign Medium
    // buggy/
    ("LockOrderCycle", (1, 0, 0)),
    ("MissingNotify", (1, 0, 0)),
    ("MonitorNotHeld", (2, 0, 0)), // monitor-not-held + unlocked write
    ("NestedMonitorWait", (1, 1, 0)),
    ("RacyCounter", (1, 1, 0)), // unlocked write (high) + read (medium)
    ("UnconditionalWait", (1, 0, 0)),
    ("WaitInIf", (0, 1, 0)),
    // invalid/ — the recovered remainder still analyzes
    ("SyntaxError", (0, 1, 0)),
];

fn corpus_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/java_corpus")
        .join(sub)
}

fn main() {
    let mut reporter = BenchReporter::init("e13_java_frontend");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } }
    }

    say!("E13 — Java frontend over tests/java_corpus");
    say!();

    let high = CheckOptions::default();
    let medium = CheckOptions {
        deny: Severity::Medium,
        ..CheckOptions::default()
    };

    let clean = check_paths(&[corpus_dir("clean")], &high).expect("read clean corpus");
    let buggy = check_paths(&[corpus_dir("buggy")], &medium).expect("read buggy corpus");
    let invalid = check_paths(&[corpus_dir("invalid")], &high).expect("read invalid corpus");

    assert_eq!(clean.exit_code(), 0, "clean corpus must pass:\n{}", clean.output);
    assert_eq!(buggy.exit_code(), 1, "buggy corpus must be flagged");
    assert_eq!(invalid.exit_code(), 2, "invalid corpus must be a frontend error");
    assert!(
        !invalid.files[0].reports[0].diagnostics.is_empty(),
        "parse recovery must still analyze the rest of the file"
    );

    // Per-class expected counts.
    let mut got: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    for outcome in [&clean, &buggy, &invalid] {
        for f in &outcome.files {
            for r in &f.reports {
                got.insert(
                    r.component.clone(),
                    (
                        r.count(Severity::High),
                        r.count(Severity::Medium),
                        r.count(Severity::Low),
                    ),
                );
            }
        }
    }
    say!(
        "{:<18} {:>5} {:>7} {:>4}   expected",
        "class",
        "high",
        "medium",
        "low"
    );
    let mut mismatches = Vec::new();
    for (name, want) in EXPECTED {
        let have = got.get(*name).copied().unwrap_or((0, 0, 0));
        say!(
            "{name:<18} {:>5} {:>7} {:>4}   ({}, {}, {}){}",
            have.0,
            have.1,
            have.2,
            want.0,
            want.1,
            want.2,
            if have == *want { "" } else { "  <-- MISMATCH" }
        );
        if have != *want {
            mismatches.push(*name);
        }
    }
    assert!(mismatches.is_empty(), "per-class counts drifted: {mismatches:?}");
    assert_eq!(
        got.len(),
        EXPECTED.len(),
        "corpus and oracle out of sync: {:?}",
        got.keys().collect::<Vec<_>>()
    );

    // Byte-identical output across two full sweeps, text and JSON.
    let mut inputs = Vec::new();
    for sub in ["clean", "buggy", "invalid"] {
        let dir = corpus_dir(sub);
        let files = jcc_core::javasrc::check::collect_java_files(&[dir]).expect("list corpus");
        for f in files {
            let src = std::fs::read_to_string(&f).expect("read corpus file");
            inputs.push((f.display().to_string(), src));
        }
    }
    for format in [Format::Text, Format::Json] {
        let opts = CheckOptions {
            format,
            ..CheckOptions::default()
        };
        let a = check_files(&inputs, &opts);
        let b = check_files(&inputs, &opts);
        assert_eq!(a.output, b.output, "output must be byte-identical across runs");
    }
    say!();
    say!("determinism: text and JSON byte-identical across two sweeps");

    // Throughput: repeated in-memory sweeps of the full corpus.
    let total_loc: usize = clean.loc + buggy.loc + invalid.loc;
    let iters = 40;
    let start = Instant::now();
    let mut findings = 0usize;
    for _ in 0..iters {
        let o = check_files(&inputs, &high);
        findings += o.files.iter().flat_map(|f| f.reports.iter()).map(|r| r.diagnostics.len()).sum::<usize>();
    }
    let elapsed = start.elapsed();
    let loc_per_sec = (total_loc * iters) as f64 / elapsed.as_secs_f64().max(1e-9);
    say!(
        "throughput: {iters} sweeps x {total_loc} LOC in {:.1} ms -> {:.0} java_loc_per_sec",
        elapsed.as_secs_f64() * 1e3,
        loc_per_sec
    );

    reporter.set_derived("java_loc_per_sec", loc_per_sec);
    reporter.set_derived("java_files", inputs.len() as f64);
    reporter.set_derived("java_loc", total_loc as f64);
    reporter.set_derived("java_findings_total", (findings / iters) as f64);
    reporter.set_derived("java_high_findings_clean", 0.0);
    reporter.finish();
}
