//! E11 — the corpus scaling sweep: seeded generated components of
//! increasing size, swept through the analyzer and the exhaustive VM
//! exploration, publishing states/sec and diagnostic-count scaling curves
//! to `BENCH_e11.json`.
//!
//! Where E8 benchmarks one fixed net, E11 asks how the toolchain *scales*:
//! `jcc_components::gen` emits a valid-by-construction monitor at each
//! size on the ladder (guards, wait sites, locks and padding all grow
//! linearly), and for each size the sweep records
//!
//! * `size<n>_states` / `size<n>_transitions` — the exhaustive census,
//! * `size<n>_states_per_sec` — sequential exploration throughput,
//! * `size<n>_diag_count` — total analyzer diagnostics (all severities),
//!
//! plus the usual auto-derived aggregate `states_per_sec` that
//! `perf_guard` gates against `ci/bench_baseline_e11.json`.
//!
//! **Determinism gates** (asserted, not just reported): the generated
//! source is byte-identical across two in-process generations; the
//! portfolio census at 2 and 4 workers equals the sequential census; and
//! the whole sweep, run twice, produces the same canonical curve. The
//! timing-free part of the curve is written to `BENCH_e11_curve.txt`,
//! which is byte-identical for a fixed seed across runs, machines and
//! thread counts — that file (not the timing-bearing JSON) is the
//! reproducibility artifact CI uploads.

use std::fmt::Write as _;
use std::time::Instant;

use jcc_core::analyze::{analyze, Severity};
use jcc_core::components::gen::{call_plan, generate, generate_source, GenConfig};
use jcc_core::petri::Parallelism;
use jcc_core::vm::{
    compile, explore, explore_portfolio, CallSpec, ExploreConfig, ExploreResult,
    PortfolioConfig, ThreadSpec, Vm,
};

/// The size ladder: `GenConfig::sized(n)` for each entry.
const SIZES: [usize; 4] = [1, 2, 3, 4];

/// The sweep's fixed seed — the curve is a function of nothing else.
const SEED: u64 = 2024;

/// FNV-1a, for a stable source fingerprint without a hasher dependency.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn scenario_vm(cfg: &GenConfig) -> Vm {
    let component = generate(cfg);
    let compiled = compile(&component).expect("generated component compiles");
    let threads: Vec<ThreadSpec> = call_plan(cfg)
        .into_iter()
        .enumerate()
        .map(|(i, calls)| ThreadSpec {
            name: format!("t{i}"),
            calls: calls
                .into_iter()
                .map(|m| CallSpec::new(m, vec![]))
                .collect(),
        })
        .collect();
    Vm::new(compiled, threads)
}

/// [`scenario_vm`] with every thread sharing one display name, so threads
/// with identical call sessions form symmetry groups (names are
/// display-only; the semantics are unchanged).
fn symmetric_scenario_vm(cfg: &GenConfig) -> Vm {
    let component = generate(cfg);
    let compiled = compile(&component).expect("generated component compiles");
    let threads: Vec<ThreadSpec> = call_plan(cfg)
        .into_iter()
        .map(|calls| ThreadSpec {
            name: "w".into(),
            calls: calls
                .into_iter()
                .map(|m| CallSpec::new(m, vec![]))
                .collect(),
        })
        .collect();
    Vm::new(compiled, threads)
}

/// One pass over the ladder. Returns the canonical (timing-free) curve and
/// the per-size figures `(states, seconds, diag_count)`.
fn sweep(check_portfolio: bool) -> (String, Vec<(usize, usize, f64, usize)>) {
    let mut curve = String::new();
    let mut figures = Vec::new();
    for &n in &SIZES {
        let cfg = GenConfig::sized(n, SEED);
        let src = generate_source(&cfg);
        assert_eq!(
            src,
            generate_source(&cfg),
            "size {n}: generation must be deterministic"
        );
        let component = generate(&cfg);
        let report = analyze(&component);
        assert_eq!(
            report.count(Severity::High),
            0,
            "size {n}: generated component must stay High-clean:\n{}",
            report.render()
        );
        let diag_count = report.at_least(Severity::Low).count();

        let explore_cfg = ExploreConfig::default();
        let t0 = Instant::now();
        let seq = explore(scenario_vm(&cfg), &explore_cfg, None);
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        assert!(!seq.truncated, "size {n}: raise limits, census truncated");
        assert!(seq.completed_paths > 0, "size {n}: no completed schedules");
        assert_eq!(
            seq.deadlock_paths, 0,
            "size {n}: generated scenario must be deadlock-free"
        );

        if check_portfolio {
            for threads in [2usize, 4] {
                let p = explore_portfolio(
                    scenario_vm(&cfg),
                    &PortfolioConfig {
                        explore: ExploreConfig {
                            parallelism: Parallelism::with_threads(threads),
                            ..explore_cfg
                        },
                        ..PortfolioConfig::default()
                    },
                );
                let census: ExploreResult =
                    p.result.expect("census completes without early_exit");
                assert_eq!(
                    census.tally(),
                    seq.tally(),
                    "size {n}: census diverged at {threads} workers"
                );
            }
        }

        writeln!(
            curve,
            "size={n} guards={} wait_sites={} locks={} padding={} seed={SEED} \
             src_fnv1a={:#018x} states={} transitions={} completed_paths={} \
             diag_count={diag_count}",
            cfg.guards,
            cfg.wait_sites.max(cfg.guards),
            cfg.locks,
            cfg.padding,
            fnv1a(src.as_bytes()),
            seq.states,
            seq.transitions,
            seq.completed_paths,
        )
        .unwrap();
        figures.push((n, seq.states, secs, diag_count));
    }
    (curve, figures)
}

fn main() {
    let mut reporter = jcc_core::obs::BenchReporter::init("e11_corpus_sweep");
    macro_rules! say {
        ($($arg:tt)*) => { if !reporter.quiet() { println!($($arg)*); } };
    }

    say!("E11 corpus sweep: sizes {SIZES:?}, seed {SEED}");
    let (curve, figures) = sweep(true);
    // Gate: a second full pass (portfolio checks elided — the censuses
    // already proved thread-count independence) reproduces the curve
    // byte for byte.
    let (curve_again, _) = sweep(false);
    assert_eq!(curve, curve_again, "sweep curve must be reproducible");

    say!("\ncanonical curve:\n{curve}");
    std::fs::write("BENCH_e11_curve.txt", &curve).expect("write curve artifact");
    say!("curve artifact written to ./BENCH_e11_curve.txt");

    let mut prev_states = 0usize;
    for (n, states, secs, diags) in &figures {
        say!(
            "size {n}: {states} states in {secs:.3}s ({:.0} states/sec), {diags} diagnostics",
            *states as f64 / secs
        );
        assert!(
            *states > prev_states,
            "size {n}: state space must grow along the ladder"
        );
        prev_states = *states;
        reporter.set_derived(&format!("size{n}_states"), *states as f64);
        reporter.set_derived(
            &format!("size{n}_states_per_sec"),
            *states as f64 / secs,
        );
        reporter.set_derived(&format!("size{n}_diag_count"), *diags as f64);
    }
    // --- reduction on/off: ample + symmetry across the ladder ---
    // Each size explored full and reduced; the failure-class existence
    // booleans must agree (the proof-grade differential lives in
    // tests/reduction_equivalence.rs — this arm is the scaling figure).
    say!("\nreduction (ample + thread symmetry) vs full exploration:");
    let mut full_total = 0f64;
    let mut reduced_total = 0f64;
    for &n in &SIZES {
        let cfg = GenConfig::sized(n, SEED);
        let full = explore(scenario_vm(&cfg), &ExploreConfig::default(), None);
        let t0 = Instant::now();
        let reduced = explore(
            symmetric_scenario_vm(&cfg),
            &ExploreConfig {
                symmetry: true,
                ample: true,
                ..ExploreConfig::default()
            },
            None,
        );
        let red_secs = t0.elapsed().as_secs_f64().max(1e-9);
        assert!(!reduced.truncated, "size {n}: reduced census truncated");
        assert_eq!(
            (
                full.completed_paths > 0,
                full.deadlock_paths > 0,
                full.fault_paths > 0,
                full.cycle_paths > 0,
            ),
            (
                reduced.completed_paths > 0,
                reduced.deadlock_paths > 0,
                reduced.fault_paths > 0,
                reduced.cycle_paths > 0,
            ),
            "size {n}: reduction changed the failure classes"
        );
        assert!(reduced.states <= full.states, "size {n}: reduction grew states");
        full_total += full.states as f64;
        reduced_total += reduced.states as f64;
        say!(
            "size {n}: full {} states, reduced {} in {red_secs:.3}s \
             (x{:.2}, {} branches pruned)",
            full.states,
            reduced.states,
            full.states as f64 / reduced.states.max(1) as f64,
            reduced.ample_pruned
        );
        reporter.set_derived(&format!("size{n}_reduced_states"), reduced.states as f64);
    }
    reporter.set_derived("reduction_factor", full_total / reduced_total.max(1.0));

    reporter.set_derived("sweep_sizes", SIZES.len() as f64);
    reporter.set_derived(
        "curve_fnv1a",
        (fnv1a(curve.as_bytes()) >> 11) as f64, // keep it exactly representable in f64
    );
    reporter.finish();
}
