//! # jcc-bench — experiment regeneration and benchmarks
//!
//! One binary per experiment of `DESIGN.md` §8 (`cargo run -p jcc-bench
//! --bin <name>`):
//!
//! | binary                  | regenerates                                  |
//! |-------------------------|----------------------------------------------|
//! | `fig1_model`            | Figure 1 — the petri-net model               |
//! | `table1_classification` | Table 1 — the failure classification         |
//! | `fig2_monitor`          | Figure 2 — the producer–consumer monitor     |
//! | `fig3_cofg`             | Figure 3 — the CoFGs for receive/send        |
//! | `e5_mutation_study`     | E5 — directed vs random mutant detection     |
//! | `e6_completion_oracle`  | E6 — the ConAn completion-time oracle        |
//! | `e7_detectors`          | E7 — Eraser lockset + lock-order cycles      |
//! | `e8_statespace`         | E8 — state-space growth                      |
//! | `e9_ablation`           | E9 — arc-only vs strengthened suite criteria |
//! | `e10_static_analysis`   | E10 — static analyzer precision/recall       |
//!
//! Two operational binaries ride along: `perf_guard` (single-run
//! throughput/coverage gate against `ci/bench_baseline.json`) and
//! `jcc-report` (the cross-run regression ledger: diffs two or more
//! `BENCH_*.json` run reports into `jcc-ledger/v1` JSON plus a human
//! table, `--gate` for CI).
//!
//! Criterion benchmarks live in `benches/`.
