//! The CoFG data structure: nodes (concurrency statements), arcs (code
//! regions) and the condition/transition annotations on arcs.

use std::fmt;

use jcc_model::ast::StmtPath;
use jcc_petri::Transition;

/// Index of a node within a [`Cofg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// The kinds of concurrency nodes a CoFG contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Method entry. For a `synchronized` method this is also the monitor
    /// acquisition point (fires T1, T2 when left).
    Start,
    /// A `wait` statement.
    Wait,
    /// A `notify` statement.
    Notify,
    /// A `notifyAll` statement.
    NotifyAll,
    /// Entry to an explicit `synchronized (lock)` block (fires T1 on entry,
    /// T2 when granted).
    SyncEnter,
    /// Exit of an explicit `synchronized (lock)` block (fires T4).
    SyncExit,
    /// Method exit. For a `synchronized` method this is also the monitor
    /// release point (fires T4 when reached).
    End,
}

impl NodeKind {
    /// The display name used in Figure 3.
    pub fn display(self) -> &'static str {
        match self {
            NodeKind::Start => "start",
            NodeKind::Wait => "wait",
            NodeKind::Notify => "notify",
            NodeKind::NotifyAll => "notifyAll",
            NodeKind::SyncEnter => "sync-enter",
            NodeKind::SyncExit => "sync-exit",
            NodeKind::End => "end",
        }
    }
}

/// A CoFG node: a concurrency statement (or method boundary) of one method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// What kind of concurrency statement this is.
    pub kind: NodeKind,
    /// The statement path within the method body, for statement nodes
    /// (`None` for `Start`/`End`).
    pub path: Option<StmtPath>,
    /// The lock involved, as a display string (`this` for the receiver).
    pub lock: String,
}

impl Node {
    /// Figure-3 style label, e.g. `wait` or `wait#2` when a method contains
    /// several statements of the same kind (disambiguated by the graph).
    pub fn base_label(&self) -> &'static str {
        self.kind.display()
    }
}

/// A branch/loop condition with the polarity required to traverse an arc.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Condition {
    /// Pretty-printed condition expression.
    pub expr: String,
    /// The value the condition must evaluate to.
    pub value: bool,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} == {}", self.expr, self.value)
    }
}

/// A CoFG arc: the code region between two concurrency statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arc {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Alternative condition sets: each inner vector is one way of
    /// traversing the region (all its conditions must hold). Figure 3's
    /// arcs each have exactly one witness.
    pub witnesses: Vec<Vec<Condition>>,
    /// The Figure-1 transitions fired when this arc is traversed
    /// (source contribution, then destination contribution).
    pub transitions: Vec<Transition>,
}

/// A Concurrency Flow Graph for one method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cofg {
    /// Component name.
    pub component: String,
    /// Method name.
    pub method: String,
    /// Nodes; index 0 is always `Start`, the last node is always `End`.
    pub nodes: Vec<Node>,
    /// Arcs in deterministic construction order.
    pub arcs: Vec<Arc>,
}

impl Cofg {
    /// The node id of the `Start` node.
    pub fn start(&self) -> NodeId {
        NodeId(0)
    }

    /// The node id of the `End` node.
    pub fn end(&self) -> NodeId {
        NodeId(self.nodes.len() - 1)
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Find the node for a statement path, if any. For an explicit
    /// `synchronized` block (which has two nodes on the same path) this is
    /// the *entry* node; see [`sync_exit_by_path`](Self::sync_exit_by_path).
    pub fn node_by_path(&self, path: &StmtPath) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.path.as_ref() == Some(path) && n.kind != NodeKind::SyncExit)
            .map(NodeId)
    }

    /// Find the `SyncExit` node of the explicit `synchronized` block at
    /// `path`, if any.
    pub fn sync_exit_by_path(&self, path: &StmtPath) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.path.as_ref() == Some(path) && n.kind == NodeKind::SyncExit)
            .map(NodeId)
    }

    /// Find the arc connecting `from` to `to`, if any.
    pub fn arc_between(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.arcs.iter().position(|a| a.from == from && a.to == to)
    }

    /// A disambiguated label for a node: the kind name, with `#k` appended
    /// when the method has several nodes of that kind (k is 1-based in
    /// declaration order). `start`/`end` are always unique.
    pub fn label(&self, id: NodeId) -> String {
        let kind = self.nodes[id.0].kind;
        let same_kind: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == kind)
            .map(|(i, _)| i)
            .collect();
        if same_kind.len() <= 1 {
            kind.display().to_string()
        } else {
            let k = same_kind.iter().position(|&i| i == id.0).unwrap() + 1;
            format!("{}#{k}", kind.display())
        }
    }

    /// Human-readable arc description, e.g.
    /// `start -> wait [curPos == 0 == true] fires T1,T2,T3`.
    pub fn describe_arc(&self, idx: usize) -> String {
        let arc = &self.arcs[idx];
        let conds = arc
            .witnesses
            .iter()
            .map(|w| {
                if w.is_empty() {
                    "always".to_string()
                } else {
                    w.iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(" && ")
                }
            })
            .collect::<Vec<_>>()
            .join(" | ");
        let fires = arc
            .transitions
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{} -> {} [{}] fires {}",
            self.label(arc.from),
            self.label(arc.to),
            conds,
            fires
        )
    }

    /// Two CoFGs are *isomorphic* when their node kind sequences and arc
    /// structure (by node kind and transition lists) coincide — the paper's
    /// sense in which "the CoFG for `send` is identical to that for
    /// `receive`".
    pub fn isomorphic(&self, other: &Cofg) -> bool {
        if self.nodes.len() != other.nodes.len() || self.arcs.len() != other.arcs.len() {
            return false;
        }
        if self
            .nodes
            .iter()
            .zip(&other.nodes)
            .any(|(a, b)| a.kind != b.kind)
        {
            return false;
        }
        self.arcs.iter().zip(&other.arcs).all(|(a, b)| {
            a.from == b.from && a.to == b.to && a.transitions == b.transitions
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cofg {
        Cofg {
            component: "C".into(),
            method: "m".into(),
            nodes: vec![
                Node {
                    kind: NodeKind::Start,
                    path: None,
                    lock: "this".into(),
                },
                Node {
                    kind: NodeKind::Wait,
                    path: Some(StmtPath(vec![0, 0])),
                    lock: "this".into(),
                },
                Node {
                    kind: NodeKind::End,
                    path: None,
                    lock: "this".into(),
                },
            ],
            arcs: vec![Arc {
                from: NodeId(0),
                to: NodeId(1),
                witnesses: vec![vec![Condition {
                    expr: "x".into(),
                    value: true,
                }]],
                transitions: vec![Transition::T1, Transition::T2, Transition::T3],
            }],
        }
    }

    #[test]
    fn start_end_ids() {
        let g = tiny();
        assert_eq!(g.start(), NodeId(0));
        assert_eq!(g.end(), NodeId(2));
        assert_eq!(g.node(g.start()).kind, NodeKind::Start);
    }

    #[test]
    fn node_by_path() {
        let g = tiny();
        assert_eq!(g.node_by_path(&StmtPath(vec![0, 0])), Some(NodeId(1)));
        assert_eq!(g.node_by_path(&StmtPath(vec![9])), None);
    }

    #[test]
    fn arc_lookup_and_description() {
        let g = tiny();
        assert_eq!(g.arc_between(NodeId(0), NodeId(1)), Some(0));
        assert_eq!(g.arc_between(NodeId(1), NodeId(0)), None);
        let d = g.describe_arc(0);
        assert!(d.contains("start -> wait"), "{d}");
        assert!(d.contains("fires T1,T2,T3"), "{d}");
    }

    #[test]
    fn labels_disambiguate_duplicates() {
        let mut g = tiny();
        g.nodes.insert(
            2,
            Node {
                kind: NodeKind::Wait,
                path: Some(StmtPath(vec![1])),
                lock: "this".into(),
            },
        );
        assert_eq!(g.label(NodeId(1)), "wait#1");
        assert_eq!(g.label(NodeId(2)), "wait#2");
        assert_eq!(g.label(NodeId(0)), "start");
    }

    #[test]
    fn isomorphic_to_self() {
        let g = tiny();
        assert!(g.isomorphic(&g));
        let mut h = g.clone();
        h.method = "other".into();
        assert!(g.isomorphic(&h));
        h.arcs[0].transitions.pop();
        assert!(!g.isomorphic(&h));
    }
}
