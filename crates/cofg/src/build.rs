//! CoFG construction.
//!
//! The builder threads the method body into a small control-flow graph whose
//! interesting nodes are the concurrency statements, then derives one CoFG
//! arc per pair of concurrency nodes connected by a region of ordinary code
//! (a path through the CFG crossing no other concurrency node). Conditions
//! collected along the path become the arc's traversal witness; the arc's
//! transition list is the source node's firing contribution followed by the
//! destination node's, exactly as the paper assigns them in Section 6.1:
//!
//! * `start` of a synchronized method contributes `T1,T2` when left,
//! * `wait` contributes `T3` on entry and `T3,T5,T2` when left
//!   (its own suspension, the wake-up, and lock re-acquisition),
//! * `notify`/`notifyAll` contribute `T5` in both roles,
//! * explicit `synchronized` blocks contribute `T1` on entry / `T2` when
//!   left (enter node) and `T4` on entry (exit node),
//! * `end` of a synchronized method contributes `T4`.

use jcc_model::ast::{Block, Component, Method, Stmt, StmtPath, ELSE_OFFSET};
use jcc_model::pretty::print_expr;
use jcc_petri::Transition;

use crate::graph::{Arc, Cofg, Condition, Node, NodeId, NodeKind};

/// Build the CoFG of one method.
pub fn build_cofg(component: &Component, method: &Method) -> Cofg {
    Builder::new(component, method).run()
}

/// Build CoFGs for every method of a component, in declaration order.
pub fn build_component_cofgs(component: &Component) -> Vec<Cofg> {
    component
        .methods
        .iter()
        .map(|m| build_cofg(component, m))
        .collect()
}

#[derive(Debug)]
struct CfgEdge {
    target: usize,
    cond: Option<Condition>,
}

#[derive(Debug)]
struct CfgNode {
    /// `Some(i)` when this CFG node is the i-th CoFG (concurrency) node.
    conc: Option<usize>,
    succs: Vec<CfgEdge>,
}

struct Builder<'a> {
    method: &'a Method,
    component: &'a Component,
    nodes: Vec<Node>,
    cfg: Vec<CfgNode>,
    /// CFG index per CoFG node.
    conc_cfg: Vec<usize>,
    exit_junction: usize,
    /// Stack of SyncExit CFG indices for enclosing explicit blocks.
    sync_exits: Vec<usize>,
}

impl<'a> Builder<'a> {
    fn new(component: &'a Component, method: &'a Method) -> Self {
        Builder {
            method,
            component,
            nodes: Vec::new(),
            cfg: Vec::new(),
            conc_cfg: Vec::new(),
            exit_junction: 0,
            sync_exits: Vec::new(),
        }
    }

    fn junction(&mut self) -> usize {
        self.cfg.push(CfgNode {
            conc: None,
            succs: Vec::new(),
        });
        self.cfg.len() - 1
    }

    fn conc_node(&mut self, kind: NodeKind, path: Option<StmtPath>, lock: String) -> usize {
        let conc_idx = self.nodes.len();
        self.nodes.push(Node { kind, path, lock });
        self.cfg.push(CfgNode {
            conc: Some(conc_idx),
            succs: Vec::new(),
        });
        let cfg_idx = self.cfg.len() - 1;
        self.conc_cfg.push(cfg_idx);
        cfg_idx
    }

    fn edge(&mut self, from: usize, to: usize, cond: Option<Condition>) {
        self.cfg[from].succs.push(CfgEdge { target: to, cond });
    }

    fn run(mut self) -> Cofg {
        let start_cfg = self.conc_node(NodeKind::Start, None, "this".to_string());
        self.exit_junction = self.junction();
        let exit_junction = self.exit_junction;

        let mut path = Vec::new();
        if let Some(fallthrough) = self.thread_block(&self.method.body, start_cfg, &mut path) {
            self.edge(fallthrough, exit_junction, None);
        }

        let end_cfg = self.conc_node(NodeKind::End, None, "this".to_string());
        self.edge(exit_junction, end_cfg, None);

        let arcs = self.derive_arcs();
        Cofg {
            component: self.component.name.clone(),
            method: self.method.name.clone(),
            nodes: self.nodes,
            arcs,
        }
    }

    /// Thread `block` starting from CFG node `cur`; returns the fall-through
    /// CFG node, or `None` if every path returns.
    fn thread_block(
        &mut self,
        block: &Block,
        mut cur: usize,
        path: &mut Vec<usize>,
    ) -> Option<usize> {
        for (i, stmt) in block.iter().enumerate() {
            path.push(i);
            let next = self.thread_stmt(stmt, cur, path);
            path.pop();
            match next {
                Some(n) => cur = n,
                None => return None, // the rest of the block is unreachable
            }
        }
        Some(cur)
    }

    fn thread_stmt(&mut self, stmt: &Stmt, cur: usize, path: &mut Vec<usize>) -> Option<usize> {
        match stmt {
            Stmt::Wait { lock } => {
                let n = self.conc_node(
                    NodeKind::Wait,
                    Some(StmtPath(path.clone())),
                    lock.to_string(),
                );
                self.edge(cur, n, None);
                Some(n)
            }
            Stmt::Notify { lock } => {
                let n = self.conc_node(
                    NodeKind::Notify,
                    Some(StmtPath(path.clone())),
                    lock.to_string(),
                );
                self.edge(cur, n, None);
                Some(n)
            }
            Stmt::NotifyAll { lock } => {
                let n = self.conc_node(
                    NodeKind::NotifyAll,
                    Some(StmtPath(path.clone())),
                    lock.to_string(),
                );
                self.edge(cur, n, None);
                Some(n)
            }
            Stmt::While { cond, body } => {
                let header = self.junction();
                self.edge(cur, header, None);
                let cond_str = print_expr(cond);
                let body_entry = self.junction();
                self.edge(
                    header,
                    body_entry,
                    Some(Condition {
                        expr: cond_str.clone(),
                        value: true,
                    }),
                );
                if let Some(body_exit) = self.thread_block(body, body_entry, path) {
                    self.edge(body_exit, header, None);
                }
                let after = self.junction();
                self.edge(
                    header,
                    after,
                    Some(Condition {
                        expr: cond_str,
                        value: false,
                    }),
                );
                Some(after)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond_str = print_expr(cond);
                let then_entry = self.junction();
                self.edge(
                    cur,
                    then_entry,
                    Some(Condition {
                        expr: cond_str.clone(),
                        value: true,
                    }),
                );
                let else_entry = self.junction();
                self.edge(
                    cur,
                    else_entry,
                    Some(Condition {
                        expr: cond_str,
                        value: false,
                    }),
                );
                let then_exit = self.thread_block(then_branch, then_entry, path);
                // Else-branch statement paths use the offset convention.
                let else_exit = {
                    let mut cur_else = else_entry;
                    let mut fell_through = Some(cur_else);
                    for (j, s) in else_branch.iter().enumerate() {
                        path.push(ELSE_OFFSET + j);
                        let next = self.thread_stmt(s, cur_else, path);
                        path.pop();
                        match next {
                            Some(n) => {
                                cur_else = n;
                                fell_through = Some(n);
                            }
                            None => {
                                fell_through = None;
                                break;
                            }
                        }
                    }
                    fell_through
                };
                match (then_exit, else_exit) {
                    (None, None) => None,
                    (a, b) => {
                        let join = self.junction();
                        if let Some(t) = a {
                            self.edge(t, join, None);
                        }
                        if let Some(e) = b {
                            self.edge(e, join, None);
                        }
                        Some(join)
                    }
                }
            }
            Stmt::Synchronized { lock, body } => {
                let enter = self.conc_node(
                    NodeKind::SyncEnter,
                    Some(StmtPath(path.clone())),
                    lock.to_string(),
                );
                self.edge(cur, enter, None);
                let exit = self.conc_node(
                    NodeKind::SyncExit,
                    Some(StmtPath(path.clone())),
                    lock.to_string(),
                );
                self.sync_exits.push(exit);
                let body_exit = self.thread_block(body, enter, path);
                self.sync_exits.pop();
                if let Some(b) = body_exit {
                    self.edge(b, exit, None);
                    Some(exit)
                } else {
                    // Every path inside returned; the exit node is still
                    // reachable via those return paths (threaded below), so
                    // control does not fall through the block.
                    None
                }
            }
            Stmt::Return(_) => {
                // A return releases every enclosing explicit block (inner to
                // outer) and then reaches the method end.
                let mut at = cur;
                let exits: Vec<usize> = self.sync_exits.iter().rev().copied().collect();
                for exit in exits {
                    self.edge(at, exit, None);
                    at = exit;
                }
                let exit_junction = self.exit_junction;
                self.edge(at, exit_junction, None);
                None
            }
            // Ordinary statements are part of the region; no CFG node needed.
            Stmt::Assign { .. } | Stmt::Local { .. } | Stmt::Skip => Some(cur),
        }
    }

    /// Derive arcs: from each concurrency node, walk junction chains to the
    /// next concurrency nodes, collecting conditions.
    fn derive_arcs(&self) -> Vec<Arc> {
        let mut arcs: Vec<Arc> = Vec::new();
        for (conc_idx, &cfg_idx) in self.conc_cfg.iter().enumerate() {
            let from = NodeId(conc_idx);
            let mut visited = vec![false; self.cfg.len()];
            let mut conds = Vec::new();
            self.walk(cfg_idx, from, &mut visited, &mut conds, &mut arcs, true);
        }
        arcs
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        cfg_idx: usize,
        from: NodeId,
        visited: &mut Vec<bool>,
        conds: &mut Vec<Condition>,
        arcs: &mut Vec<Arc>,
        is_origin: bool,
    ) {
        if !is_origin {
            if let Some(conc) = self.cfg[cfg_idx].conc {
                self.emit(from, NodeId(conc), conds.clone(), arcs);
                return;
            }
            if visited[cfg_idx] {
                return; // junction cycle: region loops with no concurrency
            }
            visited[cfg_idx] = true;
        }
        for edge in &self.cfg[cfg_idx].succs {
            let pushed = if let Some(c) = &edge.cond {
                conds.push(c.clone());
                true
            } else {
                false
            };
            self.walk(edge.target, from, visited, conds, arcs, false);
            if pushed {
                conds.pop();
            }
        }
        if !is_origin {
            visited[cfg_idx] = false;
        }
    }

    fn emit(&self, from: NodeId, to: NodeId, witness: Vec<Condition>, arcs: &mut Vec<Arc>) {
        let transitions = self.arc_transitions(from, to);
        if let Some(existing) = arcs.iter_mut().find(|a| a.from == from && a.to == to) {
            if !existing.witnesses.contains(&witness) {
                existing.witnesses.push(witness);
            }
        } else {
            arcs.push(Arc {
                from,
                to,
                witnesses: vec![witness],
                transitions,
            });
        }
    }

    fn arc_transitions(&self, from: NodeId, to: NodeId) -> Vec<Transition> {
        let mut out = Vec::new();
        match self.nodes[from.0].kind {
            NodeKind::Start => {
                if self.method.synchronized {
                    out.extend([Transition::T1, Transition::T2]);
                }
            }
            NodeKind::Wait => out.extend([Transition::T3, Transition::T5, Transition::T2]),
            NodeKind::Notify | NodeKind::NotifyAll => out.push(Transition::T5),
            NodeKind::SyncEnter => out.push(Transition::T2),
            NodeKind::SyncExit | NodeKind::End => {}
        }
        match self.nodes[to.0].kind {
            NodeKind::Wait => out.push(Transition::T3),
            NodeKind::Notify | NodeKind::NotifyAll => out.push(Transition::T5),
            NodeKind::SyncEnter => out.push(Transition::T1),
            NodeKind::SyncExit => out.push(Transition::T4),
            NodeKind::End => {
                if self.method.synchronized {
                    out.push(Transition::T4);
                }
            }
            NodeKind::Start => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind as K;
    use jcc_model::examples;
    use jcc_petri::Transition as T;

    fn arc_set(g: &Cofg) -> Vec<(String, String, Vec<T>)> {
        g.arcs
            .iter()
            .map(|a| {
                (
                    g.label(a.from),
                    g.label(a.to),
                    a.transitions.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn receive_cofg_matches_figure_3() {
        let c = examples::producer_consumer();
        let g = build_cofg(&c, c.method("receive").unwrap());
        // Nodes: start, wait, notifyAll, end.
        let kinds: Vec<_> = g.nodes.iter().map(|n| n.kind).collect();
        assert_eq!(kinds, vec![K::Start, K::Wait, K::NotifyAll, K::End]);
        // Exactly the five arcs of Figure 3.
        let arcs = arc_set(&g);
        assert_eq!(arcs.len(), 5, "{arcs:?}");
        let find = |f: &str, t: &str| {
            arcs.iter()
                .find(|(af, at, _)| af == f && at == t)
                .unwrap_or_else(|| panic!("missing arc {f} -> {t}"))
                .2
                .clone()
        };
        // Arc 1: start -> wait fires T1, T2, T3.
        assert_eq!(find("start", "wait"), vec![T::T1, T::T2, T::T3]);
        // Arc 2: wait -> wait fires T3, T5, T2, T3.
        assert_eq!(find("wait", "wait"), vec![T::T3, T::T5, T::T2, T::T3]);
        // Arc 3: wait -> notifyAll. The paper prints "T3, T4, T5"; the
        // systematic derivation gives T3 (own wait), T5 (woken), T2
        // (reacquire), T5 (the notification it issues) — see `paper`.
        assert_eq!(
            find("wait", "notifyAll"),
            vec![T::T3, T::T5, T::T2, T::T5]
        );
        // Arc 4: start -> notifyAll fires T1, T2, T5.
        assert_eq!(find("start", "notifyAll"), vec![T::T1, T::T2, T::T5]);
        // Arc 5: notifyAll -> end fires T5, T4.
        assert_eq!(find("notifyAll", "end"), vec![T::T5, T::T4]);
    }

    #[test]
    fn receive_arc_conditions_match_figure_3() {
        let c = examples::producer_consumer();
        let g = build_cofg(&c, c.method("receive").unwrap());
        let wait = g.node_by_path(&jcc_model::ast::StmtPath(vec![0, 0])).unwrap();
        // start -> wait requires the while condition true.
        let a = &g.arcs[g.arc_between(g.start(), wait).unwrap()];
        assert_eq!(a.witnesses.len(), 1);
        assert_eq!(a.witnesses[0].len(), 1);
        assert!(a.witnesses[0][0].expr.contains("curPos"));
        assert!(a.witnesses[0][0].value);
        // wait -> notifyAll requires it false.
        let na = g
            .nodes
            .iter()
            .position(|n| n.kind == K::NotifyAll)
            .map(NodeId)
            .unwrap();
        let a = &g.arcs[g.arc_between(wait, na).unwrap()];
        assert!(!a.witnesses[0][0].value);
        // notifyAll -> end is unconditional.
        let a = &g.arcs[g.arc_between(na, g.end()).unwrap()];
        assert!(a.witnesses[0].is_empty());
    }

    #[test]
    fn send_cofg_identical_to_receive() {
        // "The CoFG for send is identical to that for receive in this case."
        let c = examples::producer_consumer();
        let receive = build_cofg(&c, c.method("receive").unwrap());
        let send = build_cofg(&c, c.method("send").unwrap());
        assert!(receive.isomorphic(&send));
    }

    #[test]
    fn non_synchronized_method_has_no_lock_transitions() {
        let c = examples::racy_counter();
        let g = build_cofg(&c, c.method("increment").unwrap());
        // start -> end only, firing nothing.
        assert_eq!(g.arcs.len(), 1);
        assert!(g.arcs[0].transitions.is_empty());
    }

    #[test]
    fn explicit_sync_block_nodes() {
        let c = examples::lock_order_deadlock();
        let g = build_cofg(&c, c.method("forward").unwrap());
        let kinds: Vec<_> = g.nodes.iter().map(|n| n.kind).collect();
        assert_eq!(
            kinds,
            vec![
                K::Start,
                K::SyncEnter,
                K::SyncExit,
                K::SyncEnter,
                K::SyncExit,
                K::End
            ]
        );
        // Locks recorded.
        assert_eq!(g.nodes[1].lock, "a");
        assert_eq!(g.nodes[3].lock, "b");
        // Arcs: start->enter(a), enter(a)->enter(b), enter(b)->exit(b),
        // exit(b)->exit(a), exit(a)->end.
        assert_eq!(g.arcs.len(), 5);
        // enter(a) -> enter(b): leaving enter(a) fires T2 (acquired a),
        // arriving at enter(b) fires T1 (request b).
        let a_enter = NodeId(1);
        let b_enter = NodeId(3);
        let arc = &g.arcs[g.arc_between(a_enter, b_enter).unwrap()];
        assert_eq!(arc.transitions, vec![T::T2, T::T1]);
    }

    #[test]
    fn early_return_threads_through_sync_exits() {
        let src = r#"
            class R {
              lock a;
              var n: int = 0;
              fn m() -> int {
                synchronized (a) {
                  if (n > 0) { return 1; }
                  n = n + 1;
                }
                return 0;
              }
            }
        "#;
        let c = jcc_model::parse_component(src).unwrap();
        let g = build_cofg(&c, c.method("m").unwrap());
        // The return inside the block must route through the SyncExit node.
        let exit_id = g
            .nodes
            .iter()
            .position(|n| n.kind == K::SyncExit)
            .map(NodeId)
            .unwrap();
        let arc = g.arc_between(exit_id, g.end());
        assert!(arc.is_some(), "sync-exit must reach end");
        // And there are two ways out of the block: early return (n > 0) and
        // fall-through, giving the exit->end arc or exit->end via region.
        let a = &g.arcs[arc.unwrap()];
        assert!(!a.witnesses.is_empty());
    }

    #[test]
    fn barrier_if_both_branches_produce_arcs() {
        let c = examples::barrier();
        let g = build_cofg(&c, c.method("await").unwrap());
        // Nodes: start, notifyAll (then-branch), wait, end.
        let kinds: Vec<_> = g.nodes.iter().map(|n| n.kind).collect();
        assert_eq!(kinds, vec![K::Start, K::NotifyAll, K::Wait, K::End]);
        // start -> notifyAll (arrived == parties true), start -> wait
        // (false, loop true), start -> end (false, loop false),
        // notifyAll -> end, wait -> wait, wait -> end.
        assert_eq!(g.arcs.len(), 6, "{:#?}", g.arcs);
    }

    #[test]
    fn infinite_loop_without_concurrency_kills_arcs() {
        // HoldLockForever shape: while(true){skip} at method start means no
        // concurrency node is reachable from start except through... nothing.
        let src = r#"
            class H {
              var v: int = 0;
              synchronized fn m() {
                while (true) { skip; }
                notifyAll;
              }
            }
        "#;
        let c = jcc_model::parse_component(src).unwrap();
        let g = build_cofg(&c, c.method("m").unwrap());
        // start can only reach notifyAll via the loop exiting (cond false) —
        // the arc still exists *statically* (condition `true == false`), and
        // the loop itself produces no arc. No start->start cycles.
        assert!(g.arcs.iter().all(|a| a.from != a.to || g.node(a.from).kind != K::Start));
    }

    #[test]
    fn all_corpus_methods_build() {
        for (name, c) in examples::corpus() {
            for g in build_component_cofgs(&c) {
                assert!(
                    g.nodes.len() >= 2,
                    "{name}::{} has fewer than 2 nodes",
                    g.method
                );
                assert_eq!(g.node(g.start()).kind, K::Start);
                assert_eq!(g.node(g.end()).kind, K::End);
                // Every arc endpoint is a valid node.
                for a in &g.arcs {
                    assert!(a.from.0 < g.nodes.len());
                    assert!(a.to.0 < g.nodes.len());
                }
            }
        }
    }

    #[test]
    fn deterministic_construction() {
        let c = examples::readers_writers();
        let g1 = build_component_cofgs(&c);
        let g2 = build_component_cofgs(&c);
        assert_eq!(g1, g2);
    }
}
