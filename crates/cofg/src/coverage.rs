//! Arc-coverage tracking: folding a runtime stream of concurrency-statement
//! markers into CoFG arc coverage.
//!
//! Both the VM interpreter (`jcc-vm`) and the native runtime components emit
//! [`SiteId`] markers as threads pass concurrency statements. The tracker
//! keeps, per thread, the last concurrency node of its active method
//! invocation; each new marker covers the arc between the two.

use std::collections::HashMap;

use jcc_model::ast::StmtPath;

use crate::graph::{Cofg, NodeId};

/// Where within a method a marker fired.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Marker {
    /// Method entry.
    Start,
    /// Method exit.
    End,
    /// A concurrency statement at this path. For an explicit `synchronized`
    /// block this is the *entry* side.
    Stmt(StmtPath),
    /// The exit side of the explicit `synchronized` block at this path.
    SyncExit(StmtPath),
}

/// A runtime coverage marker: method plus position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SiteId {
    /// The method being executed.
    pub method: String,
    /// The position within it.
    pub marker: Marker,
}

impl SiteId {
    /// Marker for method entry.
    pub fn start(method: impl Into<String>) -> Self {
        SiteId {
            method: method.into(),
            marker: Marker::Start,
        }
    }

    /// Marker for method exit.
    pub fn end(method: impl Into<String>) -> Self {
        SiteId {
            method: method.into(),
            marker: Marker::End,
        }
    }

    /// Marker for a statement.
    pub fn stmt(method: impl Into<String>, path: StmtPath) -> Self {
        SiteId {
            method: method.into(),
            marker: Marker::Stmt(path),
        }
    }
}

/// Tracks CoFG arc coverage over one component's methods.
#[derive(Debug, Clone)]
pub struct CoverageTracker {
    cofgs: HashMap<String, Cofg>,
    covered: HashMap<String, Vec<bool>>,
    /// Per-method arc traversal counts (same indexing as `covered`).
    hits: HashMap<String, Vec<u64>>,
    /// Active invocation per thread: (method, last node).
    last: HashMap<u64, (String, NodeId)>,
    /// Events that could not be attributed to an arc (unknown method,
    /// no active invocation, or no matching arc).
    pub strays: usize,
}

impl CoverageTracker {
    /// Build a tracker over the given per-method CoFGs.
    pub fn new(cofgs: impl IntoIterator<Item = Cofg>) -> Self {
        let mut map = HashMap::new();
        let mut covered = HashMap::new();
        let mut hits = HashMap::new();
        for g in cofgs {
            covered.insert(g.method.clone(), vec![false; g.arcs.len()]);
            hits.insert(g.method.clone(), vec![0; g.arcs.len()]);
            map.insert(g.method.clone(), g);
        }
        CoverageTracker {
            cofgs: map,
            covered,
            hits,
            last: HashMap::new(),
            strays: 0,
        }
    }

    /// Record one marker from `thread`.
    pub fn record(&mut self, thread: u64, site: &SiteId) {
        let Some(cofg) = self.cofgs.get(&site.method) else {
            self.strays += 1;
            return;
        };
        match &site.marker {
            Marker::Start => {
                self.last
                    .insert(thread, (site.method.clone(), cofg.start()));
            }
            Marker::Stmt(path) | Marker::SyncExit(path) => {
                let want_exit = matches!(site.marker, Marker::SyncExit(_));
                let found = if want_exit {
                    cofg.sync_exit_by_path(path)
                } else {
                    cofg.node_by_path(path)
                };
                let Some(node) = found else {
                    self.strays += 1;
                    return;
                };
                match self.last.get(&thread).cloned() {
                    Some((method, prev)) if method == site.method => {
                        self.cover(&method, prev, node);
                        self.last.insert(thread, (method, node));
                    }
                    _ => {
                        self.strays += 1;
                        self.last
                            .insert(thread, (site.method.clone(), node));
                    }
                }
            }
            Marker::End => {
                match self.last.remove(&thread) {
                    Some((method, prev)) if method == site.method => {
                        let end = self.cofgs[&method].end();
                        self.cover(&method, prev, end);
                    }
                    _ => self.strays += 1,
                }
            }
        }
    }

    fn cover(&mut self, method: &str, from: NodeId, to: NodeId) {
        let cofg = &self.cofgs[method];
        match cofg.arc_between(from, to) {
            Some(idx) => {
                self.covered.get_mut(method).unwrap()[idx] = true;
                self.hits.get_mut(method).unwrap()[idx] += 1;
            }
            None => self.strays += 1,
        }
    }

    /// Total arcs across all methods.
    pub fn total_arcs(&self) -> usize {
        self.covered.values().map(Vec::len).sum()
    }

    /// Covered arcs across all methods.
    pub fn covered_arcs(&self) -> usize {
        self.covered
            .values()
            .map(|v| v.iter().filter(|&&b| b).count())
            .sum()
    }

    /// Coverage ratio in `[0, 1]`; 1.0 for a component with no arcs.
    pub fn ratio(&self) -> f64 {
        let total = self.total_arcs();
        if total == 0 {
            1.0
        } else {
            self.covered_arcs() as f64 / total as f64
        }
    }

    /// True when every arc of every method is covered.
    pub fn complete(&self) -> bool {
        self.covered_arcs() == self.total_arcs()
    }

    /// Human-readable list of uncovered arcs: `(method, arc description)`.
    pub fn uncovered(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let mut methods: Vec<&String> = self.covered.keys().collect();
        methods.sort();
        for method in methods {
            let cofg = &self.cofgs[method];
            for (i, &c) in self.covered[method].iter().enumerate() {
                if !c {
                    out.push((method.clone(), cofg.describe_arc(i)));
                }
            }
        }
        out
    }

    /// Per-method `(covered, total)` pairs, sorted by method name.
    pub fn per_method(&self) -> Vec<(String, usize, usize)> {
        let mut out: Vec<(String, usize, usize)> = self
            .covered
            .iter()
            .map(|(m, v)| (m.clone(), v.iter().filter(|&&b| b).count(), v.len()))
            .collect();
        out.sort();
        out
    }

    /// Per-arc traversal counts for `method`, indexed like the CoFG's arc
    /// list. `None` for an unknown method.
    pub fn arc_hits(&self, method: &str) -> Option<&[u64]> {
        self.hits.get(method).map(Vec::as_slice)
    }

    /// Whether `method`'s arc `idx` has been covered.
    pub fn arc_covered(&self, method: &str, idx: usize) -> bool {
        self.covered
            .get(method)
            .and_then(|v| v.get(idx))
            .copied()
            .unwrap_or(false)
    }

    /// The CoFG this tracker holds for `method`, when known.
    pub fn cofg(&self, method: &str) -> Option<&Cofg> {
        self.cofgs.get(method)
    }

    /// Method names this tracker covers, sorted.
    pub fn methods(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.covered.keys().map(String::as_str).collect();
        out.sort_unstable();
        out
    }

    /// Merge coverage from another tracker over the same CoFGs.
    pub fn merge(&mut self, other: &CoverageTracker) {
        for (method, bits) in &other.covered {
            if let Some(mine) = self.covered.get_mut(method) {
                for (a, b) in mine.iter_mut().zip(bits) {
                    *a |= b;
                }
            }
        }
        for (method, counts) in &other.hits {
            if let Some(mine) = self.hits.get_mut(method) {
                for (a, b) in mine.iter_mut().zip(counts) {
                    *a += b;
                }
            }
        }
        self.strays += other.strays;
    }

    /// Reset per-thread state (e.g. between schedules) without losing
    /// accumulated coverage.
    pub fn reset_threads(&mut self) {
        self.last.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_component_cofgs;
    use jcc_model::examples;

    fn tracker() -> CoverageTracker {
        let c = examples::producer_consumer();
        CoverageTracker::new(build_component_cofgs(&c))
    }

    #[test]
    fn empty_tracker_zero_coverage() {
        let t = tracker();
        assert_eq!(t.covered_arcs(), 0);
        assert_eq!(t.total_arcs(), 10); // 5 arcs × 2 methods
        assert_eq!(t.ratio(), 0.0);
        assert!(!t.complete());
        assert_eq!(t.uncovered().len(), 10);
    }

    #[test]
    fn straight_send_covers_two_arcs() {
        // A send with an empty buffer: start -> notifyAll -> end.
        let mut t = tracker();
        t.record(1, &SiteId::start("send"));
        t.record(1, &SiteId::stmt("send", StmtPath(vec![4])));
        t.record(1, &SiteId::end("send"));
        assert_eq!(t.covered_arcs(), 2);
        assert_eq!(t.strays, 0);
    }

    #[test]
    fn wait_loop_covers_wait_arcs() {
        // receive that waits twice then completes:
        // start -> wait, wait -> wait, wait -> notifyAll, notifyAll -> end.
        let mut t = tracker();
        let wait = StmtPath(vec![0, 0]);
        let notify = StmtPath(vec![3]);
        t.record(7, &SiteId::start("receive"));
        t.record(7, &SiteId::stmt("receive", wait.clone()));
        t.record(7, &SiteId::stmt("receive", wait.clone()));
        t.record(7, &SiteId::stmt("receive", notify));
        t.record(7, &SiteId::end("receive"));
        assert_eq!(t.covered_arcs(), 4);
        // Only start -> notifyAll remains for receive.
        let unc = t.uncovered();
        let receive_unc: Vec<_> = unc.iter().filter(|(m, _)| m == "receive").collect();
        assert_eq!(receive_unc.len(), 1);
        assert!(receive_unc[0].1.contains("start -> notifyAll"));
    }

    #[test]
    fn interleaved_threads_tracked_independently() {
        let mut t = tracker();
        t.record(1, &SiteId::start("send"));
        t.record(2, &SiteId::start("receive"));
        t.record(1, &SiteId::stmt("send", StmtPath(vec![4])));
        t.record(2, &SiteId::stmt("receive", StmtPath(vec![0, 0])));
        t.record(1, &SiteId::end("send"));
        assert_eq!(t.strays, 0);
        assert_eq!(t.covered_arcs(), 3);
    }

    #[test]
    fn stray_events_counted() {
        let mut t = tracker();
        // End without start.
        t.record(1, &SiteId::end("send"));
        assert_eq!(t.strays, 1);
        // Unknown method.
        t.record(1, &SiteId::start("ghost"));
        assert_eq!(t.strays, 2);
        // Unknown path.
        t.record(1, &SiteId::start("send"));
        t.record(1, &SiteId::stmt("send", StmtPath(vec![99])));
        assert_eq!(t.strays, 3);
    }

    #[test]
    fn arc_hits_count_traversals() {
        let mut t = tracker();
        // Two straight sends: start -> notifyAll -> end, twice.
        for _ in 0..2 {
            t.record(1, &SiteId::start("send"));
            t.record(1, &SiteId::stmt("send", StmtPath(vec![4])));
            t.record(1, &SiteId::end("send"));
        }
        let hits = t.arc_hits("send").unwrap();
        assert_eq!(hits.iter().sum::<u64>(), 4, "{hits:?}");
        assert_eq!(hits.iter().filter(|&&n| n == 2).count(), 2);
        for (i, &n) in hits.iter().enumerate() {
            assert_eq!(t.arc_covered("send", i), n > 0);
        }
        assert!(t.arc_hits("ghost").is_none());
        assert_eq!(t.methods(), vec!["receive", "send"]);
    }

    #[test]
    fn merge_unions_coverage() {
        let mut a = tracker();
        let mut b = tracker();
        a.record(1, &SiteId::start("send"));
        a.record(1, &SiteId::stmt("send", StmtPath(vec![4])));
        b.record(1, &SiteId::start("receive"));
        b.record(1, &SiteId::stmt("receive", StmtPath(vec![0, 0])));
        let a_only = a.covered_arcs();
        let b_only = b.covered_arcs();
        a.merge(&b);
        assert_eq!(a.covered_arcs(), a_only + b_only);
    }

    #[test]
    fn full_coverage_complete() {
        let mut t = tracker();
        let wait_r = StmtPath(vec![0, 0]);
        let notify_r = StmtPath(vec![3]);
        let wait_s = StmtPath(vec![0, 0]);
        let notify_s = StmtPath(vec![4]);
        // receive covering all five arcs needs two invocations.
        t.record(1, &SiteId::start("receive"));
        t.record(1, &SiteId::stmt("receive", wait_r.clone()));
        t.record(1, &SiteId::stmt("receive", wait_r.clone()));
        t.record(1, &SiteId::stmt("receive", notify_r.clone()));
        t.record(1, &SiteId::end("receive"));
        t.record(1, &SiteId::start("receive"));
        t.record(1, &SiteId::stmt("receive", notify_r));
        t.record(1, &SiteId::end("receive"));
        // send likewise.
        t.record(2, &SiteId::start("send"));
        t.record(2, &SiteId::stmt("send", wait_s.clone()));
        t.record(2, &SiteId::stmt("send", wait_s.clone()));
        t.record(2, &SiteId::stmt("send", notify_s.clone()));
        t.record(2, &SiteId::end("send"));
        t.record(2, &SiteId::start("send"));
        t.record(2, &SiteId::stmt("send", notify_s));
        t.record(2, &SiteId::end("send"));
        assert!(t.complete(), "uncovered: {:?}", t.uncovered());
        assert_eq!(t.ratio(), 1.0);
        assert_eq!(t.strays, 0);
    }

    #[test]
    fn per_method_breakdown() {
        let mut t = tracker();
        t.record(1, &SiteId::start("send"));
        t.record(1, &SiteId::stmt("send", StmtPath(vec![4])));
        t.record(1, &SiteId::end("send"));
        let pm = t.per_method();
        assert_eq!(pm.len(), 2);
        assert_eq!(pm[0], ("receive".to_string(), 0, 5));
        assert_eq!(pm[1], ("send".to_string(), 2, 5));
    }

    #[test]
    fn sync_exit_markers_cover_exit_nodes() {
        use crate::build::build_component_cofgs;
        let c = jcc_model::examples::lock_order_deadlock();
        let mut t = CoverageTracker::new(build_component_cofgs(&c));
        // forward: start -> enter(a) -> enter(b) -> exit(b) -> exit(a) -> end
        t.record(1, &SiteId::start("forward"));
        t.record(
            1,
            &SiteId {
                method: "forward".into(),
                marker: Marker::Stmt(StmtPath(vec![0])),
            },
        );
        t.record(
            1,
            &SiteId {
                method: "forward".into(),
                marker: Marker::Stmt(StmtPath(vec![0, 0])),
            },
        );
        t.record(
            1,
            &SiteId {
                method: "forward".into(),
                marker: Marker::SyncExit(StmtPath(vec![0, 0])),
            },
        );
        t.record(
            1,
            &SiteId {
                method: "forward".into(),
                marker: Marker::SyncExit(StmtPath(vec![0])),
            },
        );
        t.record(1, &SiteId::end("forward"));
        assert_eq!(t.strays, 0);
        let per = t.per_method();
        let fwd = per.iter().find(|(m, _, _)| m == "forward").unwrap();
        assert_eq!((fwd.1, fwd.2), (5, 5), "{:?}", t.uncovered());
    }

    #[test]
    fn sync_exit_marker_on_non_sync_path_is_stray() {
        let mut t = tracker();
        t.record(1, &SiteId::start("send"));
        t.record(
            1,
            &SiteId {
                method: "send".into(),
                marker: Marker::SyncExit(StmtPath(vec![4])),
            },
        );
        assert_eq!(t.strays, 1);
    }
}
