//! Graphviz DOT export of CoFGs — regenerates Figure 3 graphically.

use std::fmt::Write as _;

use crate::graph::Cofg;

/// Render one CoFG as a DOT digraph. Arc labels list the transition
/// sequence; edge tooltips carry the traversal conditions.
pub fn cofg_to_dot(g: &Cofg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph cofg_{} {{", sanitize(&g.method));
    let _ = writeln!(out, "  label=\"CoFG: {}.{}\";", g.component, g.method);
    out.push_str("  rankdir=TB;\n");
    for (i, _node) in g.nodes.iter().enumerate() {
        let id = crate::graph::NodeId(i);
        let _ = writeln!(
            out,
            "  n{i} [shape=ellipse, label=\"{}\"];",
            g.label(id)
        );
    }
    for arc in &g.arcs {
        let fires = arc
            .transitions
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let conds = arc
            .witnesses
            .iter()
            .map(|w| {
                if w.is_empty() {
                    "always".to_string()
                } else {
                    w.iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(" && ")
                }
            })
            .collect::<Vec<_>>()
            .join(" | ");
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{fires}\", tooltip=\"{conds}\"];",
            arc.from.0, arc.to.0
        );
    }
    out.push_str("}\n");
    out
}

/// Render every method's CoFG into one DOT file with clustered subgraphs
/// (Figure 3 shows `receive` and `send` side by side).
pub fn component_to_dot(graphs: &[Cofg]) -> String {
    let mut out = String::new();
    let name = graphs
        .first()
        .map(|g| g.component.clone())
        .unwrap_or_default();
    let _ = writeln!(out, "digraph cofgs_{} {{", sanitize(&name));
    for (gi, g) in graphs.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{gi} {{");
        let _ = writeln!(out, "    label=\"{}\";", g.method);
        for (i, _) in g.nodes.iter().enumerate() {
            let id = crate::graph::NodeId(i);
            let _ = writeln!(
                out,
                "    g{gi}n{i} [shape=ellipse, label=\"{}\"];",
                g.label(id)
            );
        }
        for arc in &g.arcs {
            let fires = arc
                .transitions
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(
                out,
                "    g{gi}n{} -> g{gi}n{} [label=\"{fires}\"];",
                arc.from.0, arc.to.0
            );
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_component_cofgs;
    use jcc_model::examples;

    #[test]
    fn dot_contains_nodes_and_arcs() {
        let c = examples::producer_consumer();
        let graphs = build_component_cofgs(&c);
        let dot = cofg_to_dot(&graphs[0]);
        assert!(dot.contains("digraph cofg_receive"));
        assert!(dot.contains("label=\"start\""));
        assert!(dot.contains("label=\"wait\""));
        assert!(dot.contains("label=\"notifyAll\""));
        assert!(dot.contains("T1,T2,T3"));
    }

    #[test]
    fn component_dot_has_one_cluster_per_method() {
        let c = examples::producer_consumer();
        let graphs = build_component_cofgs(&c);
        let dot = component_to_dot(&graphs);
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.contains("label=\"receive\""));
        assert!(dot.contains("label=\"send\""));
    }

    #[test]
    fn sanitize_nonalnum() {
        assert_eq!(sanitize("a-b.c"), "a_b_c");
    }
}
