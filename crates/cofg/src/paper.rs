//! The published Figure-3 reference data and the comparison against our
//! systematically derived CoFG.
//!
//! Section 6.1 of the paper lists five arcs for `receive` (and states that
//! `send`'s CoFG is identical):
//!
//! | # | arc                | while condition | transitions (as printed) |
//! |---|--------------------|-----------------|--------------------------|
//! | 1 | start → wait       | true            | T1, T2, T3               |
//! | 2 | wait → wait        | true            | T3, T5, T2, T3           |
//! | 3 | wait → notifyAll   | false           | T3, T4, T5               |
//! | 4 | start → notifyAll  | false           | T1, T2, T5               |
//! | 5 | notifyAll → end    | —               | T5, T4                   |
//!
//! **Known anomaly.** Arc 3's printed sequence `T3, T4, T5` is inconsistent
//! with the decomposition the other four arcs follow (source node's firing
//! contribution, then destination's): a thread traversing wait → notifyAll
//! waits (T3), is woken (T5), re-acquires the lock (T2) and then issues a
//! notification (T5) — it never *releases* the lock (T4) inside that region.
//! Applying the paper's own scheme from arcs 1, 2, 4 and 5 yields
//! `T3, T5, T2, T5`, which is what [`crate::build`] derives. The comparison
//! helpers below treat arc 3 as matching either sequence and report which
//! one was found.

use jcc_petri::Transition;

use crate::graph::{Cofg, NodeKind};

/// One row of the published Figure-3 arc table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaperArc {
    /// Arc number as printed (1–5).
    pub number: usize,
    /// Source node kind.
    pub from: NodeKind,
    /// Destination node kind.
    pub to: NodeKind,
    /// Required while-condition polarity, if any.
    pub condition: Option<bool>,
    /// Transition sequence as printed in the paper.
    pub printed: Vec<Transition>,
    /// Transition sequence under the paper's own systematic scheme
    /// (differs from `printed` only for arc 3).
    pub derived: Vec<Transition>,
}

/// The five published arcs of the `receive`/`send` CoFG.
pub fn figure3_arcs() -> Vec<PaperArc> {
    use NodeKind::*;
    use Transition::*;
    vec![
        PaperArc {
            number: 1,
            from: Start,
            to: Wait,
            condition: Some(true),
            printed: vec![T1, T2, T3],
            derived: vec![T1, T2, T3],
        },
        PaperArc {
            number: 2,
            from: Wait,
            to: Wait,
            condition: Some(true),
            printed: vec![T3, T5, T2, T3],
            derived: vec![T3, T5, T2, T3],
        },
        PaperArc {
            number: 3,
            from: Wait,
            to: NotifyAll,
            condition: Some(false),
            printed: vec![T3, T4, T5],
            derived: vec![T3, T5, T2, T5],
        },
        PaperArc {
            number: 4,
            from: Start,
            to: NotifyAll,
            condition: Some(false),
            printed: vec![T1, T2, T5],
            derived: vec![T1, T2, T5],
        },
        PaperArc {
            number: 5,
            from: NotifyAll,
            to: End,
            condition: None,
            printed: vec![T5, T4],
            derived: vec![T5, T4],
        },
    ]
}

/// The result of comparing one built arc against the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArcMatch {
    /// The built arc matches the printed sequence exactly.
    MatchesPrinted,
    /// The built arc matches the systematic derivation (the arc-3 case).
    MatchesDerived,
    /// The paper's arc exists but with a different transition sequence.
    TransitionMismatch {
        /// What the builder produced.
        built: Vec<Transition>,
    },
    /// No arc with these endpoints exists in the built CoFG.
    Missing,
}

/// Compare a built CoFG of the producer–consumer `receive`/`send` shape
/// against the published Figure-3 table. Returns one [`ArcMatch`] per paper
/// arc, in paper order, plus the count of extra arcs the builder produced.
pub fn compare_with_figure3(g: &Cofg) -> (Vec<ArcMatch>, usize) {
    let paper = figure3_arcs();
    let mut matched = vec![false; g.arcs.len()];
    let mut results = Vec::with_capacity(paper.len());
    for pa in &paper {
        let found = g.arcs.iter().enumerate().find(|(_, a)| {
            g.node(a.from).kind == pa.from && g.node(a.to).kind == pa.to
        });
        match found {
            None => results.push(ArcMatch::Missing),
            Some((i, a)) => {
                matched[i] = true;
                if a.transitions == pa.printed {
                    results.push(ArcMatch::MatchesPrinted);
                } else if a.transitions == pa.derived {
                    results.push(ArcMatch::MatchesDerived);
                } else {
                    results.push(ArcMatch::TransitionMismatch {
                        built: a.transitions.clone(),
                    });
                }
            }
        }
    }
    let extra = matched.iter().filter(|&&m| !m).count();
    (results, extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cofg;
    use jcc_model::examples;

    #[test]
    fn figure3_has_five_arcs() {
        let arcs = figure3_arcs();
        assert_eq!(arcs.len(), 5);
        assert_eq!(arcs.iter().map(|a| a.number).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn built_receive_reproduces_figure3() {
        let c = examples::producer_consumer();
        let g = build_cofg(&c, c.method("receive").unwrap());
        let (matches, extra) = compare_with_figure3(&g);
        assert_eq!(extra, 0, "builder produced extra arcs");
        // Arcs 1, 2, 4, 5 match the printed sequences; arc 3 matches the
        // systematic derivation (the paper's printed arc 3 is anomalous).
        assert_eq!(matches[0], ArcMatch::MatchesPrinted);
        assert_eq!(matches[1], ArcMatch::MatchesPrinted);
        assert_eq!(matches[2], ArcMatch::MatchesDerived);
        assert_eq!(matches[3], ArcMatch::MatchesPrinted);
        assert_eq!(matches[4], ArcMatch::MatchesPrinted);
    }

    #[test]
    fn built_send_reproduces_figure3() {
        let c = examples::producer_consumer();
        let g = build_cofg(&c, c.method("send").unwrap());
        let (matches, extra) = compare_with_figure3(&g);
        assert_eq!(extra, 0);
        assert!(matches
            .iter()
            .all(|m| matches!(m, ArcMatch::MatchesPrinted | ArcMatch::MatchesDerived)));
    }

    #[test]
    fn anomaly_only_in_arc_3() {
        for pa in figure3_arcs() {
            if pa.number == 3 {
                assert_ne!(pa.printed, pa.derived);
            } else {
                assert_eq!(pa.printed, pa.derived);
            }
        }
    }

    #[test]
    fn mismatch_detected_for_wrong_component() {
        // The barrier's await method is not Figure-3 shaped: expect misses.
        let c = examples::barrier();
        let g = build_cofg(&c, c.method("await").unwrap());
        let (matches, _) = compare_with_figure3(&g);
        assert!(matches.iter().any(|m| matches!(m, ArcMatch::Missing)));
    }
}
