//! Test requirements: Brinch Hansen's step 1, automated.
//!
//! "For each monitor operation, the tester identifies a set of preconditions
//! that will cause each branch of the operation to be executed at least
//! once." With a CoFG in hand, the preconditions are mechanical: each arc
//! is one requirement — make its source concurrency statement happen, put
//! the component in a state satisfying the arc's conditions, and predict
//! the transitions the traversal will fire.

use crate::graph::{Cofg, NodeKind};

/// One derived test requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Requirement {
    /// The method under test.
    pub method: String,
    /// 1-based requirement number within the method (arc index + 1).
    pub number: usize,
    /// Human-readable obligation.
    pub text: String,
    /// Whether the requirement needs a second thread (any arc touching
    /// `wait` or woken by a notification does).
    pub needs_second_thread: bool,
}

/// Derive the requirement list for one method's CoFG.
pub fn requirements(cofg: &Cofg) -> Vec<Requirement> {
    cofg.arcs
        .iter()
        .enumerate()
        .map(|(i, arc)| {
            let from = cofg.node(arc.from);
            let to = cofg.node(arc.to);
            let mut clauses: Vec<String> = Vec::new();
            clauses.push(match from.kind {
                NodeKind::Start => format!("invoke `{}`", cofg.method),
                NodeKind::Wait => "with the thread suspended at `wait`, have it notified".into(),
                NodeKind::Notify | NodeKind::NotifyAll => {
                    format!("continue past the `{}`", from.kind.display())
                }
                NodeKind::SyncEnter => format!("after acquiring `{}`", from.lock),
                NodeKind::SyncExit => format!("after releasing `{}`", from.lock),
                NodeKind::End => unreachable!("end has no outgoing arcs"),
            });
            for witness in arc.witnesses.first().into_iter() {
                for cond in witness {
                    clauses.push(format!(
                        "arrange the state so that {} evaluates {}",
                        cond.expr, cond.value
                    ));
                }
            }
            clauses.push(match to.kind {
                NodeKind::Start => unreachable!("start has no incoming arcs"),
                NodeKind::Wait => "so that the thread suspends at `wait`".into(),
                NodeKind::Notify | NodeKind::NotifyAll => {
                    format!("so that it reaches the `{}`", to.kind.display())
                }
                NodeKind::SyncEnter => format!("so that it requests `{}`", to.lock),
                NodeKind::SyncExit => format!("so that it releases `{}`", to.lock),
                NodeKind::End => "so that the call completes".into(),
            });
            let fires = arc
                .transitions
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let needs_second_thread = matches!(from.kind, NodeKind::Wait)
                || matches!(to.kind, NodeKind::Wait);
            Requirement {
                method: cofg.method.clone(),
                number: i + 1,
                text: format!("{} (fires {fires})", clauses.join("; ")),
                needs_second_thread,
            }
        })
        .collect()
}

/// Render a requirement list as a checklist.
pub fn render_requirements(reqs: &[Requirement]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut current = "";
    for r in reqs {
        if r.method != current {
            let _ = writeln!(out, "{}:", r.method);
            current = &r.method;
        }
        let marker = if r.needs_second_thread { "[2+ threads]" } else { "[1 thread ok]" };
        let _ = writeln!(out, "  {}. {} {}", r.number, marker, r.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_component_cofgs;
    use jcc_model::examples;

    #[test]
    fn producer_consumer_requirements() {
        let c = examples::producer_consumer();
        let graphs = build_component_cofgs(&c);
        let reqs = requirements(&graphs[0]);
        assert_eq!(reqs.len(), 5, "one requirement per Figure-3 arc");
        // The start->wait requirement mentions the guard and needs 2 threads.
        let r1 = &reqs[0];
        assert!(r1.text.contains("curPos"));
        assert!(r1.needs_second_thread);
        // The notifyAll->end requirement is single-thread satisfiable.
        let last = reqs.iter().find(|r| r.text.contains("completes")).unwrap();
        assert!(!last.needs_second_thread);
    }

    #[test]
    fn rendering_groups_by_method() {
        let c = examples::producer_consumer();
        let graphs = build_component_cofgs(&c);
        let mut all = requirements(&graphs[0]);
        all.extend(requirements(&graphs[1]));
        let text = render_requirements(&all);
        assert!(text.contains("receive:"));
        assert!(text.contains("send:"));
        assert!(text.contains("[2+ threads]"));
        assert!(text.contains("[1 thread ok]"));
        assert_eq!(text.matches("  1. ").count(), 2);
    }

    #[test]
    fn requirement_numbers_are_stable() {
        let c = examples::bounded_buffer();
        let graphs = build_component_cofgs(&c);
        let a = requirements(&graphs[0]);
        let b = requirements(&graphs[0]);
        assert_eq!(a, b);
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.number, i + 1);
        }
    }

    #[test]
    fn sync_block_requirements_name_locks() {
        let c = examples::lock_order_deadlock();
        let graphs = build_component_cofgs(&c);
        let reqs = requirements(&graphs[0]);
        let text = render_requirements(&reqs);
        assert!(text.contains('a'));
        assert!(text.contains("requests `b`") || text.contains("acquiring `a`"), "{text}");
    }
}
