//! # jcc-cofg — Concurrency Flow Graphs
//!
//! A Concurrency Flow Graph (CoFG, the paper's Section 6) is built per
//! method of a concurrent component. Its nodes are the *concurrency
//! statements* — method `start`, `wait`, `notify`, `notifyAll`, explicit
//! `synchronized` block boundaries, and method `end` — and its arcs are the
//! code regions between all pairs of concurrency statements that control
//! flow can connect without crossing a third one. Each arc carries
//!
//! * the loop/branch conditions (with required polarity) a test must
//!   establish to traverse it, and
//! * the sequence of Figure-1 model transitions (T1–T5) its traversal fires.
//!
//! Covering all arcs of a CoFG therefore exercises every concurrency
//! primitive of the component — the paper's test-selection criterion.
//!
//! Modules:
//! * [`graph`] — the CoFG data structure,
//! * [`build`] — CoFG construction from `jcc-model` IR,
//! * [`coverage`] — arc-coverage tracking from event streams,
//! * [`dot`] — Graphviz export,
//! * [`requirements`] — per-arc test requirements (Brinch Hansen step 1),
//! * [`paper`] — the published Figure-3 reference data for regression
//!   comparison (including the paper's arc-3 transition-list anomaly).

//! # Example
//!
//! ```
//! use jcc_cofg::{build_cofg, NodeKind};
//!
//! let component = jcc_model::examples::producer_consumer();
//! let cofg = build_cofg(&component, component.method("receive").unwrap());
//! // Figure 3: start, wait, notifyAll, end — and five arcs.
//! assert_eq!(cofg.nodes.len(), 4);
//! assert_eq!(cofg.arcs.len(), 5);
//! assert_eq!(cofg.node(cofg.start()).kind, NodeKind::Start);
//! println!("{}", cofg.describe_arc(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod coverage;
pub mod dot;
pub mod graph;
pub mod paper;
pub mod requirements;

pub use build::{build_cofg, build_component_cofgs};
pub use coverage::{CoverageTracker, Marker, SiteId};
pub use graph::{Arc, Cofg, Condition, Node, NodeId, NodeKind};
