//! Plain-text report rendering: Table 1 in the paper's layout, CoFG arc
//! listings (Figure 3), coverage summaries and the mutation-study matrix.

use std::fmt::Write as _;

use jcc_analyze::{AnalysisReport, Severity};
use jcc_cofg::Cofg;
use jcc_cofg::coverage::CoverageTracker;
use jcc_detect::classify::Finding;

use crate::hazop::TableRow;
use crate::pipeline::{MutationStudyResult, ScheduleEvidence};

/// Render Table 1 — the concurrency failure classification — in the
/// paper's column layout.
pub fn render_table1(rows: &[TableRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1. Concurrency failure classification");
    let _ = writeln!(out, "{}", "=".repeat(78));
    for row in rows {
        let _ = writeln!(
            out,
            "{} — {} of {} ({})",
            row.class.code(),
            row.class.deviation,
            row.class.transition,
            row.class.transition.description()
        );
        if !row.applicable {
            let _ = writeln!(out, "  Cause:        not applicable (JVM assumed correct)");
            let _ = writeln!(out, "{}", "-".repeat(78));
            continue;
        }
        let _ = writeln!(out, "  Cause:        {}", row.cause);
        let _ = writeln!(out, "  Conditions:   {}", row.conditions);
        let _ = writeln!(out, "  Consequences: {}", row.consequences);
        let _ = writeln!(out, "  Testing:      {}", row.testing_notes);
        if let Some(name) = row.class.common_name() {
            let _ = writeln!(out, "  Known as:     {name}");
        }
        let _ = writeln!(out, "{}", "-".repeat(78));
    }
    out
}

/// Render a method's CoFG as the paper's numbered arc list (Figure 3 text).
pub fn render_cofg_arcs(cofg: &Cofg) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "CoFG for {}.{} — {} nodes, {} arcs",
        cofg.component,
        cofg.method,
        cofg.nodes.len(),
        cofg.arcs.len()
    );
    for (i, _arc) in cofg.arcs.iter().enumerate() {
        let _ = writeln!(out, "  {}. {}", i + 1, cofg.describe_arc(i));
    }
    out
}

/// Render a coverage summary.
pub fn render_coverage(tracker: &CoverageTracker) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "CoFG arc coverage: {}/{} ({:.0}%)",
        tracker.covered_arcs(),
        tracker.total_arcs(),
        tracker.ratio() * 100.0
    );
    for (method, covered, total) in tracker.per_method() {
        let _ = writeln!(out, "  {method}: {covered}/{total}");
    }
    let uncovered = tracker.uncovered();
    if !uncovered.is_empty() {
        let _ = writeln!(out, "uncovered arcs:");
        for (method, arc) in uncovered {
            let _ = writeln!(out, "  {method}: {arc}");
        }
    }
    out
}

/// Render the mutation-study matrix (experiment E5).
pub fn render_study(result: &MutationStudyResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Mutation study — component {}", result.component);
    let _ = writeln!(
        out,
        "directed suite: {} scenario(s), {:.0}% arc coverage",
        result.directed_suite_size,
        result.directed_coverage * 100.0
    );
    let _ = writeln!(
        out,
        "random baseline: {} scenario(s), {:.0}% arc coverage",
        result.random_suite_size,
        result.random_coverage * 100.0
    );
    let _ = writeln!(
        out,
        "{:<44} {:>6} {:>9} {:>7}",
        "mutant", "class", "directed", "random"
    );
    for m in &result.mutants {
        let _ = writeln!(
            out,
            "{:<44} {:>6} {:>9} {:>7}",
            m.mutation.label(),
            m.mutation.kind.seeded_class().code(),
            tick(m.detected_directed),
            tick(m.detected_random)
        );
    }
    let (dd, dt) = result.directed_score();
    let (rd, rt) = result.random_score();
    let _ = writeln!(
        out,
        "behavioural mutants detected: directed {dd}/{dt}, random {rd}/{rt}"
    );
    out
}

/// Render the static analyzer's verdict next to dynamically classified
/// findings: what the analyzer predicted from the source alone, and what
/// the VM actually observed. The two views share Table-1 class codes, so
/// agreement (or a miss on either side) is visible at a glance.
///
/// Pass `evidence` (from [`crate::pipeline::Pipeline::explore_evidence`])
/// to additionally print the failing schedule itself — an ASCII causal
/// timeline of the deterministic witness — and the CoFG arc-heat table
/// showing which arcs the failure traversed versus what the directed
/// suite covers.
pub fn render_findings_with_evidence(
    analysis: &AnalysisReport,
    dynamic: &[Finding],
    evidence: Option<&ScheduleEvidence>,
) -> String {
    let mut out = render_findings(analysis, dynamic);
    let Some(ev) = evidence else { return out };
    if let Some(timeline) = &ev.timeline {
        let _ = writeln!(out, "Failing schedule (deterministic witness):");
        for line in timeline.render_ascii().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    if !ev.arc_heat.is_empty() {
        let _ = writeln!(out, "CoFG arc heat (witness traversals vs directed suite):");
        let _ = writeln!(out, "  {:>5} {:>8}  arc", "hits", "directed");
        for row in &ev.arc_heat {
            let _ = writeln!(
                out,
                "  {:>5} {:>8}  {}: {}",
                row.hits,
                tick(row.directed),
                row.method,
                row.arc
            );
        }
        let gap = ev.hot_uncovered();
        if !gap.is_empty() {
            let _ = writeln!(
                out,
                "  {} arc(s) the failure traversed that the directed suite never covers",
                gap.len()
            );
        }
    }
    out
}

/// Render the static-vs-dynamic comparison without schedule evidence.
/// Shorthand for [`render_findings_with_evidence`] with `None`.
pub fn render_findings(analysis: &AnalysisReport, dynamic: &[Finding]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Static analysis ({} prediction)", jcc_analyze::SCHEMA);
    if analysis.diagnostics.is_empty() {
        let _ = writeln!(out, "  no diagnostics");
    } else {
        for line in analysis.render().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    let _ = writeln!(out, "Dynamic classification (observed)");
    if dynamic.is_empty() {
        let _ = writeln!(out, "  no findings");
    } else {
        for f in dynamic {
            let _ = writeln!(out, "  {f}");
        }
    }
    let static_classes = analysis.classes(Severity::Medium);
    let dynamic_classes: std::collections::BTreeSet<String> =
        dynamic.iter().map(|f| f.class.code()).collect();
    let confirmed: Vec<&String> = dynamic_classes
        .iter()
        .filter(|c| static_classes.contains(*c))
        .collect();
    let missed: Vec<&String> = dynamic_classes
        .iter()
        .filter(|c| !static_classes.contains(*c))
        .collect();
    let _ = writeln!(
        out,
        "Agreement: {} class(es) predicted and observed{}{}",
        confirmed.len(),
        if confirmed.is_empty() {
            String::new()
        } else {
            format!(
                " ({})",
                confirmed.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            )
        },
        if missed.is_empty() {
            String::new()
        } else {
            format!(
                "; observed but not predicted: {}",
                missed.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            )
        }
    );
    out
}

fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hazop::generate_table;
    use jcc_cofg::build_component_cofgs;
    use jcc_petri::JavaNet;

    #[test]
    fn table1_rendering_contains_all_rows() {
        let text = render_table1(&generate_table(&JavaNet::new(1)));
        for code in [
            "FF-T1", "EF-T1", "FF-T2", "EF-T2", "FF-T3", "EF-T3", "FF-T4", "EF-T4", "FF-T5",
            "EF-T5",
        ] {
            assert!(text.contains(code), "missing {code}");
        }
        assert!(text.contains("race condition"));
        assert!(text.contains("JVM assumed correct"));
    }

    #[test]
    fn cofg_arcs_render_numbered() {
        let c = jcc_model::examples::producer_consumer();
        let graphs = build_component_cofgs(&c);
        let text = render_cofg_arcs(&graphs[0]);
        assert!(text.contains("CoFG for ProducerConsumer.receive"));
        assert!(text.contains("1. "));
        assert!(text.contains("5. "));
        assert!(!text.contains("6. "));
    }

    #[test]
    fn findings_report_combines_static_and_dynamic() {
        use crate::pipeline::Pipeline;
        use jcc_vm::{CallSpec, ExploreConfig, ThreadSpec};

        let p = Pipeline::new(jcc_model::examples::lock_order_deadlock()).unwrap();
        let scenario = vec![
            ThreadSpec {
                name: "f".into(),
                calls: vec![CallSpec::new("forward", vec![])],
            },
            ThreadSpec {
                name: "b".into(),
                calls: vec![CallSpec::new("backward", vec![])],
            },
        ];
        let evidence = p.explore_evidence(&scenario, &ExploreConfig::default(), None);
        let text = render_findings_with_evidence(&p.analysis, &evidence.findings, Some(&evidence));
        assert!(text.contains("Static analysis"), "{text}");
        assert!(text.contains("lock-order-cycle"), "{text}");
        assert!(text.contains("Dynamic classification"), "{text}");
        assert!(text.contains("FF-T2"), "{text}");
        assert!(text.contains("predicted and observed (FF-T2)"), "{text}");
        // The witness timeline and arc heat ride along.
        assert!(text.contains("Failing schedule (deterministic witness):"), "{text}");
        assert!(text.contains("causal timeline (clock: steps"), "{text}");
        assert!(text.contains("CoFG arc heat"), "{text}");
        // No directed tracker supplied, so every traversed arc is a gap.
        assert!(
            text.contains("the directed suite never covers"),
            "{text}"
        );
    }

    #[test]
    fn findings_report_handles_clean_runs() {
        use crate::pipeline::Pipeline;
        let p = Pipeline::new(jcc_model::examples::producer_consumer()).unwrap();
        let text = render_findings(&p.analysis, &[]);
        assert!(text.contains("no findings"), "{text}");
        assert!(text.contains("Agreement: 0 class(es)"), "{text}");
        // A clean exploration has no witness: the evidence-aware renderer
        // prints neither a timeline nor an arc-heat table.
        use jcc_vm::{CallSpec, ExploreConfig, ThreadSpec, Value};
        let scenario = vec![
            ThreadSpec {
                name: "c".into(),
                calls: vec![CallSpec::new("receive", vec![])],
            },
            ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
            },
        ];
        let evidence = p.explore_evidence(&scenario, &ExploreConfig::default(), None);
        assert!(evidence.findings.is_empty());
        assert!(evidence.witness.is_none());
        let text =
            render_findings_with_evidence(&p.analysis, &evidence.findings, Some(&evidence));
        assert!(!text.contains("Failing schedule"), "{text}");
        assert!(!text.contains("arc heat"), "{text}");
    }

    #[test]
    fn coverage_report_renders() {
        let c = jcc_model::examples::producer_consumer();
        let tracker = jcc_cofg::CoverageTracker::new(build_component_cofgs(&c));
        let text = render_coverage(&tracker);
        assert!(text.contains("0/10"));
        assert!(text.contains("uncovered arcs:"));
    }
}
