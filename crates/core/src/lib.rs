//! # jcc-core — the paper's contribution, end to end
//!
//! Everything the paper itself adds on top of its substrates lives here:
//!
//! * [`hazop`] — the HAZOP-style deviation analysis of Section 5: every
//!   Figure-1 transition is analyzed for *failure to fire* and *erroneous
//!   firing*, **generating** Table 1 from structural facts about the net
//!   (which transitions need another thread, which move the lock token,
//!   which are fired by the runtime) rather than transcribing it,
//! * [`pipeline`] — the end-to-end method: component model → CoFGs →
//!   arc-coverage test sequences → (deterministic) execution → coverage
//!   measurement and Table-1 classification of anything that went wrong,
//!   plus the mutation study of experiment E5,
//! * [`report`] — plain-text rendering of Table 1 (the paper's layout),
//!   coverage reports, CoFG arc listings and mutation-study matrices, used
//!   by the regeneration binaries in `jcc-bench`.
//!
//! # Example
//!
//! ```
//! use jcc_core::pipeline::Pipeline;
//! use jcc_core::vm::{CallSpec, Scheduler, Value};
//!
//! // The paper's Figure-2 component, through the whole method.
//! let component = jcc_core::model::examples::producer_consumer();
//! let pipeline = Pipeline::new(component).expect("valid component");
//! assert_eq!(pipeline.total_arcs(), 10); // Figure 3: five arcs per method
//!
//! // One controlled run: a consumer that blocks until the producer sends.
//! let scenario = vec![
//!     jcc_core::vm::ThreadSpec {
//!         name: "consumer".into(),
//!         calls: vec![CallSpec::new("receive", vec![])],
//!     },
//!     jcc_core::vm::ThreadSpec {
//!         name: "producer".into(),
//!         calls: vec![CallSpec::new("send", vec![Value::Str("x".into())])],
//!     },
//! ];
//! let (outcome, findings) = pipeline.run_and_classify(&scenario, Scheduler::RoundRobin);
//! assert!(findings.is_empty(), "nothing to classify on the correct component");
//! assert_eq!(
//!     outcome.results[0][0].returned,
//!     Some(Value::Str("x".into())),
//! );
//!
//! // Table 1, generated from the Figure-1 net.
//! let table = jcc_core::hazop::generate_table(&jcc_core::petri::JavaNet::new(1));
//! assert_eq!(table.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hazop;
pub mod pipeline;
pub mod report;

pub use hazop::{generate_table, DetectionTechnique, TableRow};
pub use pipeline::{
    mutation_study, ArcHeat, MutationStudyConfig, MutationStudyResult, Pipeline, ScheduleEvidence,
};

// The whole workspace, re-exported for downstream users: `jcc_core::vm`,
// `jcc_core::cofg`, … give one-stop access to the substrates.
pub use jcc_analyze as analyze;
pub use jcc_clock as clock;
pub use jcc_cofg as cofg;
pub use jcc_components as components;
pub use jcc_detect as detect;
pub use jcc_javasrc as javasrc;
pub use jcc_model as model;
pub use jcc_obs as obs;
pub use jcc_petri as petri;
pub use jcc_runtime as runtime;
pub use jcc_testgen as testgen;
pub use jcc_vm as vm;
