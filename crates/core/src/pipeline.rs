//! The end-to-end method: component → CoFGs → test sequences →
//! (deterministic) execution → coverage + classified failures; and the
//! mutation study (experiment E5).

use std::collections::BTreeSet;

use jcc_analyze::AnalysisReport;
use jcc_cofg::{build_component_cofgs, Cofg, CoverageTracker};
use jcc_detect::classify::{classify_explore, classify_outcome, Finding};
use jcc_model::mutate::{all_mutants, Mutation};
use jcc_model::validate::{validate, ValidationError};
use jcc_model::Component;
use jcc_petri::{parallel_map, Parallelism};
use jcc_testgen::scenario::{Scenario, ScenarioSpace};
use jcc_testgen::signature::{enumerate_signatures, run_signature, EnumLimits, Signature};
use jcc_testgen::suite::{greedy_cover_suite, random_suite, CoverageSuite, GreedyConfig};
use jcc_vm::{
    compile, explore, timeline_of_outcome, trace::apply_trace, CompiledComponent, ExploreConfig,
    RunConfig, RunOutcome, Scheduler, Vm,
};

/// A prepared component: validated, compiled, with CoFGs built.
#[derive(Debug)]
pub struct Pipeline {
    /// The source model.
    pub component: Component,
    /// The compiled form the VM executes.
    pub compiled: CompiledComponent,
    /// One CoFG per method.
    pub cofgs: Vec<Cofg>,
    /// Static Table-1 analysis of the source model (`jcc-analyze`):
    /// diagnostics the component earns before a single test runs.
    pub analysis: AnalysisReport,
}

impl Pipeline {
    /// Validate, compile and build CoFGs. Returns the validation errors if
    /// the component is not statically well-formed.
    pub fn new(component: Component) -> Result<Self, Vec<ValidationError>> {
        let errors = {
            let _span = jcc_obs::span!("pipeline.validate");
            validate(&component)
        };
        if !errors.is_empty() {
            return Err(errors);
        }
        let compiled = {
            let _span = jcc_obs::span!("pipeline.compile");
            compile(&component).expect("validated components compile")
        };
        let cofgs = {
            let _span = jcc_obs::span!("pipeline.cofg");
            build_component_cofgs(&component)
        };
        let analysis = {
            let _span = jcc_obs::span!("pipeline.analyze");
            jcc_analyze::analyze(&component)
        };
        Ok(Pipeline {
            component,
            compiled,
            cofgs,
            analysis,
        })
    }

    /// Total CoFG arcs across all methods.
    pub fn total_arcs(&self) -> usize {
        self.cofgs.iter().map(|g| g.arcs.len()).sum()
    }

    /// Build the CoFG-directed suite.
    pub fn directed_suite(&self, space: &ScenarioSpace, config: &GreedyConfig) -> CoverageSuite {
        greedy_cover_suite(&self.component, space, config)
    }

    /// Build the undirected random baseline suite.
    pub fn random_suite(&self, space: &ScenarioSpace, seed: u64, count: usize) -> CoverageSuite {
        random_suite(&self.component, space, seed, count)
    }

    /// Run one scenario under a scheduler.
    pub fn run(&self, scenario: &Scenario, scheduler: Scheduler) -> RunOutcome {
        let mut vm = Vm::new(self.compiled.clone(), scenario.clone());
        vm.run(&RunConfig {
            scheduler,
            max_steps: 20_000,
        })
    }

    /// Run one scenario and classify whatever went wrong.
    pub fn run_and_classify(
        &self,
        scenario: &Scenario,
        scheduler: Scheduler,
    ) -> (RunOutcome, Vec<Finding>) {
        let outcome = self.run(scenario, scheduler);
        let findings = classify_outcome(&outcome);
        (outcome, findings)
    }

    /// Exhaustively explore one scenario and classify.
    pub fn explore_and_classify(
        &self,
        scenario: &Scenario,
        config: &ExploreConfig,
    ) -> Vec<Finding> {
        self.explore_evidence(scenario, config, None).findings
    }

    /// Exhaustively explore one scenario and keep the *evidence*, not just
    /// the verdict: the deterministic witness schedule, its causal
    /// timeline (with CoFG arcs stamped on each interval), and per-arc
    /// heat — how often the failing schedule traversed each arc, next to
    /// whether the `directed` suite covered it at all.
    pub fn explore_evidence(
        &self,
        scenario: &Scenario,
        config: &ExploreConfig,
        directed: Option<&CoverageTracker>,
    ) -> ScheduleEvidence {
        let vm = Vm::new(self.compiled.clone(), scenario.clone());
        let result = explore(vm, config, None);
        let findings = classify_explore(&result);
        let witness = result.first_witness().cloned();
        let mut timeline = None;
        let mut arc_heat = Vec::new();
        if let Some(w) = &witness {
            timeline = Some(timeline_of_outcome(w, Some(&self.cofgs)));
            let mut tracker = CoverageTracker::new(self.cofgs.clone());
            apply_trace(&w.trace, &mut tracker);
            for method in tracker.methods() {
                let (hits, cofg) = match (tracker.arc_hits(method), tracker.cofg(method)) {
                    (Some(h), Some(g)) => (h, g),
                    _ => continue,
                };
                for (idx, &count) in hits.iter().enumerate() {
                    arc_heat.push(ArcHeat {
                        method: method.to_string(),
                        arc: cofg.describe_arc(idx),
                        hits: count,
                        directed: directed.is_some_and(|d| d.arc_covered(method, idx)),
                    });
                }
            }
        }
        ScheduleEvidence {
            findings,
            witness,
            timeline,
            arc_heat,
        }
    }
}

/// One CoFG arc's heat in a failing schedule: traversal count in the
/// witness versus coverage by the directed suite. The interesting rows are
/// the hot-but-undirected ones — arcs the failure needs that the suite
/// never exercises.
#[derive(Debug, Clone)]
pub struct ArcHeat {
    /// Method owning the arc.
    pub method: String,
    /// Human-readable arc description (`Cofg::describe_arc`).
    pub arc: String,
    /// How many times the witness schedule traversed the arc.
    pub hits: u64,
    /// Whether the directed suite covered the arc (always `false` when no
    /// suite tracker was supplied).
    pub directed: bool,
}

/// Everything [`Pipeline::explore_evidence`] learns from exploring one
/// scenario: the classified findings plus — when any schedule failed — the
/// deterministic witness, its causal timeline and per-arc heat.
#[derive(Debug)]
pub struct ScheduleEvidence {
    /// Classified Table-1 findings (same as [`Pipeline::explore_and_classify`]).
    pub findings: Vec<Finding>,
    /// The deterministic first witness (deadlock, then fault, then cycle),
    /// or `None` when every schedule completed cleanly.
    pub witness: Option<RunOutcome>,
    /// Causal timeline of the witness schedule, arcs stamped.
    pub timeline: Option<jcc_obs::Timeline>,
    /// Per-arc heat of the witness, one row per CoFG arc.
    pub arc_heat: Vec<ArcHeat>,
}

impl ScheduleEvidence {
    /// Arcs the failing schedule traversed that the directed suite never
    /// covered — the coverage gap the failure exposes.
    pub fn hot_uncovered(&self) -> Vec<&ArcHeat> {
        self.arc_heat
            .iter()
            .filter(|h| h.hits > 0 && !h.directed)
            .collect()
    }
}

/// Configuration of the mutation study.
#[derive(Debug, Clone)]
pub struct MutationStudyConfig {
    /// Greedy-suite construction parameters.
    pub greedy: GreedyConfig,
    /// Size of the random baseline suite (defaults to matching the directed
    /// suite's size when `None`).
    pub random_count: Option<usize>,
    /// Seed for the random baseline.
    pub random_seed: u64,
    /// Limits for exhaustive signature enumeration.
    pub limits: EnumLimits,
    /// Worker threads fanning out the (mutant × scenario) matrix. Each
    /// cell is independent, so results are identical for any thread count;
    /// `threads = 1` runs everything on the calling thread.
    pub parallelism: Parallelism,
}

impl Default for MutationStudyConfig {
    fn default() -> Self {
        MutationStudyConfig {
            greedy: GreedyConfig::default(),
            random_count: None,
            random_seed: 2003,
            limits: EnumLimits {
                max_states: 40_000,
                max_depth: 1_000,
            },
            parallelism: Parallelism::default(),
        }
    }
}

/// Per-mutant result of the study.
#[derive(Debug, Clone)]
pub struct MutantResult {
    /// The mutation applied.
    pub mutation: Mutation,
    /// Detected by the CoFG-directed suite (exhaustive signature-set
    /// comparison against the correct component)?
    pub detected_directed: bool,
    /// Detected by the random baseline (single random schedule per
    /// scenario, same schedule replayed on the correct component)?
    pub detected_random: bool,
}

/// The study's aggregate result.
#[derive(Debug)]
pub struct MutationStudyResult {
    /// Component name.
    pub component: String,
    /// Directed suite size (scenarios).
    pub directed_suite_size: usize,
    /// Directed suite CoFG coverage ratio.
    pub directed_coverage: f64,
    /// Random suite size.
    pub random_suite_size: usize,
    /// Random suite CoFG coverage ratio.
    pub random_coverage: f64,
    /// Per-mutant outcomes.
    pub mutants: Vec<MutantResult>,
}

impl MutationStudyResult {
    /// (detected, total) for the directed suite, over behavioural mutants
    /// only (EF-T1 mutants are behaviourally neutral by design).
    pub fn directed_score(&self) -> (usize, usize) {
        score(&self.mutants, |m| m.detected_directed)
    }

    /// (detected, total) for the random baseline.
    pub fn random_score(&self) -> (usize, usize) {
        score(&self.mutants, |m| m.detected_random)
    }
}

fn score(mutants: &[MutantResult], f: impl Fn(&MutantResult) -> bool) -> (usize, usize) {
    let behavioural: Vec<&MutantResult> = mutants
        .iter()
        .filter(|m| m.mutation.kind.is_behavioural_failure())
        .collect();
    let detected = behavioural.iter().filter(|m| f(m)).count();
    (detected, behavioural.len())
}

/// Run the mutation study on `component` over `space`.
pub fn mutation_study(
    component: &Component,
    space: &ScenarioSpace,
    config: &MutationStudyConfig,
) -> MutationStudyResult {
    let pipeline = Pipeline::new(component.clone()).expect("study needs a valid component");
    let suites_span = jcc_obs::span!("study.suites");
    let directed = pipeline.directed_suite(space, &config.greedy);
    let random_count = config.random_count.unwrap_or(directed.scenarios.len().max(1));
    let random = pipeline.random_suite(space, config.random_seed, random_count);
    drop(suites_span);

    // Reference signatures of the correct component: the full set of
    // behaviours any schedule can produce. A mutant is detected only when
    // it exhibits a behaviour the correct component *never* can — the sound
    // version of "compare with the predicted output" (comparing two single
    // runs would flag legal schedule differences as failures).
    let reference_span = jcc_obs::span!("study.reference");
    let correct_sig_sets: Vec<_> = parallel_map(config.parallelism, &directed.scenarios, |s| {
        enumerate_signatures(Vm::new(pipeline.compiled.clone(), s.clone()), config.limits).0
    });
    // For the random baseline keep the truncation flag: a truncated
    // enumeration is an *incomplete* prediction, and claiming detection
    // against it would count legal-but-unenumerated behaviours as failures.
    let correct_random_sets: Vec<_> = parallel_map(config.parallelism, &random.scenarios, |s| {
        enumerate_signatures(Vm::new(pipeline.compiled.clone(), s.clone()), config.limits)
    });
    drop(reference_span);

    // Fan the mutant matrix across workers: each mutant's row (exhaustive
    // signature enumeration per directed scenario + one replayed random
    // schedule per baseline scenario) is independent of every other row,
    // and `parallel_map` reassembles rows positionally, so the result is
    // identical to the sequential loop for any thread count.
    let all: Vec<_> = all_mutants(component);
    let matrix_span = jcc_obs::span!("study.matrix");
    let mutants: Vec<MutantResult> = parallel_map(config.parallelism, &all, |(mutation, mutant)| {
        let started = jcc_obs::enabled().then(std::time::Instant::now);
        let result = mutant_row(
            mutation,
            mutant,
            config,
            &directed,
            &random,
            &correct_sig_sets,
            &correct_random_sets,
        );
        if let Some(t0) = started {
            jcc_obs::global()
                .histogram("study.mutant_nanos")
                .record(t0.elapsed().as_nanos() as u64);
        }
        result
    });
    drop(matrix_span);
    if jcc_obs::enabled() {
        let reg = jcc_obs::global();
        reg.counter("study.mutants").add(mutants.len() as u64);
        reg.counter("study.detected_directed")
            .add(mutants.iter().filter(|m| m.detected_directed).count() as u64);
        reg.counter("study.detected_random")
            .add(mutants.iter().filter(|m| m.detected_random).count() as u64);
    }

    MutationStudyResult {
        component: component.name.clone(),
        directed_suite_size: directed.scenarios.len(),
        directed_coverage: directed.coverage_ratio(),
        random_suite_size: random.scenarios.len(),
        random_coverage: random.coverage_ratio(),
        mutants,
    }
}

/// One row of the mutation matrix: run `mutant` against the directed suite
/// (exhaustive signature-set comparison) and the random baseline (one
/// replayed schedule per scenario).
fn mutant_row(
    mutation: &Mutation,
    mutant: &Component,
    config: &MutationStudyConfig,
    directed: &CoverageSuite,
    random: &CoverageSuite,
    correct_sig_sets: &[BTreeSet<Signature>],
    correct_random_sets: &[(BTreeSet<Signature>, bool)],
) -> MutantResult {
    let Ok(mutant_compiled) = compile(mutant) else {
        // A mutant that fails to compile is trivially detected.
        return MutantResult {
            mutation: mutation.clone(),
            detected_directed: true,
            detected_random: true,
        };
    };

    let detected_directed = directed.scenarios.iter().zip(correct_sig_sets).any(
        |(scenario, correct)| {
            let (sigs, _) = enumerate_signatures(
                Vm::new(mutant_compiled.clone(), scenario.clone()),
                config.limits,
            );
            sigs != *correct
        },
    );

    let detected_random =
        random
            .scenarios
            .iter()
            .zip(correct_random_sets)
            .enumerate()
            .any(|(i, (scenario, (correct_set, truncated)))| {
                if *truncated {
                    return false; // incomplete prediction: no verdict
                }
                let mut vm = Vm::new(mutant_compiled.clone(), scenario.clone());
                let out = vm.run(&RunConfig {
                    scheduler: Scheduler::Random(
                        config.random_seed.wrapping_add(i as u64),
                    ),
                    max_steps: 20_000,
                });
                !correct_set.contains(&run_signature(&out))
            });

    MutantResult {
        mutation: mutation.clone(),
        detected_directed,
        detected_random,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_model::examples;
    use jcc_vm::{CallSpec, Value};

    fn pc_space() -> ScenarioSpace {
        ScenarioSpace::new(vec![
            CallSpec::new("receive", vec![]),
            CallSpec::new("send", vec![Value::Str("a".into())]),
            CallSpec::new("send", vec![Value::Str("ab".into())]),
        ])
    }

    #[test]
    fn pipeline_builds_for_corpus() {
        for (name, c) in examples::corpus() {
            let p = Pipeline::new(c).unwrap();
            assert!(p.total_arcs() >= 5);
            // The static pass runs as part of preparation and must stay
            // silent at High severity on the correct corpus.
            assert_eq!(
                p.analysis.count(jcc_analyze::Severity::High),
                0,
                "{name}: {}",
                p.analysis.render()
            );
        }
    }

    #[test]
    fn pipeline_rejects_invalid_component() {
        let c = jcc_model::parse_component("class X { fn m() { wait; } }").unwrap();
        assert!(Pipeline::new(c).is_err());
    }

    #[test]
    fn run_and_classify_clean_component() {
        let p = Pipeline::new(examples::producer_consumer()).unwrap();
        let scenario = vec![
            jcc_vm::ThreadSpec {
                name: "c".into(),
                calls: vec![CallSpec::new("receive", vec![])],
            },
            jcc_vm::ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
            },
        ];
        let (outcome, findings) = p.run_and_classify(&scenario, Scheduler::RoundRobin);
        assert!(!outcome.verdict.is_failure());
        assert!(findings.is_empty());
    }

    #[test]
    fn mutation_study_directed_dominates_random() {
        let c = examples::producer_consumer();
        let result = mutation_study(&c, &pc_space(), &MutationStudyConfig::default());
        let (dir_detected, total) = result.directed_score();
        let (rand_detected, _) = result.random_score();
        assert!(total >= 15, "expected many behavioural mutants, got {total}");
        // The directed suite detects every behavioural mutant EXCEPT the
        // notify-for-notifyAll ones, which are *equivalent mutants* in
        // Figure 2's monitor: every method ends by notifying after every
        // state change and waiters re-check their predicate in a loop, so a
        // single FIFO wake-up chain reproduces exactly the behaviours of
        // notifyAll. (In components whose waiters wait on different
        // predicates — e.g. readers–writers — the same mutation IS fatal and
        // detected; see the E5 experiment binary.)
        let undetected: Vec<String> = result
            .mutants
            .iter()
            .filter(|m| m.mutation.kind.is_behavioural_failure() && !m.detected_directed)
            .map(|m| m.mutation.label())
            .collect();
        assert!(
            undetected
                .iter()
                .all(|l| l.contains("notify_instead_of_notify_all")),
            "unexpected undetected mutants: {undetected:?}"
        );
        assert!(dir_detected >= total - 2, "{dir_detected}/{total}");
        // And the directed suite dominates the random baseline.
        assert!(dir_detected >= rand_detected);
        assert!(result.directed_coverage >= result.random_coverage);
    }

    #[test]
    fn directed_suite_detects_if_instead_of_while() {
        // The EF-T5-exposure mutant needs the post-wake-observation goal:
        // arc coverage alone missed it; the strengthened suite must not.
        let c = examples::producer_consumer();
        let result = mutation_study(&c, &pc_space(), &MutationStudyConfig::default());
        for m in &result.mutants {
            if m.mutation.kind == jcc_model::mutate::MutationKind::WaitIfInsteadOfWhile {
                assert!(
                    m.detected_directed,
                    "undetected: {}",
                    m.mutation.label()
                );
            }
        }
    }
}
