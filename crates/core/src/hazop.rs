//! The HAZOP-style deviation analysis of Section 5, generating Table 1.
//!
//! "Following techniques of hazard/safety analysis, failure conditions are
//! identified for each of the transitions … we analyze each transition for
//! two deviations, 1) failure to fire the transition, and 2) erroneous
//! firing of the transition."
//!
//! The generator derives each row's content from *structural facts* about
//! the Figure-1 net rather than hard-coding the table: whether the
//! transition consumes or produces the lock token (place E), whether it is
//! fired by the runtime on the thread's behalf (T2), whether it needs
//! another thread's action (the dashed arc into T5), and which places it
//! connects. Tests then check the generated rows against the paper's
//! wording.

use jcc_petri::{Deviation, FailureClass, JavaNet, Transition, ALL_FAILURE_CLASSES};

/// The detection techniques Table 1's "Testing Notes" column names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DetectionTechnique {
    /// Static analysis of the component source.
    StaticAnalysis,
    /// Model checking (often combined with dynamic analysis).
    ModelChecking,
    /// Dynamic analysis of executions.
    DynamicAnalysis,
    /// The ConAn completion-time check ("check completion time of call").
    CompletionTime,
}

impl DetectionTechnique {
    /// Display string.
    pub fn label(self) -> &'static str {
        match self {
            DetectionTechnique::StaticAnalysis => "static analysis",
            DetectionTechnique::ModelChecking => "model checking",
            DetectionTechnique::DynamicAnalysis => "dynamic analysis",
            DetectionTechnique::CompletionTime => "check completion time of call",
        }
    }
}

/// One generated row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    /// Which failure class the row analyzes.
    pub class: FailureClass,
    /// Possible causes of the failure.
    pub cause: String,
    /// Conditions under which it can occur.
    pub conditions: String,
    /// Consequences.
    pub consequences: String,
    /// Testing notes (how to detect).
    pub testing_notes: String,
    /// Recommended techniques, structured.
    pub detection: Vec<DetectionTechnique>,
    /// False only for EF-T2, which the paper declines to analyze
    /// ("we assume the JVM is implemented correctly").
    pub applicable: bool,
}

/// Generate all ten rows of Table 1 from the model.
pub fn generate_table(net: &JavaNet) -> Vec<TableRow> {
    ALL_FAILURE_CLASSES
        .iter()
        .map(|&class| generate_row(net, class))
        .collect()
}

fn generate_row(net: &JavaNet, class: FailureClass) -> TableRow {
    let t = class.transition;
    // Structural facts.
    let fired_by_runtime = t.fired_by_runtime();
    let needs_other_thread = t.requires_other_thread();
    let takes_lock = t.acquires_lock();
    let gives_lock = t.releases_lock();
    let _ = net; // structure is fully captured by the transition predicates

    match class.deviation {
        Deviation::FailureToFire => {
            // The thread should have changed state but did not.
            let (cause, conditions, consequences) = match t {
                Transition::T1 => (
                    "thread does not access a synchronized block when required".to_string(),
                    "two or more threads access a shared resource".to_string(),
                    "interference (also known as a race condition or data race)".to_string(),
                ),
                Transition::T2 => (
                    "the object lock to be acquired has been acquired by another thread"
                        .to_string(),
                    "another thread has acquired the lock: 1) one thread continuously holds \
                     the lock, or 2) one or more threads repeatedly acquire the lock being \
                     requested"
                        .to_string(),
                    "the thread is permanently suspended".to_string(),
                ),
                Transition::T3 => (
                    "no call to wait is made".to_string(),
                    "thread is required to make a call to wait".to_string(),
                    "program code may erroneously execute in a critical section, or leave \
                     the critical section prematurely"
                        .to_string(),
                ),
                Transition::T4 => (
                    "the thread never releases the object lock, or fires T3 (waits) instead"
                        .to_string(),
                    "thread is in an endless loop, waiting for blocking input that never \
                     arrives, or acquiring an additional lock held by another thread"
                        .to_string(),
                    "thread never completes; other threads may be blocked if they are \
                     waiting for the lock"
                        .to_string(),
                ),
                Transition::T5 => (
                    "thread is not notified".to_string(),
                    "no other thread calls notify whilst this thread is in the wait state \
                     (including: only one thread exists; or notify instead of notifyAll \
                     never selects this thread)"
                        .to_string(),
                    "thread is permanently suspended".to_string(),
                ),
            };
            // Detection derives from the facts: failures visible only as
            // missing state changes of *other* threads need analysis;
            // failures that delay or prevent call completion are caught by
            // the completion-time check.
            let detection = if t == Transition::T1 {
                vec![
                    DetectionTechnique::StaticAnalysis,
                    DetectionTechnique::ModelChecking,
                    DetectionTechnique::DynamicAnalysis,
                ]
            } else if fired_by_runtime {
                vec![
                    DetectionTechnique::StaticAnalysis,
                    DetectionTechnique::DynamicAnalysis,
                ]
            } else {
                vec![DetectionTechnique::CompletionTime]
            };
            TableRow {
                class,
                cause,
                conditions,
                consequences,
                testing_notes: notes_from(&detection),
                detection,
                applicable: true,
            }
        }
        Deviation::ErroneousFiring => {
            if fired_by_runtime {
                // EF-T2: the JVM granting a lock it should not — assumed
                // impossible ("we assume the JVM is implemented correctly").
                return TableRow {
                    class,
                    cause: "not applicable".to_string(),
                    conditions: String::new(),
                    consequences: String::new(),
                    testing_notes: String::new(),
                    detection: Vec::new(),
                    applicable: false,
                };
            }
            let (cause, conditions, consequences) = match t {
                Transition::T1 => (
                    "program logic accesses a critical section unnecessarily".to_string(),
                    "no more than one thread accesses shared resources; the thread is not \
                     required to wait or notify other threads"
                        .to_string(),
                    "unnecessary synchronization (an inefficiency, not a failure)"
                        .to_string(),
                ),
                Transition::T3 => (
                    "program logic makes an erroneous call to wait".to_string(),
                    "a call to wait is not desired".to_string(),
                    format!(
                        "a thread may suspend indefinitely if no other thread exists to \
                         notify it{}",
                        if gives_lock {
                            "; the object lock is released"
                        } else {
                            ""
                        }
                    ),
                ),
                Transition::T4 => (
                    "thread releases the object lock prematurely".to_string(),
                    "leaving a synchronized block too early, reassigning a variable that \
                     was holding an object lock, or firing T4 instead of T3"
                        .to_string(),
                    "thread exits and subsequent statements may access shared resources"
                        .to_string(),
                ),
                Transition::T5 => (
                    "thread is notified before it should be".to_string(),
                    "none".to_string(),
                    "thread prematurely re-enters the critical section".to_string(),
                ),
                Transition::T2 => unreachable!("handled above"),
            };
            let detection = match t {
                Transition::T1 => vec![
                    DetectionTechnique::StaticAnalysis,
                    DetectionTechnique::ModelChecking,
                    DetectionTechnique::DynamicAnalysis,
                ],
                Transition::T4 => vec![
                    DetectionTechnique::StaticAnalysis,
                    DetectionTechnique::CompletionTime,
                ],
                _ => vec![DetectionTechnique::CompletionTime],
            };
            let _ = (needs_other_thread, takes_lock);
            TableRow {
                class,
                cause,
                conditions,
                consequences,
                testing_notes: notes_from(&detection),
                detection,
                applicable: true,
            }
        }
    }
}

fn notes_from(detection: &[DetectionTechnique]) -> String {
    detection
        .iter()
        .map(|d| d.label())
        .collect::<Vec<_>>()
        .join(" / ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_petri::Transition as T;

    fn table() -> Vec<TableRow> {
        generate_table(&JavaNet::new(1))
    }

    fn row(code: &str) -> TableRow {
        table()
            .into_iter()
            .find(|r| r.class.code() == code)
            .unwrap_or_else(|| panic!("missing row {code}"))
    }

    #[test]
    fn ten_rows_in_paper_order() {
        let rows = table();
        assert_eq!(rows.len(), 10);
        let codes: Vec<String> = rows.iter().map(|r| r.class.code()).collect();
        assert_eq!(
            codes,
            vec![
                "FF-T1", "EF-T1", "FF-T2", "EF-T2", "FF-T3", "EF-T3", "FF-T4", "EF-T4",
                "FF-T5", "EF-T5"
            ]
        );
    }

    #[test]
    fn ff_t1_is_interference_detected_statically() {
        let r = row("FF-T1");
        assert!(r.consequences.contains("race condition"));
        assert!(r.conditions.contains("shared resource"));
        assert!(r.detection.contains(&DetectionTechnique::StaticAnalysis));
        assert!(r.detection.contains(&DetectionTechnique::ModelChecking));
    }

    #[test]
    fn ef_t1_is_an_inefficiency() {
        let r = row("EF-T1");
        assert!(r.consequences.contains("Unnecessary synchronization")
            || r.consequences.contains("unnecessary synchronization"));
        assert!(r.applicable);
    }

    #[test]
    fn ff_t2_permanent_suspension_mixed_detection() {
        let r = row("FF-T2");
        assert!(r.consequences.contains("permanently suspended"));
        assert!(r.conditions.contains("continuously holds"));
        assert_eq!(
            r.detection,
            vec![
                DetectionTechnique::StaticAnalysis,
                DetectionTechnique::DynamicAnalysis
            ]
        );
    }

    #[test]
    fn ef_t2_not_applicable() {
        let r = row("EF-T2");
        assert!(!r.applicable);
        assert_eq!(r.cause, "not applicable");
        assert!(r.detection.is_empty());
    }

    #[test]
    fn t3_t4_t5_rows_use_completion_time() {
        for code in ["FF-T3", "EF-T3", "FF-T4", "EF-T4", "FF-T5", "EF-T5"] {
            let r = row(code);
            assert!(
                r.detection.contains(&DetectionTechnique::CompletionTime),
                "{code} should use the completion-time check"
            );
        }
    }

    #[test]
    fn ef_t4_lists_three_premature_release_ways() {
        let r = row("EF-T4");
        assert!(r.conditions.contains("too early"));
        assert!(r.conditions.contains("reassigning"));
        assert!(r.conditions.contains("T4 instead of T3"));
        // EF-T4 additionally gets static analysis, per the paper.
        assert!(r.detection.contains(&DetectionTechnique::StaticAnalysis));
    }

    #[test]
    fn ef_t3_notes_lock_release() {
        // The consequence clause about the lock being released is *derived*
        // from the structural fact that T3 produces a token on E.
        assert!(T::T3.releases_lock());
        let r = row("EF-T3");
        assert!(r.consequences.contains("lock is released"));
    }

    #[test]
    fn ff_t5_covers_the_lost_notify_cases() {
        let r = row("FF-T5");
        assert!(r.conditions.contains("notify"));
        assert!(r.conditions.contains("only one thread"));
        assert!(r.consequences.contains("permanently suspended"));
    }

    #[test]
    fn generated_table_stable() {
        assert_eq!(table(), table());
    }
}
