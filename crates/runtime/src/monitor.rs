//! The Java-style monitor: a reentrant object lock with one wait set,
//! emitting a Figure-1 transition event for every state change.
//!
//! The mapping onto the petri-net model:
//!
//! | operation                   | transitions emitted                      |
//! |-----------------------------|------------------------------------------|
//! | [`JavaMonitor::enter`]      | T1 (request), then T2 once granted       |
//! | [`MonitorGuard::wait`]      | T3 (suspend+release), then T5 on wake-up, then T2 on re-acquisition |
//! | guard drop / final exit     | T4 (release)                             |
//! | [`MonitorGuard::notify`]    | `NotifyIssued` (the woken thread logs its own T5) |
//!
//! Reentrant `enter` while already owning the lock emits no transitions —
//! in the model the thread is already in place C.

use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use jcc_petri::Transition;

use crate::events::{current_thread_id, EventKind, EventLog, MonitorId};

#[derive(Debug)]
struct State<T> {
    owner: Option<u64>,
    hold_count: u32,
    /// Tickets of threads currently in the wait set, in wait order.
    /// Notifications are *ticketed*, not counted: an anonymous permit
    /// counter would let a thread that waits later steal a wake-up issued
    /// to an earlier waiter (a lost wake-up this crate's own test suite
    /// caught). A notified ticket moves to `notified` and is removed from
    /// both sets when its owner leaves the wait.
    wait_set: Vec<u64>,
    /// Tickets whose wake-up has been issued.
    notified: std::collections::BTreeSet<u64>,
    /// Next wait ticket.
    next_ticket: u64,
    data: T,
}

impl<T> State<T> {
    /// Threads in the wait set that have not been notified yet.
    fn unnotified(&self) -> usize {
        self.wait_set.len() - self.notified.len()
    }
}

/// A Java-style monitor protecting `data`.
///
/// All concurrency operations are instrumented: they emit events into the
/// [`EventLog`] the monitor was created with.
#[derive(Debug)]
pub struct JavaMonitor<T> {
    id: MonitorId,
    log: EventLog,
    state: Mutex<State<T>>,
    /// Threads blocked acquiring the lock (model place B).
    entry: Condvar,
    /// Threads in the wait set (model place D).
    waitset: Condvar,
}

impl<T> JavaMonitor<T> {
    /// Create a monitor named `name`, registered in `log`.
    pub fn new(name: impl Into<String>, log: &EventLog, data: T) -> Self {
        let id = log.register_monitor(name);
        JavaMonitor {
            id,
            log: log.clone(),
            state: Mutex::new(State {
                owner: None,
                hold_count: 0,
                wait_set: Vec::new(),
                notified: std::collections::BTreeSet::new(),
                next_ticket: 0,
                data,
            }),
            entry: Condvar::new(),
            waitset: Condvar::new(),
        }
    }

    /// This monitor's id in the event log.
    pub fn id(&self) -> MonitorId {
        self.id
    }

    /// The event log this monitor reports to.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Enter the monitor (Java: start of a `synchronized` region), blocking
    /// until the lock is granted. Reentrant.
    pub fn enter(&self) -> MonitorGuard<'_, T> {
        let me = current_thread_id();
        let mut s = self.state.lock();
        if s.owner == Some(me) {
            s.hold_count += 1;
            return MonitorGuard { monitor: self };
        }
        self.log.transition(self.id, Transition::T1);
        while s.owner.is_some() {
            self.entry.wait(&mut s);
        }
        s.owner = Some(me);
        s.hold_count = 1;
        self.log.transition(self.id, Transition::T2);
        MonitorGuard { monitor: self }
    }

    /// Try to enter without blocking; `None` if another thread owns the
    /// lock. Emits T1/T2 only on success.
    pub fn try_enter(&self) -> Option<MonitorGuard<'_, T>> {
        let me = current_thread_id();
        let mut s = self.state.lock();
        if s.owner == Some(me) {
            s.hold_count += 1;
            return Some(MonitorGuard { monitor: self });
        }
        if s.owner.is_some() {
            return None;
        }
        self.log.transition(self.id, Transition::T1);
        s.owner = Some(me);
        s.hold_count = 1;
        self.log.transition(self.id, Transition::T2);
        Some(MonitorGuard { monitor: self })
    }

    /// Read `data` *without* holding the lock — deliberately racy, for
    /// FF-T1 (interference) experiments. Logs a `Read` event with an empty
    /// lockset context.
    pub fn unsync_read<R>(&self, var: &str, f: impl FnOnce(&T) -> R) -> R {
        self.log.log(self.id, EventKind::Read { var: var.to_string() });
        let s = self.state.lock();
        f(&s.data)
    }

    /// Write `data` *without* holding the lock — deliberately racy, for
    /// FF-T1 experiments.
    pub fn unsync_write<R>(&self, var: &str, f: impl FnOnce(&mut T) -> R) -> R {
        self.log.log(self.id, EventKind::Write { var: var.to_string() });
        let mut s = self.state.lock();
        f(&mut s.data)
    }

    fn exit(&self) {
        let me = current_thread_id();
        let mut s = self.state.lock();
        assert_eq!(s.owner, Some(me), "exit by non-owner");
        s.hold_count -= 1;
        if s.hold_count == 0 {
            s.owner = None;
            self.log.transition(self.id, Transition::T4);
            self.entry.notify_one();
        }
    }
}

/// An entered monitor. Dropping it leaves the synchronized region
/// (emitting T4 when the outermost hold is released).
#[derive(Debug)]
pub struct MonitorGuard<'a, T> {
    monitor: &'a JavaMonitor<T>,
}

impl<T> MonitorGuard<'_, T> {
    /// Access the protected data immutably, logging a `Read` of `var`.
    pub fn read<R>(&self, var: &str, f: impl FnOnce(&T) -> R) -> R {
        let m = self.monitor;
        m.log.log(m.id, EventKind::Read { var: var.to_string() });
        let s = m.state.lock();
        debug_assert_eq!(s.owner, Some(current_thread_id()));
        f(&s.data)
    }

    /// Access the protected data mutably, logging a `Write` of `var`.
    pub fn write<R>(&self, var: &str, f: impl FnOnce(&mut T) -> R) -> R {
        let m = self.monitor;
        m.log.log(m.id, EventKind::Write { var: var.to_string() });
        let mut s = m.state.lock();
        debug_assert_eq!(s.owner, Some(current_thread_id()));
        f(&mut s.data)
    }

    /// Access without logging (for bookkeeping the detectors should not see).
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut s = self.monitor.state.lock();
        f(&mut s.data)
    }

    /// Java `wait()`: release the lock, join the wait set, and on
    /// notification re-acquire the lock. Emits T3, then T5 + T2.
    ///
    /// Panics if the guard is held reentrantly (`wait` inside a nested
    /// `synchronized (this)` would need to release all holds; Java releases
    /// only the waited monitor once per `wait`, and this runtime keeps the
    /// stricter rule to surface suspect designs early).
    pub fn wait(&self) {
        self.wait_internal(None);
    }

    /// Like [`wait`](Self::wait) but gives up after `timeout` of real time
    /// (Java's `wait(long)`); returns `true` if notified, `false` on
    /// timeout. Either way the lock is re-acquired before returning.
    pub fn wait_for(&self, timeout: Duration) -> bool {
        self.wait_internal(Some(timeout))
    }

    fn wait_internal(&self, timeout: Option<Duration>) -> bool {
        let m = self.monitor;
        let me = current_thread_id();
        let mut s = m.state.lock();
        assert_eq!(s.owner, Some(me), "wait by non-owner");
        assert_eq!(
            s.hold_count, 1,
            "wait while holding the monitor reentrantly"
        );
        // T3: suspend and release the lock.
        s.owner = None;
        s.hold_count = 0;
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        s.wait_set.push(ticket);
        m.log.transition(m.id, Transition::T3);
        m.entry.notify_one();

        let deadline = timeout.map(|t| Instant::now() + t);
        let mut notified = true;
        while !s.notified.contains(&ticket) {
            match deadline {
                None => m.waitset.wait(&mut s),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d || m.waitset.wait_until(&mut s, d).timed_out() {
                        notified = s.notified.contains(&ticket);
                        break;
                    }
                }
            }
        }
        s.notified.remove(&ticket);
        if let Some(pos) = s.wait_set.iter().position(|&t| t == ticket) {
            s.wait_set.remove(pos);
        }
        // T5: woken (or timed out) — back to requesting the lock.
        m.log.transition(m.id, Transition::T5);
        while s.owner.is_some() {
            m.entry.wait(&mut s);
        }
        s.owner = Some(me);
        s.hold_count = 1;
        m.log.transition(m.id, Transition::T2);
        notified
    }

    /// Java `notify()`: wake one arbitrary waiter (no-op if none).
    pub fn notify(&self) {
        let m = self.monitor;
        let mut s = m.state.lock();
        assert_eq!(s.owner, Some(current_thread_id()), "notify by non-owner");
        let waiters = s.unnotified();
        m.log.log(
            m.id,
            EventKind::NotifyIssued {
                all: false,
                waiters,
            },
        );
        // Wake the longest-waiting un-notified ticket (Java may pick any;
        // FIFO keeps runs reproducible). Wake-ups are ticketed, so a later
        // waiter can never consume this one.
        let target = s
            .wait_set
            .iter()
            .copied()
            .find(|t| !s.notified.contains(t));
        if let Some(t) = target {
            s.notified.insert(t);
            m.waitset.notify_all();
        }
    }

    /// Java `notifyAll()`: wake every waiter.
    pub fn notify_all(&self) {
        let m = self.monitor;
        let mut s = m.state.lock();
        assert_eq!(
            s.owner,
            Some(current_thread_id()),
            "notifyAll by non-owner"
        );
        let waiters = s.unnotified();
        m.log.log(m.id, EventKind::NotifyIssued { all: true, waiters });
        let all: Vec<u64> = s.wait_set.clone();
        s.notified.extend(all);
        m.waitset.notify_all();
    }

    /// Wait until `pred` over the protected data holds (re-checking after
    /// every wake-up — the while-loop idiom the paper's Figure 2 uses).
    pub fn wait_while(&self, mut blocked_when: impl FnMut(&T) -> bool) {
        loop {
            let blocked = {
                let s = self.monitor.state.lock();
                blocked_when(&s.data)
            };
            if !blocked {
                return;
            }
            self.wait();
        }
    }
}

impl<T> Drop for MonitorGuard<'_, T> {
    fn drop(&mut self) {
        self.monitor.exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_petri::Transition as T;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn enter_exit_emits_t1_t2_t4() {
        let log = EventLog::new();
        let m = JavaMonitor::new("m", &log, 0u32);
        {
            let g = m.enter();
            g.write("v", |d| *d = 1);
        }
        let kinds: Vec<_> = log
            .snapshot()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Transition(t) => Some(t),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![T::T1, T::T2, T::T4]);
    }

    #[test]
    fn reentrant_enter_emits_once() {
        let log = EventLog::new();
        let m = JavaMonitor::new("m", &log, ());
        {
            let _g1 = m.enter();
            let _g2 = m.enter();
            let _g3 = m.enter();
        }
        assert_eq!(log.count_transition(T::T1), 1);
        assert_eq!(log.count_transition(T::T2), 1);
        assert_eq!(log.count_transition(T::T4), 1);
    }

    #[test]
    fn try_enter_fails_when_contended() {
        let log = EventLog::new();
        let m = Arc::new(JavaMonitor::new("m", &log, ()));
        let g = m.enter();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || m2.try_enter().is_none());
        assert!(h.join().unwrap());
        drop(g);
        assert!(m.try_enter().is_some());
    }

    #[test]
    fn wait_releases_and_notify_wakes() {
        let log = EventLog::new();
        let m = Arc::new(JavaMonitor::new("buf", &log, Option::<i32>::None));
        let m2 = Arc::clone(&m);
        let consumer = thread::spawn(move || {
            let g = m2.enter();
            g.wait_while(|d| d.is_none());
            g.with(|d| d.take().unwrap())
        });
        // Let the consumer block.
        thread::sleep(Duration::from_millis(20));
        {
            let g = m.enter();
            g.with(|d| *d = Some(7));
            g.notify();
        }
        assert_eq!(consumer.join().unwrap(), 7);
        // The consumer fired T3 then T5 then T2.
        assert!(log.count_transition(T::T3) >= 1);
        assert!(log.count_transition(T::T5) >= 1);
    }

    #[test]
    fn notify_with_no_waiters_is_lost() {
        let log = EventLog::new();
        let m = Arc::new(JavaMonitor::new("m", &log, false));
        {
            let g = m.enter();
            g.notify(); // lost: nobody waits
        }
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            let g = m2.enter();
            // The earlier notify must NOT satisfy this wait.
            g.wait_for(Duration::from_millis(40))
        });
        assert!(!h.join().unwrap(), "pre-wait notify must be lost");
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let log = EventLog::new();
        let m = Arc::new(JavaMonitor::new("m", &log, false));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let g = m.enter();
                    g.wait_while(|&ready| !ready);
                    true
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(30));
        {
            let g = m.enter();
            g.with(|d| *d = true);
            g.notify_all();
        }
        for h in handles {
            assert!(h.join().unwrap());
        }
        let waiters_seen = log.snapshot().iter().any(|e| {
            matches!(e.kind, EventKind::NotifyIssued { all: true, waiters } if waiters == 4)
        });
        assert!(waiters_seen, "notifyAll should have seen 4 waiters");
    }

    #[test]
    fn single_notify_wakes_exactly_one() {
        let log = EventLog::new();
        let m = Arc::new(JavaMonitor::new("m", &log, 0usize));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let g = m.enter();
                    let woke = g.wait_for(Duration::from_millis(120));
                    if woke {
                        g.with(|d| *d += 1);
                    }
                    woke
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(30));
        {
            let g = m.enter();
            g.notify();
        }
        let woken: usize = handles
            .into_iter()
            .map(|h| usize::from(h.join().unwrap()))
            .sum();
        assert_eq!(woken, 1, "notify must wake exactly one of three waiters");
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let log = EventLog::new();
        let m = Arc::new(JavaMonitor::new("ctr", &log, (0i64, false)));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..100 {
                        let g = m.enter();
                        g.with(|d| {
                            assert!(!d.1, "two threads inside the monitor");
                            d.1 = true;
                            d.0 += 1;
                            d.1 = false;
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let g = m.enter();
        assert_eq!(g.with(|d| d.0), 800);
    }

    #[test]
    fn wait_timeout_reacquires_lock() {
        let log = EventLog::new();
        let m = JavaMonitor::new("m", &log, 5u8);
        let g = m.enter();
        let notified = g.wait_for(Duration::from_millis(10));
        assert!(!notified);
        // Still owner: data accessible, and a further exit works.
        assert_eq!(g.with(|d| *d), 5);
    }

    #[test]
    fn unsync_access_logs_reads_and_writes() {
        let log = EventLog::new();
        let m = JavaMonitor::new("m", &log, 1u32);
        m.unsync_write("v", |d| *d = 2);
        assert_eq!(m.unsync_read("v", |d| *d), 2);
        let events = log.snapshot();
        assert!(matches!(events[0].kind, EventKind::Write { ref var } if var == "v"));
        assert!(matches!(events[1].kind, EventKind::Read { ref var } if var == "v"));
    }
}
