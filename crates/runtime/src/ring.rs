//! Fixed-size lock-free SPSC rings — the capture substrate behind
//! [`EventLog`](crate::EventLog).
//!
//! One ring per (instrumented OS thread, log): the owning thread is the
//! only producer, the log's collector is the only consumer, so the ring
//! needs no shared lock and no CAS loop — a producer publishes a whole
//! record with one release-store of `tail`, a consumer retires it with one
//! release-store of `head`. The crate is `#![forbid(unsafe_code)]`, so
//! slots are `AtomicU64` words rather than an `UnsafeCell` byte buffer;
//! records are encoded as word sequences by the capture layer
//! (`events.rs`).
//!
//! **The no-block producer contract**: [`SpscRing::try_push`] either
//! publishes the whole record or returns `false` immediately — it never
//! spins, never waits for the consumer, and never allocates. On `false`
//! the capture layer bumps the ring's drop counter and moves on; a
//! `CaptureGap` record is injected once space frees up, so the drained
//! stream stays honest about what is missing.
//!
//! Record framing is part of the ring contract: every record starts with a
//! header word whose bits [`EXTRA_SHIFT`]`..`[`EXTRA_SHIFT`]`+16` give the
//! number of payload words following the [`HEADER_WORDS`]-word prefix.
//! Because a record becomes visible only via the producer's single `tail`
//! store, the consumer always sees whole records.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed prefix of every record: header, stamp, thread, monitor.
pub const HEADER_WORDS: usize = 4;

/// Bit offset of the 16-bit "extra payload words" field in the header word.
pub const EXTRA_SHIFT: u32 = 32;

/// Smallest ring we will allocate (words); tiny rings are only useful in
/// drop-path tests.
pub const MIN_CAPACITY_WORDS: usize = 16;

/// Default per-producer ring capacity in words (16384 words = 128 KiB; a
/// transition record is [`HEADER_WORDS`] words, so ≈ 4096 events of
/// headroom per thread between collector visits).
pub const DEFAULT_CAPACITY_WORDS: usize = 1 << 14;

/// A single-producer single-consumer ring of `u64` words.
///
/// `head`/`tail` are monotonically increasing word counts (never wrapped);
/// slot indices are `cursor & mask`. With 64-bit cursors, overflow is not
/// a practical concern.
#[derive(Debug)]
pub struct SpscRing {
    slots: Box<[AtomicU64]>,
    mask: u64,
    /// Words consumed (written by the consumer, read by the producer).
    head: AtomicU64,
    /// Words published (written by the producer, read by the consumer).
    tail: AtomicU64,
    /// Events dropped because the ring was full (producer-side, monotone).
    dropped: AtomicU64,
    /// High-water mark of occupied words, maintained by the producer.
    occupancy_hwm: AtomicU64,
}

impl SpscRing {
    /// A ring with at least `capacity` words (rounded up to a power of
    /// two, floored at [`MIN_CAPACITY_WORDS`]).
    pub fn with_capacity_words(capacity: usize) -> Self {
        let cap = capacity.max(MIN_CAPACITY_WORDS).next_power_of_two();
        let slots: Vec<AtomicU64> = (0..cap).map(|_| AtomicU64::new(0)).collect();
        SpscRing {
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            occupancy_hwm: AtomicU64::new(0),
        }
    }

    /// Total capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.slots.len()
    }

    /// Producer: publish one whole record, or fail without blocking.
    ///
    /// Only the owning thread may call this. Returns `false` when the
    /// record does not fit in the free space right now (the caller should
    /// [`note_drop`](Self::note_drop)).
    pub fn try_push(&self, words: &[u64]) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        let used = tail - head;
        if self.slots.len() as u64 - used < words.len() as u64 {
            return false;
        }
        for (i, &w) in words.iter().enumerate() {
            self.slots[((tail + i as u64) & self.mask) as usize].store(w, Ordering::Relaxed);
        }
        // The release store is the publication point: a consumer that
        // acquire-loads this tail value sees every slot store above.
        self.tail.store(tail + words.len() as u64, Ordering::Release);
        let used_after = used + words.len() as u64;
        if used_after > self.occupancy_hwm.load(Ordering::Relaxed) {
            self.occupancy_hwm.store(used_after, Ordering::Relaxed);
        }
        true
    }

    /// Producer: record that one event was discarded because the ring was
    /// full.
    pub fn note_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Events dropped on this ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// High-water mark of occupied words.
    pub fn occupancy_hwm(&self) -> u64 {
        self.occupancy_hwm.load(Ordering::Relaxed)
    }

    /// Words currently occupied (consumer view; approximate while the
    /// producer is live).
    pub fn len_words(&self) -> u64 {
        self.tail.load(Ordering::Acquire) - self.head.load(Ordering::Acquire)
    }

    /// Consumer: pop the next whole record into `buf`. Returns `false`
    /// when the ring is empty. Only one consumer may drain a ring at a
    /// time (the log's collector serializes on its own lock).
    pub fn pop_record(&self, buf: &mut Vec<u64>) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return false;
        }
        let header = self.slots[(head & self.mask) as usize].load(Ordering::Relaxed);
        let extra = (header >> EXTRA_SHIFT) & 0xffff;
        let len = HEADER_WORDS as u64 + extra;
        debug_assert!(tail - head >= len, "partial record published");
        buf.clear();
        for i in 0..len {
            buf.push(self.slots[((head + i) & self.mask) as usize].load(Ordering::Relaxed));
        }
        // Release so the producer's subsequent acquire-load of `head` sees
        // the slots as reusable only after we finished reading them.
        self.head.store(head + len, Ordering::Release);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(extra: u64) -> u64 {
        extra << EXTRA_SHIFT
    }

    #[test]
    fn push_pop_roundtrip() {
        let r = SpscRing::with_capacity_words(64);
        assert!(r.try_push(&[header(1), 10, 1, 0, 99]));
        assert!(r.try_push(&[header(0), 11, 2, 0]));
        let mut buf = Vec::new();
        assert!(r.pop_record(&mut buf));
        assert_eq!(buf, vec![header(1), 10, 1, 0, 99]);
        assert!(r.pop_record(&mut buf));
        assert_eq!(buf, vec![header(0), 11, 2, 0]);
        assert!(!r.pop_record(&mut buf));
    }

    #[test]
    fn full_ring_rejects_without_blocking() {
        let r = SpscRing::with_capacity_words(MIN_CAPACITY_WORDS);
        // 16 words = four 4-word records.
        for _ in 0..4 {
            assert!(r.try_push(&[header(0), 0, 0, 0]));
        }
        assert!(!r.try_push(&[header(0), 0, 0, 0]));
        r.note_drop();
        assert_eq!(r.dropped(), 1);
        // Draining one record frees exactly one record's space.
        let mut buf = Vec::new();
        assert!(r.pop_record(&mut buf));
        assert!(r.try_push(&[header(0), 7, 7, 7]));
        assert_eq!(r.occupancy_hwm(), 16);
    }

    #[test]
    fn wraparound_preserves_records() {
        let r = SpscRing::with_capacity_words(MIN_CAPACITY_WORDS);
        let mut buf = Vec::new();
        // 5-word records against a 16-word ring force index wraparound.
        for i in 0..50u64 {
            assert!(r.try_push(&[header(1), i, 1, 0, i * i]));
            assert!(r.pop_record(&mut buf));
            assert_eq!(buf, vec![header(1), i, 1, 0, i * i]);
        }
        assert_eq!(r.len_words(), 0);
    }

    #[test]
    fn concurrent_producer_consumer_loses_nothing() {
        use std::sync::Arc;
        let r = Arc::new(SpscRing::with_capacity_words(1 << 10));
        let p = Arc::clone(&r);
        let n = 20_000u64;
        let producer = std::thread::spawn(move || {
            let mut pushed = 0u64;
            let mut i = 0u64;
            while pushed < n {
                if p.try_push(&[header(1), i, 1, 0, i]) {
                    pushed += 1;
                    i += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        let mut buf = Vec::new();
        let mut expect = 0u64;
        while expect < n {
            if r.pop_record(&mut buf) {
                assert_eq!(buf[1], expect, "records must arrive in order");
                assert_eq!(buf[4], expect);
                expect += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(r.dropped(), 0);
    }
}
