//! # jcc-runtime — an instrumented Java-style monitor for native threads
//!
//! Rust's `Mutex`/`Condvar` differ from the Java monitor model in three ways
//! that matter to the paper: Java object locks are *reentrant*, every object
//! has exactly *one* wait set, and `wait`/`notify`/`notifyAll` are methods
//! of the locked object itself. [`JavaMonitor`] restores those semantics on
//! top of `parking_lot` (owner/hold-count bookkeeping, a single logical wait
//! set, monitor-method API) and emits a [`Transition`](jcc_petri::Transition)
//! event for every T1–T5 firing of the paper's Figure-1 model, into a shared
//! [`EventLog`] that the detectors (`jcc-detect`) and coverage tracking
//! (`jcc-cofg`) consume.
//!
//! The log also accepts *data-access* events (for the Eraser-style lockset
//! race detector) and *method/statement markers* (for CoFG arc coverage).

//! # Example
//!
//! ```
//! use jcc_runtime::{EventLog, JavaMonitor};
//! use std::sync::Arc;
//!
//! let log = EventLog::new();
//! let slot = Arc::new(JavaMonitor::new("slot", &log, None::<i32>));
//!
//! let consumer = {
//!     let slot = Arc::clone(&slot);
//!     std::thread::spawn(move || {
//!         let guard = slot.enter();
//!         guard.wait_while(|v| v.is_none()); // the Figure-2 idiom
//!         guard.with(|v| v.take().unwrap())
//!     })
//! };
//! {
//!     let guard = slot.enter();
//!     guard.with(|v| *v = Some(7));
//!     guard.notify_all();
//! }
//! assert_eq!(consumer.join().unwrap(), 7);
//! // Every T1–T5 firing was logged for the detectors:
//! assert!(log.count_transition(jcc_petri::Transition::T3) <= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod live;
pub mod monitor;
pub mod online;
pub mod ring;

pub use events::{current_thread_id, Event, EventKind, EventLog, MonitorId};
pub use live::LiveTimeline;
pub use monitor::{JavaMonitor, MonitorGuard};
pub use online::{OnlineAlert, OnlineFinding, OnlineMonitor};
pub use ring::SpscRing;
