//! Alert-fed live timelines: build the causal schedule timeline *while the
//! run is still going*, with online-monitor alerts stamped into it as typed
//! notes the moment they fire.
//!
//! [`EventLog::timeline`] is a post-hoc read: snapshot the log, translate
//! every event through the Figure-1 verb table, render. [`LiveTimeline`] is
//! the same translation applied incrementally — feed it each drained event
//! and it grows the in-flight [`Timeline`](jcc_obs::timeline::Timeline) one
//! event at a time, runs an [`OnlineMonitor`] alongside, and appends every
//! [`OnlineAlert`] as a note on the triggering thread's lane at the
//! triggering event's clock value.
//!
//! The translation is byte-compatible with the post-hoc path: on a no-drop
//! stream with no alerts, [`LiveTimeline::finish`] renders byte-identically
//! to [`EventLog::timeline`] (same lanes, same intervals, same edges, same
//! notes). Lane allocation is first-sight order, which equals the post-hoc
//! pre-pass's first-event order, so lane indices agree too. When alerts do
//! fire, the live timeline is the post-hoc one plus the alert notes — and
//! feeding the same events in one batch ([`LiveTimeline::from_log`])
//! produces the identical document, so "watched live" and "replayed later"
//! tell the same story.

use std::collections::HashMap;

use jcc_obs::timeline::{Timeline, TimelineBuilder};

use crate::events::{Event, EventKind, EventLog};
use crate::online::OnlineMonitor;
use jcc_petri::Transition;

/// An incrementally-built causal timeline with online alerts stamped in as
/// they fire. See the module docs.
#[derive(Debug)]
pub struct LiveTimeline {
    builder: TimelineBuilder,
    monitor: OnlineMonitor,
    /// thread id → lane index, allocated on first sight (first-event order).
    lanes: HashMap<u64, usize>,
    /// How many of the monitor's alerts have already been stamped.
    stamped: usize,
    /// Events observed so far — the finished timeline's horizon.
    events_seen: u64,
}

impl Default for LiveTimeline {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveTimeline {
    /// A fresh live timeline (clock: `"events"`, like the post-hoc path).
    pub fn new() -> Self {
        LiveTimeline {
            builder: TimelineBuilder::new("events"),
            monitor: OnlineMonitor::new(),
            lanes: HashMap::new(),
            stamped: 0,
            events_seen: 0,
        }
    }

    /// Replay convenience: feed every retained event of `log` in one batch.
    /// Byte-equivalent to observing the same events one at a time.
    pub fn from_log(log: &EventLog) -> Self {
        let mut live = LiveTimeline::new();
        for e in log.snapshot() {
            live.observe(log, &e);
        }
        live
    }

    /// Feed one drained event: translate it into the timeline (the exact
    /// [`EventLog::timeline`] verb table), run the online monitor on it,
    /// and stamp any alert it raised as a note at the event's clock value.
    /// `log` resolves monitor display names; pass the log the event came
    /// from.
    pub fn observe(&mut self, log: &EventLog, e: &Event) {
        self.events_seen += 1;
        let lane = match self.lanes.get(&e.thread) {
            Some(&lane) => lane,
            None => {
                let lane = self.builder.lane(&format!("thread-{}", e.thread));
                self.lanes.insert(e.thread, lane);
                lane
            }
        };
        let at = e.seq;
        let monitor = log.monitor_name(e.monitor);
        match &e.kind {
            EventKind::Transition(Transition::T1) => self.builder.requests(lane, at, &monitor),
            EventKind::Transition(Transition::T2) => self.builder.acquires(lane, at, &monitor),
            EventKind::Transition(Transition::T3) => self.builder.waits(lane, at, &monitor),
            EventKind::Transition(Transition::T4) => self.builder.releases(lane, at, &monitor),
            EventKind::Transition(Transition::T5) => self.builder.woken(lane, at, &monitor),
            EventKind::NotifyIssued { all, waiters } => {
                self.builder.notify(lane, at, &monitor, *all, *waiters);
            }
            EventKind::MethodStart { .. } => self.builder.begins(lane, at),
            EventKind::MethodEnd { .. } => self.builder.idles(lane, at),
            EventKind::Read { .. }
            | EventKind::Write { .. }
            | EventKind::Marker { .. }
            | EventKind::CaptureGap { .. } => {}
        }
        self.monitor.observe(e);
        // Stamp anything the monitor just raised. Alerts carry the seq of
        // the triggering event — this event — so the note lands on this
        // lane at `at`, in raise order.
        let alerts = self.monitor.alerts();
        while self.stamped < alerts.len() {
            let a = &alerts[self.stamped];
            self.builder
                .note(lane, a.seq, &format!("ALERT {}", a.finding));
            self.stamped += 1;
        }
    }

    /// The online monitor running alongside (alerts, verdicts, tallies).
    pub fn monitor(&self) -> &OnlineMonitor {
        &self.monitor
    }

    /// How many alerts have been stamped into the timeline so far.
    pub fn alerts_stamped(&self) -> usize {
        self.stamped
    }

    /// Events observed so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Close every lane and return the finished timeline. The horizon is
    /// the number of observed events — the post-hoc path's
    /// `events.len()`.
    pub fn finish(self) -> Timeline {
        self.builder.finish(self.events_seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::MonitorId;
    use jcc_petri::Transition as T;

    /// A clean handoff: two threads take the same lock in turn. No races,
    /// no cycles, no notifications — the online monitor stays silent.
    fn quiet_handoff(log: &EventLog) {
        let m = log.register_monitor("slot");
        log.log_as(1, m, EventKind::Transition(T::T1));
        log.log_as(1, m, EventKind::Transition(T::T2));
        log.log_as(1, m, EventKind::Transition(T::T4));
        log.log_as(2, m, EventKind::Transition(T::T1));
        log.log_as(2, m, EventKind::Transition(T::T2));
        log.log_as(2, m, EventKind::Transition(T::T4));
    }

    /// The FF-T5 walkthrough: the opener notifies into an empty wait set,
    /// then the passer waits forever (the losing Gate schedule).
    fn gate_walkthrough(log: &EventLog) {
        let gate = log.register_monitor("gate");
        log.log_as(2, gate, EventKind::Transition(T::T2));
        log.log_as(
            2,
            gate,
            EventKind::Write {
                var: "open".to_string(),
            },
        );
        log.log_as(2, gate, EventKind::NotifyIssued { all: false, waiters: 0 });
        log.log_as(2, gate, EventKind::Transition(T::T4));
        log.log_as(1, gate, EventKind::Transition(T::T2));
        log.log_as(1, gate, EventKind::Transition(T::T3));
    }

    #[test]
    fn quiet_stream_byte_matches_the_posthoc_timeline() {
        let log = EventLog::new();
        quiet_handoff(&log);
        let mut live = LiveTimeline::new();
        for e in log.snapshot() {
            live.observe(&log, &e);
        }
        assert_eq!(live.alerts_stamped(), 0, "handoff raises no alerts");
        let live_t = live.finish();
        let posthoc = log.timeline();
        assert_eq!(live_t, posthoc);
        assert_eq!(live_t.render_ascii(), posthoc.render_ascii());
        assert_eq!(live_t.to_chrome_string(), posthoc.to_chrome_string());
    }

    #[test]
    fn incremental_and_batch_builds_are_byte_identical() {
        let log = EventLog::new();
        gate_walkthrough(&log);
        let mut incremental = LiveTimeline::new();
        for e in log.snapshot() {
            incremental.observe(&log, &e);
        }
        let batch = LiveTimeline::from_log(&log);
        assert_eq!(incremental.alerts_stamped(), batch.alerts_stamped());
        let a = incremental.finish();
        let b = batch.finish();
        assert_eq!(a, b);
        assert_eq!(a.render_ascii(), b.render_ascii());
        assert_eq!(a.to_chrome_string(), b.to_chrome_string());
    }

    #[test]
    fn gate_alert_is_stamped_at_the_notify_event() {
        let log = EventLog::new();
        gate_walkthrough(&log);
        let live = LiveTimeline::from_log(&log);
        assert!(live.alerts_stamped() >= 1, "FF-T5 fires mid-run");
        let events = log.snapshot();
        let notify_seq = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::NotifyIssued { .. }))
            .unwrap()
            .seq;
        let t = live.finish();
        let alert_note = t
            .notes
            .iter()
            .find(|n| n.text.starts_with("ALERT FF-T5"))
            .expect("the lost notification is stamped as a note");
        assert_eq!(alert_note.at, notify_seq);
        // The note sits on the opener's lane (thread 2 logged first → lane 0).
        assert_eq!(t.lanes[alert_note.lane].name, "thread-2");
        // The live timeline is the post-hoc one plus alert notes: the
        // builder's own lost-notification note is still there too.
        assert!(t
            .notes
            .iter()
            .any(|n| n.text.contains("lost notification")));
    }

    #[test]
    fn live_monitor_verdicts_match_a_standalone_monitor() {
        let log = EventLog::new();
        gate_walkthrough(&log);
        let live = LiveTimeline::from_log(&log);
        let mut standalone = OnlineMonitor::new();
        standalone.observe_all(&log.snapshot());
        assert_eq!(live.monitor().verdicts(), standalone.verdicts());
        assert_eq!(live.events_seen(), standalone.events_seen());
    }

    #[test]
    fn monitorless_events_resolve_the_none_name() {
        let log = EventLog::new();
        log.log_as(
            1,
            MonitorId(0),
            EventKind::Marker {
                method: "m".into(),
                path: vec![0],
            },
        );
        let live = LiveTimeline::from_log(&log);
        let t = live.finish();
        assert_eq!(t.lanes.len(), 1, "markers still allocate the lane");
        assert_eq!(t.horizon, 1);
    }
}
