//! Online (streaming) detectors: incremental lockset, lock-order and
//! lost-notification analysis over the live event stream.
//!
//! Where `jcc-detect` runs post-hoc over a full snapshot, an
//! [`OnlineMonitor`] consumes events *as they are drained* (e.g. from
//! [`EventLog::drain_for_each`](crate::EventLog::drain_for_each)) and can
//! raise [`OnlineAlert`]s mid-run, at the event that completes the
//! evidence. The algorithms are ports of the detectors the paper cites —
//! Eraser locksets (FF-T1), the lock-order graph (FF-T2) and the
//! lost-notification shape (FF-T5) — consuming runtime events directly
//! under the same normalization `jcc-detect` uses (`T2` acquires, `T3`/`T4`
//! release, `Read`/`Write` access).
//!
//! # The differential guarantee
//!
//! On a fully-sampled, no-drop stream, [`OnlineMonitor::verdicts`]
//! byte-matches the post-hoc reference `jcc_detect::classify_runtime_events`
//! (same findings, same evidence strings, same order) — pinned by the
//! `online_monitor` integration suite over every zoo component.
//!
//! # Degraded mode (capture gaps)
//!
//! Rings are per-thread, so a [`CaptureGap`](crate::EventKind::CaptureGap)
//! from thread *t* means only *t*'s stream has holes — every other
//! thread's stream is still complete. On a gap the monitor:
//!
//! * permanently excludes *t*'s later data accesses from lockset analysis
//!   (an under-approximated held-set could otherwise empty a candidate
//!   set and fabricate a race), and
//! * clears *t*'s held-lock stack; post-gap nesting is rebuilt only from
//!   observed acquires, so every lock-order edge still corresponds to a
//!   real nesting (missing edges only *shrink* cycles).
//!
//! The result is the subset guarantee: degraded verdicts never introduce a
//! false subject — every reported race variable is racy on the full
//! stream, every reported cycle is contained in a full-stream cycle, and
//! every lost-notification monitor really issued a wasted notify. (With
//! drops, evidence *strings* may differ — e.g. a race may be pinned on a
//! different thread — which is why the guarantee is stated over subjects,
//! exposed via [`OnlineMonitor::race_vars`],
//! [`OnlineMonitor::cycle_lock_sets`] and
//! [`OnlineMonitor::lost_monitors`].)

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

use jcc_petri::{Deviation, FailureClass, Transition};

use crate::events::{Event, EventKind};

/// A finding raised by the online monitor — same shape (and, on no-drop
/// streams, same rendering) as `jcc_detect::Finding`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineFinding {
    /// The Table-1 failure class.
    pub class: FailureClass,
    /// What was observed.
    pub evidence: String,
}

impl fmt::Display for OnlineFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.class.code(), self.evidence)
    }
}

/// A finding raised mid-run, stamped with the event that completed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineAlert {
    /// `seq` of the triggering event.
    pub seq: u64,
    /// The finding at that point.
    pub finding: OnlineFinding,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum VarState {
    Virgin,
    Exclusive(u64),
    Shared,
    SharedModified,
}

/// One race record, mirroring `jcc_detect::lockset::RaceReport`.
#[derive(Debug, Clone)]
struct Race {
    var: String,
    on_write: bool,
    thread: u64,
}

/// The streaming monitor. Feed every drained event to
/// [`OnlineMonitor::observe`]; read [`OnlineMonitor::alerts`] mid-run and
/// [`OnlineMonitor::verdicts`] at the end.
#[derive(Debug, Default)]
pub struct OnlineMonitor {
    // --- incremental Eraser lockset ---
    held_sets: HashMap<u64, BTreeSet<u64>>,
    var_state: HashMap<String, VarState>,
    candidates: HashMap<String, BTreeSet<u64>>,
    reported_vars: BTreeSet<String>,
    races: Vec<Race>,
    // --- incremental lock-order graph ---
    edges: BTreeMap<u64, BTreeMap<u64, BTreeSet<u64>>>,
    held_stacks: BTreeMap<u64, Vec<u64>>,
    cycle_alerted: BTreeSet<(u64, u64)>,
    // --- lost notifications ---
    lost: BTreeMap<u64, u64>,
    // --- degradation ---
    gapped_threads: HashSet<u64>,
    dropped_events: u64,
    // --- bookkeeping ---
    alerts: Vec<OnlineAlert>,
    events_seen: u64,
}

impl OnlineMonitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one event.
    pub fn observe(&mut self, e: &Event) {
        self.events_seen += 1;
        match &e.kind {
            EventKind::Transition(Transition::T2) => self.acquire(e.seq, e.thread, e.monitor.0),
            EventKind::Transition(Transition::T3) | EventKind::Transition(Transition::T4) => {
                self.release(e.thread, e.monitor.0)
            }
            EventKind::Read { var } => self.access(e.seq, e.thread, var.clone(), false),
            EventKind::Write { var } => self.access(e.seq, e.thread, var.clone(), true),
            EventKind::NotifyIssued { waiters: 0, .. } => {
                let n = self.lost.entry(e.monitor.0).or_insert(0);
                *n += 1;
                if *n == 1 {
                    let finding = lost_finding(e.monitor.0, 1);
                    self.push_alert(e.seq, finding);
                }
            }
            EventKind::CaptureGap { dropped } => {
                self.dropped_events += *dropped;
                self.gapped_threads.insert(e.thread);
                self.held_sets.remove(&e.thread);
                self.held_stacks.remove(&e.thread);
            }
            _ => {}
        }
    }

    /// Feed a whole slice (replay convenience).
    pub fn observe_all(&mut self, events: &[Event]) {
        for e in events {
            self.observe(e);
        }
    }

    fn acquire(&mut self, seq: u64, thread: u64, lock: u64) {
        // Lockset held-set (set semantics: reentrant re-entries invisible).
        self.held_sets.entry(thread).or_default().insert(lock);
        // Lock-order edges from current nesting, with a reachability check
        // on every *new* edge — the mid-run cycle alert.
        let held = self.held_stacks.entry(thread).or_default().clone();
        for &h in &held {
            if h != lock {
                let threads = self.edges.entry(h).or_default().entry(lock).or_default();
                let fresh = threads.insert(thread) && threads.len() == 1;
                if fresh && self.reaches(lock, h) && self.cycle_alerted.insert((h, lock)) {
                    let finding = OnlineFinding {
                        class: FailureClass::new(Deviation::FailureToFire, Transition::T2),
                        evidence: format!(
                            "acquiring lock {lock} while holding lock {h} closes a lock-order \
                             cycle — threads taking the opposite order can deadlock"
                        ),
                    };
                    self.push_alert(seq, finding);
                }
            }
        }
        self.held_stacks.entry(thread).or_default().push(lock);
    }

    fn release(&mut self, thread: u64, lock: u64) {
        if let Some(set) = self.held_sets.get_mut(&thread) {
            set.remove(&lock);
        }
        if let Some(stack) = self.held_stacks.get_mut(&thread) {
            if let Some(pos) = stack.iter().rposition(|&h| h == lock) {
                stack.remove(pos);
            }
        }
    }

    fn access(&mut self, seq: u64, thread: u64, var: String, is_write: bool) {
        if self.gapped_threads.contains(&thread) {
            // Degraded thread: its held set may under-approximate reality,
            // so counting its accesses could empty a candidate set that a
            // full capture would keep populated — a false positive. Skip.
            return;
        }
        let held = self.held_sets.get(&thread).cloned().unwrap_or_default();
        let state = self
            .var_state
            .get(&var)
            .cloned()
            .unwrap_or(VarState::Virgin);
        let next = match (&state, is_write) {
            (VarState::Virgin, _) => VarState::Exclusive(thread),
            (VarState::Exclusive(t), _) if *t == thread => VarState::Exclusive(thread),
            (VarState::Exclusive(_), false) => {
                self.candidates.insert(var.clone(), held.clone());
                VarState::Shared
            }
            (VarState::Exclusive(_), true) => {
                self.candidates.insert(var.clone(), held.clone());
                VarState::SharedModified
            }
            (VarState::Shared, false) => {
                self.refine(&var, &held);
                VarState::Shared
            }
            (VarState::Shared, true) => {
                self.refine(&var, &held);
                VarState::SharedModified
            }
            (VarState::SharedModified, _) => {
                self.refine(&var, &held);
                VarState::SharedModified
            }
        };
        let in_shared_modified = next == VarState::SharedModified;
        self.var_state.insert(var.clone(), next);
        if in_shared_modified
            && self
                .candidates
                .get(&var)
                .map(BTreeSet::is_empty)
                .unwrap_or(false)
            && self.reported_vars.insert(var.clone())
        {
            let race = Race {
                var,
                on_write: is_write,
                thread,
            };
            let finding = race_finding(&race);
            self.races.push(race);
            self.push_alert(seq, finding);
        }
    }

    fn refine(&mut self, var: &str, held: &BTreeSet<u64>) {
        if let Some(c) = self.candidates.get_mut(var) {
            *c = c.intersection(held).copied().collect();
        }
    }

    /// Is `to` reachable from `from` in the current edge set?
    fn reaches(&self, from: u64, to: u64) -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(targets) = self.edges.get(&n) {
                stack.extend(targets.keys().copied());
            }
        }
        false
    }

    fn push_alert(&mut self, seq: u64, finding: OnlineFinding) {
        self.alerts.push(OnlineAlert { seq, finding });
    }

    /// Findings raised mid-run so far, in raise order. Alert evidence is
    /// the state *at the triggering event* (e.g. a lost-notification count
    /// of 1); [`OnlineMonitor::verdicts`] renders the final tallies.
    pub fn alerts(&self) -> &[OnlineAlert] {
        &self.alerts
    }

    /// Events observed so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// True once any capture gap has been observed — verdicts are then a
    /// sound subset rather than byte-exact (see the module docs).
    pub fn degraded(&self) -> bool {
        !self.gapped_threads.is_empty()
    }

    /// Events lost to capture gaps, as reported by the gap records.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Race subjects: the variables with a confirmed empty candidate
    /// lockset, in report order.
    pub fn race_vars(&self) -> Vec<String> {
        self.races.iter().map(|r| r.var.clone()).collect()
    }

    /// Cycle subjects: each strongly connected lock set (sorted), from
    /// the incrementally built graph.
    pub fn cycle_lock_sets(&self) -> Vec<Vec<u64>> {
        cycles_of(&self.edges)
    }

    /// Lost-notification subjects: monitors that issued a notification
    /// with nobody in the wait set.
    pub fn lost_monitors(&self) -> Vec<u64> {
        self.lost.keys().copied().collect()
    }

    /// Final verdicts: lockset races (report order), lock-order cycles
    /// (SCCs over the incrementally built graph — `O(graph)`, the stream
    /// is never re-read), then lost notifications (by monitor id),
    /// deduplicated. On a no-drop stream this byte-matches
    /// `jcc_detect::classify_runtime_events`.
    pub fn verdicts(&self) -> Vec<OnlineFinding> {
        let mut out: Vec<OnlineFinding> = self.races.iter().map(race_finding).collect();
        out.extend(self.cycle_lock_sets().into_iter().map(|locks| OnlineFinding {
            class: FailureClass::new(Deviation::FailureToFire, Transition::T2),
            evidence: cycle_evidence(&locks),
        }));
        out.extend(
            self.lost
                .iter()
                .map(|(&monitor, &count)| lost_finding(monitor, count)),
        );
        let mut seen = HashSet::new();
        out.retain(|f| seen.insert((f.class, f.evidence.clone())));
        out
    }
}

// --- evidence rendering ---------------------------------------------------
//
// These strings are the byte-match contract with `jcc-detect`
// (`classify_races` / `classify_cycles` / `classify_lost_notifications`);
// change them only in lockstep.

fn race_finding(r: &Race) -> OnlineFinding {
    OnlineFinding {
        class: FailureClass::new(Deviation::FailureToFire, Transition::T1),
        evidence: format!(
            "variable `{}` accessed by multiple threads with an empty candidate \
             lockset (thread {} {} without consistent locking)",
            r.var,
            r.thread,
            if r.on_write { "wrote" } else { "read" }
        ),
    }
}

fn cycle_evidence(locks: &[u64]) -> String {
    format!(
        "locks {locks:?} are acquired in inconsistent orders — two threads can block \
         each other forever"
    )
}

/// The FF-T5 evidence line (`count` wasted notifications on `monitor`).
pub(crate) fn lost_notification_evidence(monitor: u64, count: u64) -> String {
    format!(
        "monitor {monitor} issued {count} notification(s) with no thread in the wait \
         set — the wake-ups were lost"
    )
}

fn lost_finding(monitor: u64, count: u64) -> OnlineFinding {
    OnlineFinding {
        class: FailureClass::new(Deviation::FailureToFire, Transition::T5),
        evidence: lost_notification_evidence(monitor, count),
    }
}

/// SCCs (≥ 2 nodes, or a self-loop) of the lock-order graph, each sorted
/// ascending — the same node ordering and Tarjan traversal as
/// `jcc_detect::lockorder`, so verdict order matches byte for byte.
fn cycles_of(edges: &BTreeMap<u64, BTreeMap<u64, BTreeSet<u64>>>) -> Vec<Vec<u64>> {
    let nodes: Vec<u64> = edges
        .iter()
        .flat_map(|(&a, ts)| std::iter::once(a).chain(ts.keys().copied()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let index_of: BTreeMap<u64, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let n = nodes.len();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|a| {
            edges
                .get(a)
                .map(|ts| ts.keys().map(|b| index_of[b]).collect())
                .unwrap_or_default()
        })
        .collect();
    let mut sccs = tarjan(n, &adj);
    sccs.retain(|scc| scc.len() > 1 || adj[scc[0]].contains(&scc[0]));
    sccs.into_iter()
        .map(|mut scc| {
            scc.sort_unstable();
            scc.into_iter().map(|i| nodes[i]).collect()
        })
        .collect()
}

fn tarjan(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeInfo {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    struct State<'a> {
        adj: &'a [Vec<usize>],
        info: Vec<NodeInfo>,
        stack: Vec<usize>,
        next_index: usize,
        sccs: Vec<Vec<usize>>,
    }
    fn strongconnect(v: usize, st: &mut State<'_>) {
        st.info[v].index = Some(st.next_index);
        st.info[v].lowlink = st.next_index;
        st.next_index += 1;
        st.stack.push(v);
        st.info[v].on_stack = true;
        for i in 0..st.adj[v].len() {
            let w = st.adj[v][i];
            if st.info[w].index.is_none() {
                strongconnect(w, st);
                st.info[v].lowlink = st.info[v].lowlink.min(st.info[w].lowlink);
            } else if st.info[w].on_stack {
                st.info[v].lowlink = st.info[v].lowlink.min(st.info[w].index.unwrap());
            }
        }
        if Some(st.info[v].lowlink) == st.info[v].index {
            let mut scc = Vec::new();
            loop {
                let w = st.stack.pop().unwrap();
                st.info[w].on_stack = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            st.sccs.push(scc);
        }
    }
    let mut st = State {
        adj,
        info: vec![
            NodeInfo {
                index: None,
                lowlink: 0,
                on_stack: false
            };
            n
        ],
        stack: Vec::new(),
        next_index: 0,
        sccs: Vec::new(),
    };
    for v in 0..n {
        if st.info[v].index.is_none() {
            strongconnect(v, &mut st);
        }
    }
    st.sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::MonitorId;
    use jcc_petri::Transition as T;

    fn ev(seq: u64, thread: u64, monitor: u64, kind: EventKind) -> Event {
        Event {
            seq,
            thread,
            monitor: MonitorId(monitor),
            kind,
        }
    }

    fn acq(seq: u64, t: u64, l: u64) -> Event {
        ev(seq, t, l, EventKind::Transition(T::T2))
    }
    fn rel(seq: u64, t: u64, l: u64) -> Event {
        ev(seq, t, l, EventKind::Transition(T::T4))
    }
    fn wr(seq: u64, t: u64, var: &str) -> Event {
        ev(seq, t, 0, EventKind::Write { var: var.into() })
    }

    #[test]
    fn race_alert_raised_at_the_offending_event() {
        let mut m = OnlineMonitor::new();
        m.observe_all(&[wr(0, 1, "x"), wr(1, 2, "x")]);
        assert_eq!(m.alerts().len(), 1);
        assert_eq!(m.alerts()[0].seq, 1);
        assert_eq!(m.alerts()[0].finding.class.code(), "FF-T1");
        assert_eq!(m.race_vars(), vec!["x".to_string()]);
        assert_eq!(m.verdicts().len(), 1);
    }

    #[test]
    fn cycle_alert_on_edge_insertion_and_scc_verdict() {
        let mut m = OnlineMonitor::new();
        m.observe_all(&[
            acq(0, 1, 1),
            acq(1, 1, 2),
            rel(2, 1, 2),
            rel(3, 1, 1),
            acq(4, 2, 2),
            acq(5, 2, 1), // closes the cycle — alert here
            rel(6, 2, 1),
            rel(7, 2, 2),
        ]);
        let cycle_alerts: Vec<_> = m
            .alerts()
            .iter()
            .filter(|a| a.finding.class.code() == "FF-T2")
            .collect();
        assert_eq!(cycle_alerts.len(), 1);
        assert_eq!(cycle_alerts[0].seq, 5);
        assert_eq!(m.cycle_lock_sets(), vec![vec![1, 2]]);
        let v = m.verdicts();
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().starts_with("FF-T2: locks [1, 2]"));
    }

    #[test]
    fn lost_notification_tallied_per_monitor() {
        let mut m = OnlineMonitor::new();
        let lost = |seq, mon| {
            ev(
                seq,
                1,
                mon,
                EventKind::NotifyIssued {
                    all: false,
                    waiters: 0,
                },
            )
        };
        m.observe_all(&[lost(0, 3), lost(1, 3), lost(2, 5)]);
        assert_eq!(m.lost_monitors(), vec![3, 5]);
        assert_eq!(m.alerts().len(), 2, "one alert per monitor");
        let v = m.verdicts();
        assert_eq!(v.len(), 2);
        assert!(v[0].evidence.contains("monitor 3 issued 2 notification(s)"));
        assert!(v[1].evidence.contains("monitor 5 issued 1 notification(s)"));
    }

    #[test]
    fn gap_taints_thread_and_suppresses_its_accesses() {
        let mut m = OnlineMonitor::new();
        // Thread 2 held a lock before its gap; the lockset must not trust
        // its post-gap (apparently lock-free) accesses.
        m.observe_all(&[
            acq(0, 1, 10),
            wr(1, 1, "x"),
            rel(2, 1, 10),
            ev(3, 2, 0, EventKind::CaptureGap { dropped: 4 }),
            wr(4, 2, "x"), // would race if trusted — suppressed
        ]);
        assert!(m.degraded());
        assert_eq!(m.dropped_events(), 4);
        assert!(m.verdicts().is_empty(), "{:?}", m.verdicts());
        // Untainted threads still race normally.
        m.observe_all(&[wr(5, 3, "x")]);
        assert_eq!(m.race_vars(), vec!["x".to_string()]);
    }

    #[test]
    fn notify_with_waiters_is_not_lost() {
        let mut m = OnlineMonitor::new();
        m.observe(&ev(
            0,
            1,
            2,
            EventKind::NotifyIssued {
                all: true,
                waiters: 3,
            },
        ));
        assert!(m.verdicts().is_empty());
    }
}
