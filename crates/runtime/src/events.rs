//! The shared event log: every monitor operation, data access and coverage
//! marker, in one global order (per log).
//!
//! # Capture architecture (always-on monitoring)
//!
//! Capture is lock-free on the hot path: each instrumented OS thread owns
//! a fixed-size SPSC ring ([`crate::ring`]) per log. [`EventLog::log`] /
//! [`EventLog::log_as`] encode the event into `u64` words, take a global
//! order stamp with one `fetch_add`, and publish with one release-store —
//! **producers never block and never take a shared lock**. When a ring is
//! full the event is dropped, a per-ring drop counter is bumped, and a
//! [`EventKind::CaptureGap`] record (attributed to the logical thread
//! whose events were lost) is injected as soon as space frees up, so the
//! drained stream stays honest about what is missing.
//!
//! A *collector* (whoever calls [`EventLog::snapshot`], [`EventLog::len`],
//! [`EventLog::drain_for_each`], …) drains all rings, merges records by
//! stamp and renumbers [`Event::seq`] densely — readers still see one
//! gap-free global order.
//!
//! The shared name tables (monitor names via
//! [`EventLog::register_monitor`], interned variable/method strings) are
//! *registration-class* state behind a mutex: a producer touches the lock
//! only on the first use of a new string per thread (a per-thread cache
//! absorbs the steady state).
//!
//! # Sampling
//!
//! [`EventLog::set_sampling`] installs a probabilistic, seeded sampling
//! knob with a power-of-two rate (`shift` = log2 of the rate). Sampling
//! applies **only** to data and coverage events (`Read`, `Write`,
//! `MethodStart`, `MethodEnd`, `Marker`); synchronization events
//! (`Transition`, `NotifyIssued`) are always captured. That asymmetry is
//! what keeps downstream detectors *sound under sampling*: held-lock sets
//! stay exact and only the set of observed accesses shrinks, so a sampled
//! stream can under-report but never invent a finding. The keep/skip
//! decision hashes `(seed, logical thread, per-thread event ordinal)`, so
//! a single-threaded [`EventLog::log_as`] replay is bit-for-bit
//! deterministic for a fixed seed.
//!
//! Thread identity is **per log**: the first thread to log into an
//! [`EventLog`] gets id 1, the second id 2, and so on, regardless of how
//! many threads earlier tests or suites spun up. (The process-wide token
//! behind [`current_thread_id`] still exists — monitors use it for
//! ownership checks — but it never leaks into logged events, so obs
//! snapshots and cross-test comparisons see stable ids.)
//!
//! When `jcc-obs` recording is enabled, every *captured* event is bridged
//! into the global metrics registry (`runtime.events`,
//! `runtime.transition.T*`, notify/lost-notification tallies) through
//! handles cached per producer, plus capture health: a
//! `runtime.capture.latency_ns` log2 histogram (timed every 64th event),
//! `runtime.capture.dropped` / `runtime.capture.sampled_out` counters and
//! a `runtime.ring.occupancy_hwm_words` high-water gauge. At `trace`
//! level, events also land in the structured trace stream.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

use parking_lot::Mutex;

use jcc_petri::Transition;

use crate::ring::{SpscRing, DEFAULT_CAPACITY_WORDS, EXTRA_SHIFT, HEADER_WORDS};

/// Identifies a monitor instance within one [`EventLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MonitorId(pub u64);

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_LOG_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    /// This thread's producer rings, one slot per live log it has logged
    /// into (typically one or two; dead and stale slots are evicted on
    /// registration).
    static PRODUCERS: RefCell<Vec<ProducerSlot>> = const { RefCell::new(Vec::new()) };
}

/// A process-wide token for the current OS thread, stable for its
/// lifetime. Used by monitors for ownership checks; event logs map it to a
/// dense per-log id (see the module docs), so this value never appears in
/// [`Event::thread`].
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A Figure-1 model transition fired on a monitor.
    Transition(Transition),
    /// The thread issued a notification on the monitor (`all` =
    /// `notifyAll`). The woken threads each log their own
    /// `Transition(T5)`.
    NotifyIssued {
        /// Whether every waiter was woken.
        all: bool,
        /// How many waiters were present when the notification was issued.
        waiters: usize,
    },
    /// A read of a shared variable (for lockset analysis).
    Read {
        /// Variable name.
        var: String,
    },
    /// A write of a shared variable (for lockset analysis).
    Write {
        /// Variable name.
        var: String,
    },
    /// Coverage marker: a component method was entered.
    MethodStart {
        /// Method name.
        method: String,
    },
    /// Coverage marker: a component method returned.
    MethodEnd {
        /// Method name.
        method: String,
    },
    /// Coverage marker: a concurrency statement at `path` was executed.
    Marker {
        /// Method name.
        method: String,
        /// Statement path in `jcc-model` convention.
        path: Vec<usize>,
    },
    /// Capture degradation marker: the producer ring was full and
    /// `dropped` events *from this logical thread* were discarded before
    /// this point. Online detectors treat the thread as degraded from
    /// here on (see [`crate::online`]); post-hoc analyses ignore it.
    CaptureGap {
        /// How many events from this thread were lost.
        dropped: u64,
    },
}

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number within the log (0-based, gap-free).
    pub seq: u64,
    /// The logging thread as a dense per-log id: 1 for the first thread to
    /// log into this [`EventLog`], 2 for the second, … (stable across test
    /// orderings; see the module docs). Events appended with
    /// [`EventLog::log_as`] carry the caller's explicit id instead.
    pub thread: u64,
    /// The monitor involved, if any ([`MonitorId(0)`](MonitorId) is used for
    /// monitor-less events such as markers and unsynchronized accesses).
    pub monitor: MonitorId,
    /// What happened.
    pub kind: EventKind,
}

// --- record encoding -----------------------------------------------------
//
// [header, stamp, thread, monitor, extra...] where the header packs
// tag (bits 56..64), flags (48..56) and the extra-word count (32..48, the
// framing field the ring's consumer uses).

const TAG_SHIFT: u32 = 56;
const FLAGS_SHIFT: u32 = 48;

const TAG_TRANSITION: u64 = 0; // flags = Transition::index()
const TAG_NOTIFY: u64 = 1; // flags bit0 = all; extra: [waiters]
const TAG_READ: u64 = 2; // extra: [name id]
const TAG_WRITE: u64 = 3; // extra: [name id]
const TAG_METHOD_START: u64 = 4; // extra: [name id]
const TAG_METHOD_END: u64 = 5; // extra: [name id]
const TAG_MARKER: u64 = 6; // extra: [name id, path...]
const TAG_GAP: u64 = 7; // extra: [dropped]

/// SplitMix64 finalizer — the sampling hash (no external hasher dep).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Which kinds the sampling knob may skip. Synchronization events are
/// always captured — that is the soundness-under-sampling contract.
fn sampling_applies(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::Read { .. }
            | EventKind::Write { .. }
            | EventKind::MethodStart { .. }
            | EventKind::MethodEnd { .. }
            | EventKind::Marker { .. }
    )
}

// --- shared log state ----------------------------------------------------

#[derive(Debug, Default)]
struct NameTable {
    monitor_names: Vec<String>,
    /// Interned strings (variables, methods), shared across the log.
    strings: Vec<String>,
    ids: HashMap<String, u32>,
}

impl NameTable {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.ids.insert(s.to_string(), id);
        id
    }
}

#[derive(Debug, Default)]
struct ProducerRegistry {
    /// All producer rings of the current epoch, registration order.
    rings: Vec<Arc<SpscRing>>,
    /// Process-wide thread token → dense per-log id, in first-log order.
    thread_ids: HashMap<u64, u64>,
}

#[derive(Debug, Default)]
struct Collected {
    /// Events retained for [`EventLog::snapshot`] (everything collected
    /// except what streaming [`EventLog::drain_for_each`] consumed).
    events: Vec<Event>,
    /// Total events ever collected — the dense [`Event::seq`] allocator.
    total: u64,
}

#[derive(Debug)]
struct LogShared {
    id: u64,
    /// Bumped by [`EventLog::clear`]; producers re-register when stale.
    epoch: AtomicU64,
    /// The global order stamp: one wait-free `fetch_add` per captured
    /// event. Stamps may have gaps (dropped events waste one) — the
    /// collector renumbers `seq` densely, only the *order* matters.
    stamp: AtomicU64,
    /// log2 of the sampling rate (0 = capture everything).
    sample_shift: AtomicU64,
    sample_seed: AtomicU64,
    /// Events skipped by the sampling knob (not drops!).
    sampled_out: AtomicU64,
    /// Ring capacity (words) for producers registered from now on.
    ring_capacity: AtomicUsize,
    names: Mutex<NameTable>,
    registry: Mutex<ProducerRegistry>,
    collected: Mutex<Collected>,
}

impl Default for LogShared {
    fn default() -> Self {
        LogShared {
            id: NEXT_LOG_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(0),
            stamp: AtomicU64::new(0),
            sample_shift: AtomicU64::new(0),
            sample_seed: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            ring_capacity: AtomicUsize::new(DEFAULT_CAPACITY_WORDS),
            names: Mutex::new(NameTable::default()),
            registry: Mutex::new(ProducerRegistry::default()),
            collected: Mutex::new(Collected::default()),
        }
    }
}

// --- the per-thread producer ---------------------------------------------

/// Cached obs handles — resolved once per producer so the hot path never
/// touches the registry lock. `Registry::reset` zeroes metrics in place,
/// so cached handles stay valid across `BenchReporter` reinits.
struct ObsHandles {
    events: jcc_obs::Counter,
    transitions: [jcc_obs::Counter; 5],
    waits: jcc_obs::Counter,
    notify_issued: jcc_obs::Counter,
    notify_all: jcc_obs::Counter,
    notify_lost: jcc_obs::Counter,
    reads: jcc_obs::Counter,
    writes: jcc_obs::Counter,
    markers: jcc_obs::Counter,
    gaps: jcc_obs::Counter,
    dropped: jcc_obs::Counter,
    sampled_out: jcc_obs::Counter,
    latency: Arc<jcc_obs::Histogram>,
    occupancy: jcc_obs::Gauge,
}

impl ObsHandles {
    fn resolve() -> Self {
        let reg = jcc_obs::global();
        ObsHandles {
            events: reg.counter("runtime.events"),
            transitions: [
                reg.counter("runtime.transition.T1"),
                reg.counter("runtime.transition.T2"),
                reg.counter("runtime.transition.T3"),
                reg.counter("runtime.transition.T4"),
                reg.counter("runtime.transition.T5"),
            ],
            waits: reg.counter("runtime.waits"),
            notify_issued: reg.counter("runtime.notify.issued"),
            notify_all: reg.counter("runtime.notify.all"),
            notify_lost: reg.counter("runtime.notify.lost"),
            reads: reg.counter("runtime.reads"),
            writes: reg.counter("runtime.writes"),
            markers: reg.counter("runtime.markers"),
            gaps: reg.counter("runtime.capture.gaps"),
            dropped: reg.counter("runtime.capture.dropped"),
            sampled_out: reg.counter("runtime.capture.sampled_out"),
            latency: reg.histogram("runtime.capture.latency_ns"),
            occupancy: reg.gauge("runtime.ring.occupancy_hwm_words"),
        }
    }
}

struct ProducerSlot {
    log_id: u64,
    epoch: u64,
    shared: Weak<LogShared>,
    ring: Arc<SpscRing>,
    /// Dense per-log id, allocated on this thread's first `log()`.
    dense_id: Option<u64>,
    /// Thread-local intern cache: string → shared table id.
    names: HashMap<String, u32>,
    /// Per logical thread: events seen (the sampling ordinal).
    sample_counters: HashMap<u64, u64>,
    /// Per logical thread: events dropped since its last gap record.
    pending_gaps: HashMap<u64, u64>,
    /// Capture ops on this slot (drives the 1-in-64 latency timer).
    ops: u64,
    scratch: Vec<u64>,
    obs: Option<ObsHandles>,
}

impl ProducerSlot {
    fn obs_handles(&mut self) -> &ObsHandles {
        if self.obs.is_none() {
            self.obs = Some(ObsHandles::resolve());
        }
        self.obs.as_ref().expect("just installed")
    }

    fn dense_id(&mut self, shared: &LogShared) -> u64 {
        if let Some(id) = self.dense_id {
            return id;
        }
        let mut reg = shared.registry.lock();
        let token = current_thread_id();
        let next = reg.thread_ids.len() as u64 + 1;
        let id = *reg.thread_ids.entry(token).or_insert(next);
        self.dense_id = Some(id);
        id
    }

    fn intern(&mut self, shared: &LogShared, name: &str) -> u64 {
        if let Some(&id) = self.names.get(name) {
            return id as u64;
        }
        let id = shared.names.lock().intern(name);
        self.names.insert(name.to_string(), id);
        id as u64
    }

    /// Encode `kind` into `self.scratch` (header/stamp/thread/monitor +
    /// payload), taking the global stamp last.
    fn encode(&mut self, shared: &LogShared, thread: u64, monitor: MonitorId, kind: &EventKind) {
        self.scratch.clear();
        self.scratch.extend_from_slice(&[0, 0, thread, monitor.0]);
        let (tag, flags) = match kind {
            EventKind::Transition(t) => (TAG_TRANSITION, t.index() as u64),
            EventKind::NotifyIssued { all, waiters } => {
                self.scratch.push(*waiters as u64);
                (TAG_NOTIFY, *all as u64)
            }
            EventKind::Read { var } => {
                let id = self.intern(shared, var);
                self.scratch.push(id);
                (TAG_READ, 0)
            }
            EventKind::Write { var } => {
                let id = self.intern(shared, var);
                self.scratch.push(id);
                (TAG_WRITE, 0)
            }
            EventKind::MethodStart { method } => {
                let id = self.intern(shared, method);
                self.scratch.push(id);
                (TAG_METHOD_START, 0)
            }
            EventKind::MethodEnd { method } => {
                let id = self.intern(shared, method);
                self.scratch.push(id);
                (TAG_METHOD_END, 0)
            }
            EventKind::Marker { method, path } => {
                let id = self.intern(shared, method);
                self.scratch.push(id);
                for &p in path {
                    self.scratch.push(p as u64);
                }
                (TAG_MARKER, 0)
            }
            EventKind::CaptureGap { dropped } => {
                self.scratch.push(*dropped);
                (TAG_GAP, 0)
            }
        };
        let extra = (self.scratch.len() - HEADER_WORDS) as u64;
        let stamp = shared.stamp.fetch_add(1, Ordering::Relaxed);
        self.scratch[0] = (tag << TAG_SHIFT) | (flags << FLAGS_SHIFT) | (extra << EXTRA_SHIFT);
        self.scratch[1] = stamp;
    }

    /// Flush pending gap records (one per degraded logical thread) ahead
    /// of the next event so gaps always precede post-gap events. Returns
    /// `false` when even the gap records don't fit.
    fn flush_gaps(&mut self, shared: &LogShared) -> bool {
        if self.pending_gaps.is_empty() {
            return true;
        }
        let mut pending: Vec<(u64, u64)> = self.pending_gaps.drain().collect();
        pending.sort_unstable();
        for (i, &(thread, dropped)) in pending.iter().enumerate() {
            let stamp = shared.stamp.fetch_add(1, Ordering::Relaxed);
            let words = [
                (TAG_GAP << TAG_SHIFT) | (1u64 << EXTRA_SHIFT),
                stamp,
                thread,
                0,
                dropped,
            ];
            if !self.ring.try_push(&words) {
                // Put the unflushed remainder back and report failure.
                for &(t, d) in &pending[i..] {
                    self.pending_gaps.insert(t, d);
                }
                return false;
            }
            if jcc_obs::enabled() {
                self.obs_handles().gaps.inc();
            }
        }
        true
    }

    fn capture(&mut self, shared: &LogShared, explicit: Option<u64>, monitor: MonitorId, kind: EventKind) {
        let obs_on = jcc_obs::enabled();
        let t0 = if obs_on && self.ops & 0x3f == 0 {
            Some(Instant::now())
        } else {
            None
        };
        self.ops += 1;

        let thread = match explicit {
            Some(t) => t,
            None => self.dense_id(shared),
        };

        let shift = shared.sample_shift.load(Ordering::Relaxed) as u32;
        if shift > 0 && sampling_applies(&kind) {
            let n = self.sample_counters.entry(thread).or_insert(0);
            let ordinal = *n;
            *n += 1;
            let seed = shared.sample_seed.load(Ordering::Relaxed);
            if mix64(seed ^ thread.rotate_left(32) ^ ordinal) & ((1u64 << shift) - 1) != 0 {
                shared.sampled_out.fetch_add(1, Ordering::Relaxed);
                if obs_on {
                    self.obs_handles().sampled_out.inc();
                }
                return;
            }
        }

        if obs_on {
            self.bridge(thread, monitor, &kind);
        }

        if !self.flush_gaps(shared) {
            // No room even for the gap record: this event is lost too.
            self.drop_event(thread, obs_on);
            return;
        }
        self.encode(shared, thread, monitor, &kind);
        if !self.ring.try_push(&self.scratch) {
            self.drop_event(thread, obs_on);
            return;
        }

        if let Some(t0) = t0 {
            let hwm = self.ring.occupancy_hwm();
            let h = self.obs_handles();
            h.latency.record(t0.elapsed().as_nanos() as u64);
            h.occupancy.set_max(hwm);
        }
    }

    fn drop_event(&mut self, thread: u64, obs_on: bool) {
        self.ring.note_drop();
        *self.pending_gaps.entry(thread).or_insert(0) += 1;
        if obs_on {
            self.obs_handles().dropped.inc();
        }
    }

    /// Fold one captured event into the global obs registry (and, at
    /// `trace` level, the structured trace stream). `NotifyIssued` with
    /// zero waiters is the *lost notification* shape — a wake-up nobody
    /// was there to receive — so it gets its own tally. Sampled-out and
    /// dropped events are counted separately, never here.
    fn bridge(&mut self, thread: u64, monitor: MonitorId, kind: &EventKind) {
        let h = self.obs_handles();
        h.events.inc();
        match kind {
            EventKind::Transition(t) => {
                h.transitions[t.index()].inc();
                if *t == Transition::T3 {
                    h.waits.inc();
                }
            }
            EventKind::NotifyIssued { all, waiters } => {
                h.notify_issued.inc();
                if *all {
                    h.notify_all.inc();
                }
                if *waiters == 0 {
                    h.notify_lost.inc();
                }
            }
            EventKind::Read { .. } => h.reads.inc(),
            EventKind::Write { .. } => h.writes.inc(),
            EventKind::MethodStart { .. }
            | EventKind::MethodEnd { .. }
            | EventKind::Marker { .. } => h.markers.inc(),
            EventKind::CaptureGap { .. } => h.gaps.inc(),
        }
        if jcc_obs::trace_enabled() {
            jcc_obs::trace_event(
                "runtime.event",
                vec![
                    ("thread".to_string(), thread.to_string()),
                    ("monitor".to_string(), monitor.0.to_string()),
                    ("kind".to_string(), format!("{kind:?}")),
                ],
            );
        }
    }
}

/// Decode one ring record back into an [`Event`] (seq filled in later).
fn decode(words: &[u64], names: &NameTable) -> Option<(u64, Event)> {
    let header = *words.first()?;
    let tag = header >> TAG_SHIFT;
    let flags = (header >> FLAGS_SHIFT) & 0xff;
    let stamp = words[1];
    let thread = words[2];
    let monitor = MonitorId(words[3]);
    let extra = &words[HEADER_WORDS..];
    let name = |i: usize| -> String {
        names
            .strings
            .get(extra[i] as usize)
            .cloned()
            .unwrap_or_default()
    };
    let kind = match tag {
        TAG_TRANSITION => EventKind::Transition(Transition::from_index(flags as usize)),
        TAG_NOTIFY => EventKind::NotifyIssued {
            all: flags & 1 == 1,
            waiters: extra[0] as usize,
        },
        TAG_READ => EventKind::Read { var: name(0) },
        TAG_WRITE => EventKind::Write { var: name(0) },
        TAG_METHOD_START => EventKind::MethodStart { method: name(0) },
        TAG_METHOD_END => EventKind::MethodEnd { method: name(0) },
        TAG_MARKER => EventKind::Marker {
            method: name(0),
            path: extra[1..].iter().map(|&p| p as usize).collect(),
        },
        TAG_GAP => EventKind::CaptureGap { dropped: extra[0] },
        _ => return None,
    };
    Some((
        stamp,
        Event {
            seq: 0,
            thread,
            monitor,
            kind,
        },
    ))
}

/// A shared, append-only event log. Cheap to clone (shared handle).
#[derive(Clone, Default)]
pub struct EventLog {
    shared: Arc<LogShared>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("id", &self.shared.id)
            .field("epoch", &self.shared.epoch.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl EventLog {
    /// A fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a monitor name, returning its id. Id 0 is reserved for
    /// "no monitor", so the first registration returns `MonitorId(1)`.
    pub fn register_monitor(&self, name: impl Into<String>) -> MonitorId {
        let mut names = self.shared.names.lock();
        names.monitor_names.push(name.into());
        MonitorId(names.monitor_names.len() as u64)
    }

    /// The registered name of a monitor (`"<none>"` for id 0).
    pub fn monitor_name(&self, id: MonitorId) -> String {
        if id.0 == 0 {
            return "<none>".to_string();
        }
        self.shared.names.lock().monitor_names[(id.0 - 1) as usize].clone()
    }

    /// Append an event from the current thread. The event's thread id is
    /// the current thread's dense *per-log* id, allocated on first use, so
    /// logs observe ids 1, 2, … in first-log order no matter how many
    /// threads ran earlier in the process. Lock-free and non-blocking (see
    /// the module docs).
    pub fn log(&self, monitor: MonitorId, kind: EventKind) {
        self.capture(None, monitor, kind);
    }

    /// Append an event attributed to an explicit thread id (used by the VM,
    /// whose logical threads are not OS threads). Explicit ids bypass the
    /// per-log allocator; the calling OS thread's ring carries the event.
    pub fn log_as(&self, thread: u64, monitor: MonitorId, kind: EventKind) {
        self.capture(Some(thread), monitor, kind);
    }

    fn capture(&self, explicit: Option<u64>, monitor: MonitorId, kind: EventKind) {
        PRODUCERS.with(|cell| {
            let mut slots = cell.borrow_mut();
            let slot = self.slot_index(&mut slots);
            slots[slot].capture(&self.shared, explicit, monitor, kind);
        });
    }

    /// Find (or register) this thread's producer slot for this log.
    fn slot_index(&self, slots: &mut Vec<ProducerSlot>) -> usize {
        let epoch = self.shared.epoch.load(Ordering::Relaxed);
        if let Some(i) = slots.iter().position(|s| s.log_id == self.shared.id) {
            if slots[i].epoch == epoch {
                return i;
            }
            // The log was cleared since: drop the stale slot (its ring is
            // no longer registered) and fall through to re-register. The
            // intern cache is kept valid by clear() retaining the string
            // table, but dense ids must be re-allocated.
            slots.remove(i);
        }
        slots.retain(|s| s.shared.strong_count() > 0);
        let ring = Arc::new(SpscRing::with_capacity_words(
            self.shared.ring_capacity.load(Ordering::Relaxed),
        ));
        self.shared.registry.lock().rings.push(Arc::clone(&ring));
        slots.push(ProducerSlot {
            log_id: self.shared.id,
            epoch,
            shared: Arc::downgrade(&self.shared),
            ring,
            dense_id: None,
            names: HashMap::new(),
            sample_counters: HashMap::new(),
            pending_gaps: HashMap::new(),
            ops: 0,
            scratch: Vec::with_capacity(16),
            obs: None,
        });
        slots.len() - 1
    }

    /// Convenience: log a transition.
    pub fn transition(&self, monitor: MonitorId, t: Transition) {
        self.log(monitor, EventKind::Transition(t));
    }

    /// Drain all producer rings into the collector, merging by stamp and
    /// renumbering `seq` densely. With `sink` the freshly drained events
    /// are streamed out (not retained); without it they append to the
    /// retained snapshot. Lock order: collected → registry → names.
    fn collect(&self, mut sink: Option<&mut dyn FnMut(Event)>) -> parking_lot::MutexGuard<'_, Collected> {
        let mut collected = self.shared.collected.lock();
        let rings: Vec<Arc<SpscRing>> = self.shared.registry.lock().rings.clone();
        let mut batch: Vec<(u64, Event)> = Vec::new();
        {
            let names = self.shared.names.lock();
            let mut buf = Vec::new();
            for ring in &rings {
                while ring.pop_record(&mut buf) {
                    if let Some(rec) = decode(&buf, &names) {
                        batch.push(rec);
                    }
                }
            }
        }
        batch.sort_unstable_by_key(|&(stamp, _)| stamp);
        for (_, mut ev) in batch {
            ev.seq = collected.total;
            collected.total += 1;
            match &mut sink {
                Some(f) => f(ev),
                None => collected.events.push(ev),
            }
        }
        collected
    }

    /// Snapshot of all events so far (drains the producer rings first).
    /// Events already consumed by [`EventLog::drain_for_each`] are not
    /// included — a log is typically used either retained (snapshot) or
    /// streaming (drain), not both.
    pub fn snapshot(&self) -> Vec<Event> {
        self.collect(None).events.clone()
    }

    /// Consume every not-yet-consumed event, in global order, without
    /// retaining them — the streaming counterpart of
    /// [`EventLog::snapshot`] for saturation workloads where retaining
    /// millions of events would dominate memory. Do not call other log
    /// accessors from inside the callback.
    pub fn drain_for_each<F: FnMut(Event)>(&self, mut f: F) {
        self.collect(Some(&mut |e| f(e)));
    }

    /// Number of events collected (logged and not sampled out / dropped),
    /// including events consumed by [`EventLog::drain_for_each`].
    pub fn len(&self) -> usize {
        self.collect(None).total as usize
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all events and reset the dense thread-id allocator: after a
    /// clear, the next thread to log gets id 1 again, and
    /// [`EventLog::allocated_threads`] restarts from zero. Producer rings
    /// are discarded (live producers re-register on their next event;
    /// events logged concurrently with a clear may be discarded with
    /// them). Monitor registrations and the interned string table are
    /// *kept* — names are registration-class state, not events.
    pub fn clear(&self) {
        let mut collected = self.shared.collected.lock();
        let mut reg = self.shared.registry.lock();
        self.shared.epoch.fetch_add(1, Ordering::Relaxed);
        reg.rings.clear();
        reg.thread_ids.clear();
        collected.events.clear();
        collected.total = 0;
        self.shared.stamp.store(0, Ordering::Relaxed);
        self.shared.sampled_out.store(0, Ordering::Relaxed);
    }

    /// Install the sampling knob: keep roughly 1 in `2^shift` data and
    /// coverage events (`shift` is capped at 63; 0 restores full
    /// capture). Synchronization events are never sampled out — see the
    /// module docs for why that keeps detectors sound. The decision is a
    /// seeded hash of the logical thread and its event ordinal, so
    /// replaying the same stream through [`EventLog::log_as`] from one
    /// driver thread keeps or skips exactly the same events.
    pub fn set_sampling(&self, shift: u32, seed: u64) {
        let shift = shift.min(63);
        self.shared
            .sample_shift
            .store(shift as u64, Ordering::Relaxed);
        self.shared.sample_seed.store(seed, Ordering::Relaxed);
        if jcc_obs::enabled() {
            jcc_obs::global()
                .gauge("runtime.sampling.rate")
                .set(1u64 << shift);
        }
    }

    /// Current sampling shift (log2 of the rate; 0 = capture everything).
    pub fn sampling_shift(&self) -> u32 {
        self.shared.sample_shift.load(Ordering::Relaxed) as u32
    }

    /// Current sampling rate (`1 << shift`).
    pub fn sampling_rate(&self) -> u64 {
        1u64 << self.sampling_shift()
    }

    /// Events skipped by the sampling knob since the last clear.
    pub fn sampled_out_count(&self) -> u64 {
        self.shared.sampled_out.load(Ordering::Relaxed)
    }

    /// Ring capacity (in `u64` words) for producers registered from now
    /// on; existing rings keep their size. Mostly for tests and benches —
    /// the default ([`DEFAULT_CAPACITY_WORDS`]) fits ≈4k transition
    /// events per thread.
    pub fn set_ring_capacity_words(&self, words: usize) {
        self.shared.ring_capacity.store(words, Ordering::Relaxed);
    }

    /// Total events dropped on full rings since the last clear (the
    /// authoritative count; `CaptureGap` records carry the same numbers
    /// into the stream, but only materialize once the dropping thread
    /// logs again).
    pub fn drop_count(&self) -> u64 {
        let reg = self.shared.registry.lock();
        reg.rings.iter().map(|r| r.dropped()).sum()
    }

    /// Highest ring occupancy (words) any producer has seen.
    pub fn ring_occupancy_hwm(&self) -> u64 {
        let reg = self.shared.registry.lock();
        reg.rings.iter().map(|r| r.occupancy_hwm()).max().unwrap_or(0)
    }

    /// Count transition events of a given kind (retained events only).
    pub fn count_transition(&self, t: Transition) -> usize {
        self.collect(None)
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Transition(t))
            .count()
    }

    /// How many distinct threads have logged via [`EventLog::log`] (the
    /// per-log id allocator's high-water mark).
    pub fn allocated_threads(&self) -> usize {
        self.shared.registry.lock().thread_ids.len()
    }

    /// All distinct thread ids appearing in the log, in first-seen order.
    pub fn threads(&self) -> Vec<u64> {
        let collected = self.collect(None);
        let mut seen = Vec::new();
        for e in &collected.events {
            if !seen.contains(&e.thread) {
                seen.push(e.thread);
            }
        }
        seen
    }

    /// Build a causal schedule timeline from the log: one lane per logged
    /// thread (first-log order), the event sequence number as the clock,
    /// intervals and causality edges derived from the Figure-1 transitions
    /// (see [`jcc_obs::timeline`]). Purely a read of the recorded events —
    /// building a timeline never alters the log.
    pub fn timeline(&self) -> jcc_obs::timeline::Timeline {
        use jcc_obs::timeline::TimelineBuilder;
        let events = self.snapshot();
        let mut b = TimelineBuilder::new("events");
        let mut lanes: HashMap<u64, usize> = HashMap::new();
        for e in &events {
            lanes
                .entry(e.thread)
                .or_insert_with(|| b.lane(&format!("thread-{}", e.thread)));
        }
        for e in &events {
            let lane = lanes[&e.thread];
            let at = e.seq;
            let monitor = self.monitor_name(e.monitor);
            match &e.kind {
                EventKind::Transition(Transition::T1) => b.requests(lane, at, &monitor),
                EventKind::Transition(Transition::T2) => b.acquires(lane, at, &monitor),
                EventKind::Transition(Transition::T3) => b.waits(lane, at, &monitor),
                EventKind::Transition(Transition::T4) => b.releases(lane, at, &monitor),
                EventKind::Transition(Transition::T5) => b.woken(lane, at, &monitor),
                EventKind::NotifyIssued { all, waiters } => {
                    b.notify(lane, at, &monitor, *all, *waiters);
                }
                EventKind::MethodStart { .. } => b.begins(lane, at),
                EventKind::MethodEnd { .. } => b.idles(lane, at),
                EventKind::Read { .. }
                | EventKind::Write { .. }
                | EventKind::Marker { .. }
                | EventKind::CaptureGap { .. } => {}
            }
        }
        b.finish(events.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_petri::Transition as T;

    #[test]
    fn sequence_numbers_are_gap_free() {
        let log = EventLog::new();
        let m = log.register_monitor("m");
        for _ in 0..5 {
            log.transition(m, T::T1);
        }
        let events = log.snapshot();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        assert_eq!(log.len(), 5);
    }

    #[test]
    fn monitor_names_registered() {
        let log = EventLog::new();
        let a = log.register_monitor("alpha");
        let b = log.register_monitor("beta");
        assert_eq!(log.monitor_name(a), "alpha");
        assert_eq!(log.monitor_name(b), "beta");
        assert_eq!(log.monitor_name(MonitorId(0)), "<none>");
        assert_ne!(a, b);
    }

    #[test]
    fn thread_ids_distinct_across_threads() {
        let log = EventLog::new();
        let m = log.register_monitor("m");
        let l2 = log.clone();
        let h = std::thread::spawn(move || {
            l2.transition(m, T::T1);
        });
        h.join().unwrap();
        log.transition(m, T::T1);
        let threads = log.threads();
        assert_eq!(threads.len(), 2);
        assert_ne!(threads[0], threads[1]);
    }

    #[test]
    fn count_and_clear() {
        let log = EventLog::new();
        let m = log.register_monitor("m");
        log.transition(m, T::T1);
        log.transition(m, T::T2);
        log.transition(m, T::T1);
        assert_eq!(log.count_transition(T::T1), 2);
        assert_eq!(log.count_transition(T::T4), 0);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.monitor_name(m), "m");
    }

    #[test]
    fn clear_resets_thread_id_allocator() {
        // The satellite regression: a cleared log used to keep stale
        // dense ids, so reuse skewed allocated_threads() and id density.
        let log = EventLog::new();
        let m = log.register_monitor("m");
        log.transition(m, T::T1);
        let l2 = log.clone();
        std::thread::spawn(move || l2.transition(m, T::T1))
            .join()
            .unwrap();
        assert_eq!(log.allocated_threads(), 2);
        log.clear();
        assert_eq!(log.allocated_threads(), 0);
        // The same OS thread re-registers and the allocator restarts at 1.
        log.transition(m, T::T2);
        assert_eq!(log.allocated_threads(), 1);
        let events = log.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].thread, 1);
        assert_eq!(events[0].seq, 0);
    }

    #[test]
    fn log_as_attributes_thread() {
        let log = EventLog::new();
        log.log_as(42, MonitorId(0), EventKind::MethodStart { method: "m".into() });
        assert_eq!(log.snapshot()[0].thread, 42);
    }

    #[test]
    fn thread_ids_are_dense_per_log() {
        // Ids are allocated per log in first-log order — 1, 2, … — no
        // matter how many threads earlier tests burned through the
        // process-wide token counter.
        let log = EventLog::new();
        let m = log.register_monitor("m");
        log.transition(m, T::T1); // this thread logs first -> id 1
        let l2 = log.clone();
        std::thread::spawn(move || l2.transition(m, T::T1))
            .join()
            .unwrap();
        log.transition(m, T::T2); // same thread keeps its id
        let events = log.snapshot();
        assert_eq!(events[0].thread, 1);
        assert_eq!(events[1].thread, 2);
        assert_eq!(events[2].thread, 1);
        assert_eq!(log.allocated_threads(), 2);
    }

    #[test]
    fn timeline_from_log_reconstructs_wait_and_wake() {
        use jcc_obs::timeline::{EdgeKind, IntervalKind};
        let log = EventLog::new();
        let m = log.register_monitor("buffer");
        // Thread 1 waits; thread 2 notifies and hands the lock over.
        log.log_as(1, m, EventKind::MethodStart { method: "receive".into() });
        log.log_as(1, m, EventKind::Transition(T::T1));
        log.log_as(1, m, EventKind::Transition(T::T2));
        log.log_as(1, m, EventKind::Transition(T::T3));
        log.log_as(2, m, EventKind::MethodStart { method: "send".into() });
        log.log_as(2, m, EventKind::Transition(T::T1));
        log.log_as(2, m, EventKind::Transition(T::T2));
        log.log_as(2, m, EventKind::NotifyIssued { all: true, waiters: 1 });
        log.log_as(1, m, EventKind::Transition(T::T5));
        log.log_as(2, m, EventKind::Transition(T::T4));
        log.log_as(1, m, EventKind::Transition(T::T2));
        log.log_as(1, m, EventKind::Transition(T::T4));
        let t = log.timeline();
        assert_eq!(t.lanes.len(), 2);
        assert_eq!(t.clock, "events");
        let kinds: Vec<IntervalKind> = t.lanes[0].intervals.iter().map(|iv| iv.kind).collect();
        assert!(kinds.contains(&IntervalKind::Waiting), "{t:?}");
        assert!(t.edges.iter().any(|e| e.kind == EdgeKind::NotifyWake));
        assert!(t.edges.iter().any(|e| e.kind == EdgeKind::ReleaseAcquire));
        assert!(t.render_ascii().contains("buffer"));
    }

    #[test]
    fn per_log_ids_are_independent_across_logs() {
        // The same OS thread is id 1 in every fresh log: event logs from
        // different tests/suites can be compared without id drift.
        let a = EventLog::new();
        let b = EventLog::new();
        let m = a.register_monitor("m");
        let n = b.register_monitor("n");
        a.transition(m, T::T1);
        b.transition(n, T::T1);
        assert_eq!(a.snapshot()[0].thread, 1);
        assert_eq!(b.snapshot()[0].thread, 1);
    }

    #[test]
    fn multithreaded_capture_preserves_per_thread_order() {
        let log = EventLog::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = log.clone();
                std::thread::spawn(move || {
                    for j in 0..500usize {
                        l.log(
                            MonitorId(0),
                            EventKind::Marker {
                                method: "m".into(),
                                path: vec![j],
                            },
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 2000);
        assert_eq!(log.drop_count(), 0);
        // seq gap-free and per-thread program order intact.
        let mut next_path: HashMap<u64, usize> = HashMap::new();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            if let EventKind::Marker { path, .. } = &e.kind {
                let expect = next_path.entry(e.thread).or_insert(0);
                assert_eq!(path[0], *expect, "thread {} reordered", e.thread);
                *expect += 1;
            }
        }
        assert_eq!(log.allocated_threads(), 4);
    }

    #[test]
    fn full_ring_drops_and_injects_gap_records() {
        let log = EventLog::new();
        // 16 words = four 4-word transition records.
        log.set_ring_capacity_words(16);
        let m = log.register_monitor("m");
        for _ in 0..10 {
            log.log_as(7, m, EventKind::Transition(T::T1));
        }
        // Four fit, six dropped; the producer never blocked.
        assert_eq!(log.drop_count(), 6);
        let events = log.snapshot();
        assert_eq!(events.len(), 4);
        // Draining freed the ring: the next event is preceded by the gap
        // record carrying the losses, attributed to the gapped thread.
        log.log_as(7, m, EventKind::Transition(T::T2));
        let events = log.snapshot();
        assert_eq!(events.len(), 6);
        assert_eq!(events[4].kind, EventKind::CaptureGap { dropped: 6 });
        assert_eq!(events[4].thread, 7);
        assert_eq!(events[5].kind, EventKind::Transition(T::T2));
        // seq stays dense across the gap.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn sampling_is_seeded_and_deterministic_under_log_as() {
        let run = |shift: u32, seed: u64| -> Vec<Event> {
            let log = EventLog::new();
            log.set_sampling(shift, seed);
            let m = log.register_monitor("m");
            for i in 0..256u64 {
                let t = 1 + (i % 3);
                log.log_as(t, m, EventKind::Transition(T::T2));
                log.log_as(t, m, EventKind::Write { var: format!("v{}", i % 7) });
                log.log_as(t, m, EventKind::Transition(T::T4));
            }
            log.snapshot()
        };
        let a = run(3, 42);
        let b = run(3, 42);
        assert_eq!(a, b, "same seed must keep the same events");
        // Sync events are never sampled out; data events thin out.
        let transitions = a
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Transition(_)))
            .count();
        assert_eq!(transitions, 512);
        let writes = a
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Write { .. }))
            .count();
        assert!(writes < 128, "rate 8 should drop most writes, kept {writes}");
        assert!(writes > 0, "rate 8 should keep some writes");
        // A different seed keeps a different subset.
        let c = run(3, 43);
        assert_ne!(a, c);
        // Shift 0 captures everything.
        let full = run(0, 42);
        assert_eq!(full.len(), 256 * 3);
    }

    #[test]
    fn drain_for_each_streams_without_retaining() {
        let log = EventLog::new();
        let m = log.register_monitor("m");
        for _ in 0..8 {
            log.transition(m, T::T1);
        }
        let mut seen = Vec::new();
        log.drain_for_each(|e| seen.push(e.seq));
        assert_eq!(seen, (0..8).collect::<Vec<u64>>());
        // Streamed events are consumed, not retained…
        assert!(log.snapshot().is_empty());
        // …but still counted, and seq keeps advancing densely.
        assert_eq!(log.len(), 8);
        log.transition(m, T::T2);
        assert_eq!(log.snapshot()[0].seq, 8);
    }
}
