//! The shared event log: every monitor operation, data access and coverage
//! marker, in one global order (per log).
//!
//! Thread identity is **per log**: the first thread to log into an
//! [`EventLog`] gets id 1, the second id 2, and so on, regardless of how
//! many threads earlier tests or suites spun up. (The process-wide token
//! behind [`current_thread_id`] still exists — monitors use it for
//! ownership checks — but it never leaks into logged events, so obs
//! snapshots and cross-test comparisons see stable ids.)
//!
//! When `jcc-obs` recording is enabled, every logged event is bridged into
//! the global metrics registry (`runtime.events`, `runtime.transition.T*`,
//! notify/lost-notification tallies) and, at `trace` level, into the
//! structured trace stream.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use jcc_petri::Transition;

/// Identifies a monitor instance within one [`EventLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MonitorId(pub u64);

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// A process-wide token for the current OS thread, stable for its
/// lifetime. Used by monitors for ownership checks; event logs map it to a
/// dense per-log id (see the module docs), so this value never appears in
/// [`Event::thread`].
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A Figure-1 model transition fired on a monitor.
    Transition(Transition),
    /// The thread issued a notification on the monitor (`all` =
    /// `notifyAll`). The woken threads each log their own
    /// `Transition(T5)`.
    NotifyIssued {
        /// Whether every waiter was woken.
        all: bool,
        /// How many waiters were present when the notification was issued.
        waiters: usize,
    },
    /// A read of a shared variable (for lockset analysis).
    Read {
        /// Variable name.
        var: String,
    },
    /// A write of a shared variable (for lockset analysis).
    Write {
        /// Variable name.
        var: String,
    },
    /// Coverage marker: a component method was entered.
    MethodStart {
        /// Method name.
        method: String,
    },
    /// Coverage marker: a component method returned.
    MethodEnd {
        /// Method name.
        method: String,
    },
    /// Coverage marker: a concurrency statement at `path` was executed.
    Marker {
        /// Method name.
        method: String,
        /// Statement path in `jcc-model` convention.
        path: Vec<usize>,
    },
}

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number within the log (0-based, gap-free).
    pub seq: u64,
    /// The logging thread as a dense per-log id: 1 for the first thread to
    /// log into this [`EventLog`], 2 for the second, … (stable across test
    /// orderings; see the module docs). Events appended with
    /// [`EventLog::log_as`] carry the caller's explicit id instead.
    pub thread: u64,
    /// The monitor involved, if any ([`MonitorId(0)`](MonitorId) is used for
    /// monitor-less events such as markers and unsynchronized accesses).
    pub monitor: MonitorId,
    /// What happened.
    pub kind: EventKind,
}

#[derive(Debug, Default)]
struct LogInner {
    events: Vec<Event>,
    monitor_names: Vec<String>,
    /// Process-wide thread token → dense per-log id, in first-log order.
    thread_ids: HashMap<u64, u64>,
}

/// A shared, append-only event log. Cheap to clone (shared handle).
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    inner: Arc<Mutex<LogInner>>,
}

impl EventLog {
    /// A fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a monitor name, returning its id. Id 0 is reserved for
    /// "no monitor", so the first registration returns `MonitorId(1)`.
    pub fn register_monitor(&self, name: impl Into<String>) -> MonitorId {
        let mut inner = self.inner.lock();
        inner.monitor_names.push(name.into());
        MonitorId(inner.monitor_names.len() as u64)
    }

    /// The registered name of a monitor (`"<none>"` for id 0).
    pub fn monitor_name(&self, id: MonitorId) -> String {
        if id.0 == 0 {
            return "<none>".to_string();
        }
        self.inner.lock().monitor_names[(id.0 - 1) as usize].clone()
    }

    /// Append an event from the current thread. The event's thread id is
    /// the current thread's dense *per-log* id, allocated on first use, so
    /// logs observe ids 1, 2, … in first-log order no matter how many
    /// threads ran earlier in the process.
    pub fn log(&self, monitor: MonitorId, kind: EventKind) {
        let token = current_thread_id();
        let mut inner = self.inner.lock();
        let next = inner.thread_ids.len() as u64 + 1;
        let thread = *inner.thread_ids.entry(token).or_insert(next);
        Self::append(&mut inner, thread, monitor, kind);
    }

    /// Append an event attributed to an explicit thread id (used by the VM,
    /// whose logical threads are not OS threads). Explicit ids bypass the
    /// per-log allocator.
    pub fn log_as(&self, thread: u64, monitor: MonitorId, kind: EventKind) {
        let mut inner = self.inner.lock();
        Self::append(&mut inner, thread, monitor, kind);
    }

    fn append(inner: &mut LogInner, thread: u64, monitor: MonitorId, kind: EventKind) {
        if jcc_obs::enabled() {
            bridge_to_obs(thread, monitor, &kind);
        }
        let seq = inner.events.len() as u64;
        inner.events.push(Event {
            seq,
            thread,
            monitor,
            kind,
        });
    }

    /// Convenience: log a transition.
    pub fn transition(&self, monitor: MonitorId, t: Transition) {
        self.log(monitor, EventKind::Transition(t));
    }

    /// Snapshot of all events so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().events.clone()
    }

    /// Number of events logged.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all events (monitor registrations are kept).
    pub fn clear(&self) {
        self.inner.lock().events.clear();
    }

    /// Count transition events of a given kind.
    pub fn count_transition(&self, t: Transition) -> usize {
        self.inner
            .lock()
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Transition(t))
            .count()
    }

    /// How many distinct threads have logged via [`EventLog::log`] (the
    /// per-log id allocator's high-water mark).
    pub fn allocated_threads(&self) -> usize {
        self.inner.lock().thread_ids.len()
    }

    /// All distinct thread ids appearing in the log, in first-seen order.
    pub fn threads(&self) -> Vec<u64> {
        let inner = self.inner.lock();
        let mut seen = Vec::new();
        for e in &inner.events {
            if !seen.contains(&e.thread) {
                seen.push(e.thread);
            }
        }
        seen
    }

    /// Build a causal schedule timeline from the log: one lane per logged
    /// thread (first-log order), the event sequence number as the clock,
    /// intervals and causality edges derived from the Figure-1 transitions
    /// (see [`jcc_obs::timeline`]). Purely a read of the recorded events —
    /// building a timeline never alters the log.
    pub fn timeline(&self) -> jcc_obs::timeline::Timeline {
        use jcc_obs::timeline::TimelineBuilder;
        let events = self.snapshot();
        let mut b = TimelineBuilder::new("events");
        let mut lanes: HashMap<u64, usize> = HashMap::new();
        for e in &events {
            lanes
                .entry(e.thread)
                .or_insert_with(|| b.lane(&format!("thread-{}", e.thread)));
        }
        for e in &events {
            let lane = lanes[&e.thread];
            let at = e.seq;
            let monitor = self.monitor_name(e.monitor);
            match &e.kind {
                EventKind::Transition(Transition::T1) => b.requests(lane, at, &monitor),
                EventKind::Transition(Transition::T2) => b.acquires(lane, at, &monitor),
                EventKind::Transition(Transition::T3) => b.waits(lane, at, &monitor),
                EventKind::Transition(Transition::T4) => b.releases(lane, at, &monitor),
                EventKind::Transition(Transition::T5) => b.woken(lane, at, &monitor),
                EventKind::NotifyIssued { all, waiters } => {
                    b.notify(lane, at, &monitor, *all, *waiters);
                }
                EventKind::MethodStart { .. } => b.begins(lane, at),
                EventKind::MethodEnd { .. } => b.idles(lane, at),
                EventKind::Read { .. } | EventKind::Write { .. } | EventKind::Marker { .. } => {}
            }
        }
        b.finish(events.len() as u64)
    }
}

/// Fold one runtime event into the global obs registry (and, at `trace`
/// level, the structured trace stream). `NotifyIssued` with zero waiters is
/// the *lost notification* shape — a wake-up nobody was there to receive —
/// so it gets its own tally.
fn bridge_to_obs(thread: u64, monitor: MonitorId, kind: &EventKind) {
    let reg = jcc_obs::global();
    reg.counter("runtime.events").inc();
    match kind {
        EventKind::Transition(t) => {
            reg.counter(&format!("runtime.transition.{t}")).inc();
            if *t == Transition::T3 {
                reg.counter("runtime.waits").inc();
            }
        }
        EventKind::NotifyIssued { all, waiters } => {
            reg.counter("runtime.notify.issued").inc();
            if *all {
                reg.counter("runtime.notify.all").inc();
            }
            if *waiters == 0 {
                reg.counter("runtime.notify.lost").inc();
            }
        }
        EventKind::Read { .. } => reg.counter("runtime.reads").inc(),
        EventKind::Write { .. } => reg.counter("runtime.writes").inc(),
        EventKind::MethodStart { .. }
        | EventKind::MethodEnd { .. }
        | EventKind::Marker { .. } => reg.counter("runtime.markers").inc(),
    }
    if jcc_obs::trace_enabled() {
        jcc_obs::trace_event(
            "runtime.event",
            vec![
                ("thread".to_string(), thread.to_string()),
                ("monitor".to_string(), monitor.0.to_string()),
                ("kind".to_string(), format!("{kind:?}")),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_petri::Transition as T;

    #[test]
    fn sequence_numbers_are_gap_free() {
        let log = EventLog::new();
        let m = log.register_monitor("m");
        for _ in 0..5 {
            log.transition(m, T::T1);
        }
        let events = log.snapshot();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        assert_eq!(log.len(), 5);
    }

    #[test]
    fn monitor_names_registered() {
        let log = EventLog::new();
        let a = log.register_monitor("alpha");
        let b = log.register_monitor("beta");
        assert_eq!(log.monitor_name(a), "alpha");
        assert_eq!(log.monitor_name(b), "beta");
        assert_eq!(log.monitor_name(MonitorId(0)), "<none>");
        assert_ne!(a, b);
    }

    #[test]
    fn thread_ids_distinct_across_threads() {
        let log = EventLog::new();
        let m = log.register_monitor("m");
        let l2 = log.clone();
        let h = std::thread::spawn(move || {
            l2.transition(m, T::T1);
        });
        h.join().unwrap();
        log.transition(m, T::T1);
        let threads = log.threads();
        assert_eq!(threads.len(), 2);
        assert_ne!(threads[0], threads[1]);
    }

    #[test]
    fn count_and_clear() {
        let log = EventLog::new();
        let m = log.register_monitor("m");
        log.transition(m, T::T1);
        log.transition(m, T::T2);
        log.transition(m, T::T1);
        assert_eq!(log.count_transition(T::T1), 2);
        assert_eq!(log.count_transition(T::T4), 0);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.monitor_name(m), "m");
    }

    #[test]
    fn log_as_attributes_thread() {
        let log = EventLog::new();
        log.log_as(42, MonitorId(0), EventKind::MethodStart { method: "m".into() });
        assert_eq!(log.snapshot()[0].thread, 42);
    }

    #[test]
    fn thread_ids_are_dense_per_log() {
        // Ids are allocated per log in first-log order — 1, 2, … — no
        // matter how many threads earlier tests burned through the
        // process-wide token counter.
        let log = EventLog::new();
        let m = log.register_monitor("m");
        log.transition(m, T::T1); // this thread logs first -> id 1
        let l2 = log.clone();
        std::thread::spawn(move || l2.transition(m, T::T1))
            .join()
            .unwrap();
        log.transition(m, T::T2); // same thread keeps its id
        let events = log.snapshot();
        assert_eq!(events[0].thread, 1);
        assert_eq!(events[1].thread, 2);
        assert_eq!(events[2].thread, 1);
        assert_eq!(log.allocated_threads(), 2);
    }

    #[test]
    fn timeline_from_log_reconstructs_wait_and_wake() {
        use jcc_obs::timeline::{EdgeKind, IntervalKind};
        let log = EventLog::new();
        let m = log.register_monitor("buffer");
        // Thread 1 waits; thread 2 notifies and hands the lock over.
        log.log_as(1, m, EventKind::MethodStart { method: "receive".into() });
        log.log_as(1, m, EventKind::Transition(T::T1));
        log.log_as(1, m, EventKind::Transition(T::T2));
        log.log_as(1, m, EventKind::Transition(T::T3));
        log.log_as(2, m, EventKind::MethodStart { method: "send".into() });
        log.log_as(2, m, EventKind::Transition(T::T1));
        log.log_as(2, m, EventKind::Transition(T::T2));
        log.log_as(2, m, EventKind::NotifyIssued { all: true, waiters: 1 });
        log.log_as(1, m, EventKind::Transition(T::T5));
        log.log_as(2, m, EventKind::Transition(T::T4));
        log.log_as(1, m, EventKind::Transition(T::T2));
        log.log_as(1, m, EventKind::Transition(T::T4));
        let t = log.timeline();
        assert_eq!(t.lanes.len(), 2);
        assert_eq!(t.clock, "events");
        let kinds: Vec<IntervalKind> = t.lanes[0].intervals.iter().map(|iv| iv.kind).collect();
        assert!(kinds.contains(&IntervalKind::Waiting), "{t:?}");
        assert!(t.edges.iter().any(|e| e.kind == EdgeKind::NotifyWake));
        assert!(t.edges.iter().any(|e| e.kind == EdgeKind::ReleaseAcquire));
        assert!(t.render_ascii().contains("buffer"));
    }

    #[test]
    fn per_log_ids_are_independent_across_logs() {
        // The same OS thread is id 1 in every fresh log: event logs from
        // different tests/suites can be compared without id drift.
        let a = EventLog::new();
        let b = EventLog::new();
        let m = a.register_monitor("m");
        let n = b.register_monitor("n");
        a.transition(m, T::T1);
        b.transition(n, T::T1);
        assert_eq!(a.snapshot()[0].thread, 1);
        assert_eq!(b.snapshot()[0].thread, 1);
    }
}
