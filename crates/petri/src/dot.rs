//! Graphviz DOT rendering of nets, markings and reachability graphs —
//! the tooling behind regenerating Figure 1.

use std::fmt::Write as _;

use crate::net::{Marking, Net};
use crate::reach::ReachGraph;

/// Render `net` with `marking` as a DOT digraph in the paper's visual
/// conventions: places as circles (token count shown as bullet dots for
/// small counts), transitions as bars (boxes).
pub fn net_to_dot(net: &Net, marking: &Marking) -> String {
    let mut out = String::new();
    out.push_str("digraph petri {\n  rankdir=TB;\n");
    for p in net.places() {
        let tokens = marking.tokens(p);
        let bullet = match tokens {
            0 => String::new(),
            n if n <= 4 => "\\n".to_string() + &"●".repeat(n as usize),
            n => format!("\\n{n}"),
        };
        let _ = writeln!(
            out,
            "  \"{}\" [shape=circle, label=\"{}{}\"];",
            net.place_name(p),
            net.place_name(p),
            bullet
        );
    }
    for t in net.transitions() {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=box, height=0.1, style=filled, fillcolor=black, fontcolor=white];",
            net.transition_name(t)
        );
        for &(p, w) in net.inputs(t) {
            let label = if w == 1 {
                String::new()
            } else {
                format!(" [label=\"{w}\"]")
            };
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\"{};",
                net.place_name(p),
                net.transition_name(t),
                label
            );
        }
        for &(p, w) in net.outputs(t) {
            let label = if w == 1 {
                String::new()
            } else {
                format!(" [label=\"{w}\"]")
            };
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\"{};",
                net.transition_name(t),
                net.place_name(p),
                label
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Render a reachability graph as DOT: states labelled by nonzero places.
pub fn reach_to_dot(net: &Net, graph: &ReachGraph) -> String {
    let mut out = String::new();
    out.push_str("digraph reach {\n  rankdir=LR;\n");
    for (i, m) in graph.markings().iter().enumerate() {
        let label = marking_label(net, m);
        let style = if i == 0 { ", penwidth=2" } else { "" };
        let _ = writeln!(out, "  s{i} [shape=ellipse, label=\"{label}\"{style}];");
    }
    for (i, _) in graph.markings().iter().enumerate() {
        for &(t, next) in graph.successors(i) {
            let _ = writeln!(
                out,
                "  s{i} -> s{next} [label=\"{}\"];",
                net.transition_name(t)
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Human-readable marking label: comma-separated `place×count` for marked
/// places, `∅` for the empty marking.
pub fn marking_label(net: &Net, m: &Marking) -> String {
    let parts: Vec<String> = net
        .places()
        .filter(|&p| m.tokens(p) > 0)
        .map(|p| {
            let n = m.tokens(p);
            if n == 1 {
                net.place_name(p).to_string()
            } else {
                format!("{}×{}", net.place_name(p), n)
            }
        })
        .collect();
    if parts.is_empty() {
        "∅".to_string()
    } else {
        parts.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::java_model::JavaNet;
    use crate::reach::{ReachGraph, ReachLimits};

    #[test]
    fn figure_1_dot_mentions_all_nodes() {
        let j = JavaNet::new(1);
        let dot = net_to_dot(j.net(), &j.net().initial_marking());
        for node in ["\"A\"", "\"B\"", "\"C\"", "\"D\"", "\"E\"", "\"T1\"", "\"T5\""] {
            assert!(dot.contains(node), "missing {node} in DOT output");
        }
        assert!(dot.starts_with("digraph petri {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn initial_tokens_rendered_as_bullets() {
        let j = JavaNet::new(1);
        let dot = net_to_dot(j.net(), &j.net().initial_marking());
        // A and E carry one token each.
        assert_eq!(dot.matches('●').count(), 2);
    }

    #[test]
    fn reach_dot_has_one_node_per_state() {
        let j = JavaNet::new(1);
        let g = ReachGraph::explore(j.net(), ReachLimits::default());
        let dot = reach_to_dot(j.net(), &g);
        for i in 0..g.stats().states {
            assert!(dot.contains(&format!("s{i} [")));
        }
    }

    #[test]
    fn marking_labels() {
        let j = JavaNet::new(1);
        let net = j.net();
        let m0 = net.initial_marking();
        assert_eq!(marking_label(net, &m0), "E,A");
        let empty = Marking(vec![0; net.num_places()].into_boxed_slice());
        assert_eq!(marking_label(net, &empty), "∅");
    }

    #[test]
    fn large_token_counts_render_numerically() {
        use crate::net::NetBuilder;
        let mut b = NetBuilder::new();
        b.place("big", 10);
        let net = b.build().unwrap();
        let dot = net_to_dot(&net, &net.initial_marking());
        assert!(dot.contains("big\\n10"));
        assert_eq!(marking_label(&net, &net.initial_marking()), "big×10");
    }
}
