//! Shared parallel-execution primitives: the [`Parallelism`] knob threaded
//! through every exploration config in the workspace, and a deterministic
//! [`parallel_map`] used to fan independent work items across scoped
//! worker threads.
//!
//! Design rules (see DESIGN.md §4 "Parallel exploration"):
//!
//! * `threads = 1` must take the *existing sequential code path* — no
//!   thread is ever spawned, so single-threaded behaviour is bit-for-bit
//!   what it was before parallelism existed.
//! * Parallel results must be deterministic: work is partitioned by item
//!   index (never by completion order) and reassembled positionally, so
//!   the output of [`parallel_map`] is independent of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads exploration fans out across.
///
/// `threads = 1` selects the sequential code path everywhere; any higher
/// value enables the parallel engines. The default is the machine's
/// available core count, so parallelism scales with the hardware without
/// configuration — results are identical either way by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Number of worker threads (>= 1).
    pub threads: usize,
}

impl Parallelism {
    /// Explicit thread count (clamped up to 1).
    pub fn with_threads(threads: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
        }
    }

    /// The sequential configuration (`threads = 1`).
    pub fn sequential() -> Self {
        Parallelism { threads: 1 }
    }

    /// One worker per available core.
    pub fn available() -> Self {
        Parallelism {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// True when this configuration takes the sequential path.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::available()
    }
}

/// How many frontier states a parallel worker pops from its own queue (and
/// steals from a victim) per lock acquisition.
///
/// The original fixed sizes (8 own / 4 steal) starve the steal path on
/// small frontiers: one worker drains its whole queue in a few batched
/// pops before anyone else sees work, so `petri.reach.steals` stays
/// near zero and the frontier never spreads. `Adaptive` takes at most
/// half of what is visible, leaving the rest stealable. Batch sizes only
/// affect scheduling — the canonically renumbered result graph is
/// byte-identical under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// Take `min(cap, max(1, len/2))` states per pop: half the visible
    /// queue, capped at the old fixed sizes (8 own / 4 steal).
    #[default]
    Adaptive,
    /// Fixed batch sizes (clamped up to 1 each).
    Fixed {
        /// States popped from the worker's own queue per lock hold.
        own: usize,
        /// States stolen from a victim's queue per lock hold.
        steal: usize,
    },
}

/// Cap on adaptive own-queue batches (the old fixed own size).
pub const OWN_BATCH_CAP: usize = 8;
/// Cap on adaptive steal batches (the old fixed steal size).
pub const STEAL_BATCH_CAP: usize = 4;

impl BatchPolicy {
    /// The legacy fixed 8/4 policy.
    pub const FIXED_LEGACY: BatchPolicy = BatchPolicy::Fixed {
        own: OWN_BATCH_CAP,
        steal: STEAL_BATCH_CAP,
    };

    /// How many states to pop from the worker's own queue, given its
    /// current visible length.
    #[inline]
    pub fn own_batch(self, queue_len: usize) -> usize {
        match self {
            BatchPolicy::Adaptive => (queue_len / 2).clamp(1, OWN_BATCH_CAP),
            BatchPolicy::Fixed { own, .. } => own.max(1),
        }
    }

    /// How many states to steal from a victim queue of the given length.
    #[inline]
    pub fn steal_batch(self, victim_len: usize) -> usize {
        match self {
            BatchPolicy::Adaptive => (victim_len / 2).clamp(1, STEAL_BATCH_CAP),
            BatchPolicy::Fixed { steal, .. } => steal.max(1),
        }
    }
}

/// Map `f` over `items`, fanning the calls across `parallelism.threads`
/// scoped workers. The output is positionally identical to
/// `items.iter().map(f).collect()` regardless of thread count or
/// scheduling: workers claim item *indices* from a shared atomic cursor
/// and write results back into their item's slot.
///
/// `threads = 1` (or fewer than two items) runs the plain sequential map
/// on the calling thread.
pub fn parallel_map<T, U, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if jcc_obs::enabled() {
        let reg = jcc_obs::global();
        reg.counter("petri.parallel_map.calls").inc();
        reg.counter("petri.parallel_map.items")
            .add(items.len() as u64);
    }
    let workers = parallelism.threads.min(items.len().max(1));
    if workers <= 1 {
        let _span = jcc_obs::span!("petri.parallel_map.sequential");
        return items.iter().map(f).collect();
    }
    let _span = jcc_obs::span!("petri.parallel_map");

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<U>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || Mutex::new(None));

    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_parallelism_is_one_thread() {
        assert!(Parallelism::sequential().is_sequential());
        assert_eq!(Parallelism::with_threads(0).threads, 1);
        assert!(Parallelism::available().threads >= 1);
    }

    #[test]
    fn parallel_map_matches_sequential_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let par = parallel_map(Parallelism::with_threads(threads), &items, |x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(Parallelism::with_threads(4), &empty, |x| *x).is_empty());
        assert_eq!(
            parallel_map(Parallelism::with_threads(4), &[7u32], |x| x + 1),
            vec![8]
        );
    }
}
