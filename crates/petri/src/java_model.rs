//! The paper's Figure-1 net — one thread interacting with an object lock —
//! and its composition for N threads sharing the lock.
//!
//! Places (per thread):
//!
//! * `A` — executing outside any synchronized block,
//! * `B` — requesting entry to a critical section,
//! * `C` — executing inside the critical section (holds the lock),
//! * `D` — in the *wait* state.
//!
//! Shared place `E` — the object lock is available.
//!
//! Transitions (per thread): `T1: A→B`, `T2: B+E→C`, `T3: C→D+E`,
//! `T4: C→A+E`, `T5: D→B`.
//!
//! The composition keeps one `E` place and replicates `A`–`D`/`T1`–`T5`
//! per thread, which is exactly how the paper describes testing a component
//! "under the assumption of multiple thread access". Note that the plain
//! net over-approximates Java in one respect the paper calls out with the
//! dashed arc into T5: a waiting thread cannot wake *itself*; in the net,
//! `T5` is structurally enabled whenever `D` is marked. The
//! [`JavaNet::notified_reach_limits`] helper and the VM crate impose the
//! extra condition when it matters.

use crate::net::{Marking, Net, NetBuilder, PlaceId, TransId};
use crate::transition::Transition;

/// The four per-thread places of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadPlace {
    /// Executing outside a synchronized block.
    Outside,
    /// Requesting an object lock (blocked at the monitor boundary).
    Requesting,
    /// Executing in the critical section, holding the lock.
    Critical,
    /// Suspended in the wait state.
    Waiting,
}

impl ThreadPlace {
    /// All four per-thread places, in A..D order.
    pub const ALL: [ThreadPlace; 4] = [
        ThreadPlace::Outside,
        ThreadPlace::Requesting,
        ThreadPlace::Critical,
        ThreadPlace::Waiting,
    ];

    /// The single-letter name Figure 1 uses.
    pub fn letter(self) -> char {
        match self {
            ThreadPlace::Outside => 'A',
            ThreadPlace::Requesting => 'B',
            ThreadPlace::Critical => 'C',
            ThreadPlace::Waiting => 'D',
        }
    }
}

/// The Figure-1 net for `n` threads sharing one object lock, with typed
/// access to its places and transitions.
#[derive(Debug, Clone)]
pub struct JavaNet {
    net: Net,
    threads: usize,
    lock_place: PlaceId,
    // thread-major: place_ids[thread][place]
    place_ids: Vec<[PlaceId; 4]>,
    // thread-major: trans_ids[thread][transition]
    trans_ids: Vec<[TransId; 5]>,
}

impl JavaNet {
    /// Build the model for `threads` threads (Figure 1 itself is
    /// `JavaNet::new(1)`). Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "the model needs at least one thread");
        let mut b = NetBuilder::new();
        let lock_place = b.place("E", 1);
        let mut place_ids = Vec::with_capacity(threads);
        let mut trans_ids = Vec::with_capacity(threads);
        for th in 0..threads {
            let suffix = |letter: char| {
                if threads == 1 {
                    letter.to_string()
                } else {
                    format!("{letter}{th}")
                }
            };
            let a = b.place(suffix('A'), 1);
            let bb = b.place(suffix('B'), 0);
            let c = b.place(suffix('C'), 0);
            let d = b.place(suffix('D'), 0);
            let tname = |i: usize| {
                if threads == 1 {
                    format!("T{i}")
                } else {
                    format!("T{i}.{th}")
                }
            };
            let t1 = b.transition(tname(1), &[a], &[bb]);
            let t2 = b.transition(tname(2), &[bb, lock_place], &[c]);
            let t3 = b.transition(tname(3), &[c], &[d, lock_place]);
            let t4 = b.transition(tname(4), &[c], &[a, lock_place]);
            let t5 = b.transition(tname(5), &[d], &[bb]);
            place_ids.push([a, bb, c, d]);
            trans_ids.push([t1, t2, t3, t4, t5]);
        }
        let net = b.build().expect("generated names are unique");
        JavaNet {
            net,
            threads,
            lock_place,
            place_ids,
            trans_ids,
        }
    }

    /// The underlying generic net.
    pub fn net(&self) -> &Net {
        &self.net
    }

    /// The thread-permutation symmetry of this composition: all threads
    /// are identical copies of Figure 1, so their four-place lanes
    /// (contiguous `A..D` runs after the shared `E` at index 0) are
    /// interchangeable. Feed this to
    /// [`crate::reach::ReachLimits::reduction`] to explore the quotient.
    pub fn thread_symmetry(&self) -> crate::reduce::SymmetrySpec {
        crate::reduce::SymmetrySpec {
            first_place: 1,
            lanes: self.threads as u32,
            lane_width: 4,
        }
    }

    /// Number of modeled threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared lock-availability place `E`.
    pub fn lock_place(&self) -> PlaceId {
        self.lock_place
    }

    /// The place id for `place` of `thread`.
    pub fn place(&self, thread: usize, place: ThreadPlace) -> PlaceId {
        let idx = match place {
            ThreadPlace::Outside => 0,
            ThreadPlace::Requesting => 1,
            ThreadPlace::Critical => 2,
            ThreadPlace::Waiting => 3,
        };
        self.place_ids[thread][idx]
    }

    /// The transition id for model transition `t` of `thread`.
    pub fn transition(&self, thread: usize, t: Transition) -> TransId {
        self.trans_ids[thread][t.index()]
    }

    /// Which thread and model transition a raw [`TransId`] belongs to.
    pub fn classify_transition(&self, id: TransId) -> Option<(usize, Transition)> {
        for (th, row) in self.trans_ids.iter().enumerate() {
            if let Some(i) = row.iter().position(|&t| t == id) {
                return Some((th, Transition::from_index(i)));
            }
        }
        None
    }

    /// Where `thread` currently is in `marking`, if it is in exactly one
    /// place (always true for markings reachable from the initial one).
    pub fn thread_state(&self, marking: &Marking, thread: usize) -> Option<ThreadPlace> {
        let mut found = None;
        for place in ThreadPlace::ALL {
            if marking.tokens(self.place(thread, place)) > 0 {
                if found.is_some() {
                    return None;
                }
                found = Some(place);
            }
        }
        found
    }

    /// True if the object lock is available in `marking`.
    pub fn lock_available(&self, marking: &Marking) -> bool {
        marking.tokens(self.lock_place) > 0
    }

    /// The mutual-exclusion P-invariant: `E + Σᵢ Cᵢ` is conserved (and equals
    /// 1 from the initial marking), so at most one thread is ever in its
    /// critical section. Returns the weight vector.
    pub fn mutex_invariant(&self) -> Vec<i64> {
        let mut w = vec![0i64; self.net.num_places()];
        w[self.lock_place.index()] = 1;
        for th in 0..self.threads {
            w[self.place(th, ThreadPlace::Critical).index()] = 1;
        }
        w
    }

    /// The per-thread conservation P-invariant: `Aᵢ + Bᵢ + Cᵢ + Dᵢ` is
    /// conserved (equals 1), i.e. each thread is always in exactly one state.
    pub fn thread_invariant(&self, thread: usize) -> Vec<i64> {
        let mut w = vec![0i64; self.net.num_places()];
        for place in ThreadPlace::ALL {
            w[self.place(thread, place).index()] = 1;
        }
        w
    }

    /// A firing filter encoding the dashed-arc side condition of Figure 1:
    /// a thread's `T5` may only fire when *another* thread is inside the
    /// critical section (only a lock-holding thread can call `notify`).
    /// Pass to [`crate::reach::ReachGraph::explore_filtered`].
    pub fn notify_side_condition(&self) -> impl Fn(&Marking, TransId) -> bool + '_ {
        move |marking, id| match self.classify_transition(id) {
            Some((th, Transition::T5)) => (0..self.threads).any(|other| {
                other != th
                    && self.thread_state(marking, other) == Some(ThreadPlace::Critical)
            }),
            _ => true,
        }
    }

    /// True in `marking` if no thread can ever make progress again under the
    /// dashed-arc side condition ("a thread in the wait state cannot wake
    /// itself", and only a thread inside the monitor can notify).
    ///
    /// Under the net's invariants (each thread in exactly one of A–D, lock
    /// available iff no thread in C), a thread in `A`, `B` or `C` can always
    /// progress eventually, so the only dead configuration is *every* thread
    /// suspended in `D` — the model-level picture of the paper's FF-T5 "no
    /// other thread calls notify whilst this thread is in the wait state"
    /// (including the one-thread wait-forever case).
    pub fn all_threads_stuck(&self, marking: &Marking) -> bool {
        (0..self.threads)
            .all(|th| self.thread_state(marking, th) == Some(ThreadPlace::Waiting))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::Transition as T;

    #[test]
    fn single_thread_structure_matches_figure_1() {
        let j = JavaNet::new(1);
        let net = j.net();
        assert_eq!(net.num_places(), 5);
        assert_eq!(net.num_transitions(), 5);
        for (name, tokens) in [("A", 1), ("B", 0), ("C", 0), ("D", 0), ("E", 1)] {
            let p = net.place_by_name(name).expect(name);
            assert_eq!(net.initial_marking().tokens(p), tokens, "place {name}");
        }
    }

    #[test]
    fn single_thread_firing_cycle() {
        let j = JavaNet::new(1);
        let net = j.net();
        let m0 = net.initial_marking();
        // T1: A -> B
        let m1 = net.fire(&m0, j.transition(0, T::T1)).unwrap();
        assert_eq!(j.thread_state(&m1, 0), Some(ThreadPlace::Requesting));
        assert!(j.lock_available(&m1));
        // T2: B + E -> C
        let m2 = net.fire(&m1, j.transition(0, T::T2)).unwrap();
        assert_eq!(j.thread_state(&m2, 0), Some(ThreadPlace::Critical));
        assert!(!j.lock_available(&m2));
        // T3: C -> D + E
        let m3 = net.fire(&m2, j.transition(0, T::T3)).unwrap();
        assert_eq!(j.thread_state(&m3, 0), Some(ThreadPlace::Waiting));
        assert!(j.lock_available(&m3));
        // T5: D -> B
        let m4 = net.fire(&m3, j.transition(0, T::T5)).unwrap();
        assert_eq!(j.thread_state(&m4, 0), Some(ThreadPlace::Requesting));
        // T2 then T4 returns to the initial marking.
        let m5 = net.fire(&m4, j.transition(0, T::T2)).unwrap();
        let m6 = net.fire(&m5, j.transition(0, T::T4)).unwrap();
        assert_eq!(m6, m0);
    }

    #[test]
    fn lock_blocks_second_thread() {
        let j = JavaNet::new(2);
        let net = j.net();
        let m0 = net.initial_marking();
        let m = net.fire(&m0, j.transition(0, T::T1)).unwrap();
        let m = net.fire(&m, j.transition(0, T::T2)).unwrap();
        let m = net.fire(&m, j.transition(1, T::T1)).unwrap();
        // Thread 1 requests but cannot acquire: E is empty.
        assert!(!net.enabled(&m, j.transition(1, T::T2)));
        // After thread 0 releases, thread 1 can acquire.
        let m = net.fire(&m, j.transition(0, T::T4)).unwrap();
        assert!(net.enabled(&m, j.transition(1, T::T2)));
    }

    #[test]
    fn classify_transition_roundtrip() {
        let j = JavaNet::new(3);
        for th in 0..3 {
            for t in T::ALL {
                let id = j.transition(th, t);
                assert_eq!(j.classify_transition(id), Some((th, t)));
            }
        }
    }

    #[test]
    fn invariants_hold_along_a_run() {
        let j = JavaNet::new(2);
        let net = j.net();
        let mutex = j.mutex_invariant();
        let th0 = j.thread_invariant(0);
        let th1 = j.thread_invariant(1);
        let weigh = |m: &Marking, w: &[i64]| -> i64 {
            m.0.iter()
                .zip(w)
                .map(|(&t, &wi)| i64::from(t) * wi)
                .sum()
        };
        let mut m = net.initial_marking();
        assert_eq!(weigh(&m, &mutex), 1);
        let seq = [
            j.transition(0, T::T1),
            j.transition(1, T::T1),
            j.transition(0, T::T2),
            j.transition(0, T::T3),
            j.transition(1, T::T2),
            j.transition(0, T::T5),
            j.transition(1, T::T4),
            j.transition(0, T::T2),
            j.transition(0, T::T4),
        ];
        for t in seq {
            m = net.fire(&m, t).unwrap();
            assert_eq!(weigh(&m, &mutex), 1, "mutex invariant");
            assert_eq!(weigh(&m, &th0), 1, "thread 0 conservation");
            assert_eq!(weigh(&m, &th1), 1, "thread 1 conservation");
        }
    }

    #[test]
    fn stuck_detection_waiting_with_no_notifier() {
        // Single thread waits: nobody can ever notify it (the paper's FF-T5
        // "only one thread in the system and thus waits forever").
        let j = JavaNet::new(1);
        let net = j.net();
        let m = net.fire(&net.initial_marking(), j.transition(0, T::T1)).unwrap();
        let m = net.fire(&m, j.transition(0, T::T2)).unwrap();
        let m = net.fire(&m, j.transition(0, T::T3)).unwrap();
        // In the raw net T5 is structurally enabled; under the dashed-arc
        // side condition the lone waiting thread can never be woken.
        assert_eq!(j.thread_state(&m, 0), Some(ThreadPlace::Waiting));
        assert!(j.all_threads_stuck(&m));
        assert!(!j.all_threads_stuck(&net.initial_marking()));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = JavaNet::new(0);
    }
}
