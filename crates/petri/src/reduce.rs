//! State-space reduction: thread-permutation symmetry quotienting and
//! ample-set (strong stubborn set) partial-order reduction.
//!
//! Both reductions are *sound for deadlock detection*: the reduced
//! reachability graph contains every reachable dead marking (ample sets)
//! or one canonical representative of every orbit of dead markings
//! (symmetry), so the deadlock verdicts the Table-1 classification rests
//! on are preserved. They are *not* exhaustive — edge counts, state
//! counts and the bound witness `max_tokens_seen` cover only the explored
//! quotient — which is exactly the trade the next-order-of-magnitude
//! throughput comes from.
//!
//! * [`SymmetrySpec`] describes a block of interchangeable *lanes* —
//!   contiguous, equal-width runs of places, one per modeled thread, as
//!   laid out by [`crate::java_model::JavaNet`] (shared lock place `E`
//!   first, then four places per thread). Swapping two lanes of a marking
//!   maps reachable states to reachable states whenever the lane
//!   permutation is a net automorphism, which
//!   [`SymmetrySpec::is_automorphism`] verifies structurally before an
//!   exploration trusts the spec. Canonicalization sorts the lanes, so
//!   every orbit of thread-permuted markings collapses to one
//!   representative before dedup.
//! * [`StubbornSets`] computes, per marking, a deterministic *ample*
//!   subset of the enabled transitions with Valmari's strong-stubborn-set
//!   closure: an enabled member drags in every transition competing for
//!   its input tokens; a disabled member drags in the producers of one
//!   insufficient input place. Firing only the ample subset provably
//!   reaches every deadlock the full expansion reaches.
//!
//! [`Reduction`] packages the two knobs and rides inside
//! [`crate::reach::ReachLimits`] (it is `Copy`, so limits stay `Copy`).

use fxhash::FxHashMap;

use crate::net::{Marking, Net, TransId};
use crate::state::PackedMarking;

/// A block of interchangeable per-thread place lanes: `lanes` runs of
/// `lane_width` contiguous places starting at `first_place`. Swapping any
/// two lanes must map the net onto itself (checked by
/// [`SymmetrySpec::is_automorphism`]); places outside the block (shared
/// lock places, buffers) are fixed points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymmetrySpec {
    /// Index of the first place of lane 0.
    pub first_place: u32,
    /// Number of interchangeable lanes (modeled threads).
    pub lanes: u32,
    /// Places per lane.
    pub lane_width: u32,
}

impl SymmetrySpec {
    /// One past the last place covered by the lane block.
    #[inline]
    pub fn end_place(&self) -> usize {
        self.first_place as usize + (self.lanes as usize) * (self.lane_width as usize)
    }

    /// True when every adjacent lane transposition is an automorphism of
    /// `net`: the lane block is in bounds, the initial marking is
    /// lane-uniform, and the transition multiset is invariant under the
    /// place remapping. Adjacent transpositions generate the full
    /// symmetric group on lanes, so this suffices for every permutation.
    pub fn is_automorphism(&self, net: &Net) -> bool {
        let (first, n, w) = (
            self.first_place as usize,
            self.lanes as usize,
            self.lane_width as usize,
        );
        if n == 0 || w == 0 || self.end_place() > net.num_places() {
            return false;
        }
        if n == 1 {
            return true; // the trivial group
        }
        let m0 = net.initial_marking();
        let lane0 = &m0.0[first..first + w];
        for k in 1..n {
            if &m0.0[first + k * w..first + (k + 1) * w] != lane0 {
                return false;
            }
        }
        // Sorted-arc signature of a transition under a place remapping.
        type Sig = (Vec<(usize, u32)>, Vec<(usize, u32)>);
        let sig = |t: TransId, map: &dyn Fn(usize) -> usize| -> Sig {
            let remap = |arcs: &[(crate::net::PlaceId, u32)]| {
                let mut v: Vec<(usize, u32)> =
                    arcs.iter().map(|&(p, wt)| (map(p.index()), wt)).collect();
                v.sort_unstable();
                v
            };
            (remap(net.inputs(t)), remap(net.outputs(t)))
        };
        let mut identity: FxHashMap<Sig, i64> = FxHashMap::default();
        for t in net.transitions() {
            *identity.entry(sig(t, &|p| p)).or_insert(0) += 1;
        }
        for g in 0..n - 1 {
            let map = |p: usize| -> usize {
                if p < first || p >= first + n * w {
                    return p;
                }
                let (lane, off) = ((p - first) / w, (p - first) % w);
                let swapped = match lane {
                    l if l == g => g + 1,
                    l if l == g + 1 => g,
                    l => l,
                };
                first + swapped * w + off
            };
            let mut counts = identity.clone();
            for t in net.transitions() {
                match counts.get_mut(&sig(t, &map)) {
                    Some(c) => *c -= 1,
                    None => return false,
                }
            }
            if counts.values().any(|&c| c != 0) {
                return false;
            }
        }
        true
    }

    /// Canonical representative of `m`'s orbit under lane permutation:
    /// lanes sorted ascending by their place-order byte sequence. Places
    /// outside the lane block are untouched.
    #[inline]
    pub fn canonicalize_packed(&self, m: PackedMarking) -> PackedMarking {
        let (first, n, w) = (
            self.first_place as usize,
            self.lanes as usize,
            self.lane_width as usize,
        );
        // Lane key: first place in the most significant byte, so numeric
        // order equals lexicographic place order (matching the wide path).
        let mut keys = [0u64; crate::state::MAX_PACKED_PLACES];
        for (k, key) in keys.iter_mut().enumerate().take(n) {
            for j in 0..w {
                *key = (*key << 8) | ((m.0 >> (8 * (first + k * w + j))) & 0xff);
            }
        }
        keys[..n].sort_unstable();
        let mut block = 0u64;
        for (k, &key) in keys.iter().enumerate().take(n) {
            let mut key = key;
            for j in (0..w).rev() {
                block |= (key & 0xff) << (8 * (first + k * w + j));
                key >>= 8;
            }
        }
        let mut mask = 0u64;
        for p in first..first + n * w {
            mask |= 0xffu64 << (8 * p);
        }
        PackedMarking((m.0 & !mask) | block)
    }

    /// Canonicalize an owned marking (test/bench convenience; the engines
    /// go through [`LaneCanon`] to avoid per-state allocation).
    pub fn canonicalize_marking(&self, m: &Marking) -> Marking {
        let mut tokens = m.0.to_vec();
        let mut canon = LaneCanon::new(*self);
        canon.canonicalize(&mut tokens);
        Marking(tokens.into_boxed_slice())
    }
}

/// Reusable scratch for sorting the lanes of wide (unpacked) markings.
#[derive(Debug, Clone)]
pub struct LaneCanon {
    spec: SymmetrySpec,
    order: Vec<u32>,
    buf: Vec<u32>,
}

impl LaneCanon {
    /// Scratch for canonicalizing markings under `spec`.
    pub fn new(spec: SymmetrySpec) -> LaneCanon {
        LaneCanon {
            spec,
            order: Vec::with_capacity(spec.lanes as usize),
            buf: Vec::with_capacity(spec.end_place() - spec.first_place as usize),
        }
    }

    /// Sort the lane block of `tokens` in place. Returns `true` when the
    /// marking changed (it was not its orbit's representative).
    pub fn canonicalize(&mut self, tokens: &mut [u32]) -> bool {
        let (first, n, w) = (
            self.spec.first_place as usize,
            self.spec.lanes as usize,
            self.spec.lane_width as usize,
        );
        if n <= 1 || w == 0 {
            return false;
        }
        self.order.clear();
        self.order.extend(0..n as u32);
        let lane = |k: u32| {
            let start = first + k as usize * w;
            start..start + w
        };
        self.order
            .sort_unstable_by(|&a, &b| tokens[lane(a)].cmp(&tokens[lane(b)]));
        self.buf.clear();
        for &k in &self.order {
            self.buf.extend_from_slice(&tokens[lane(k)]);
        }
        let block = &mut tokens[first..first + n * w];
        if block == &self.buf[..] {
            return false;
        }
        block.copy_from_slice(&self.buf);
        true
    }
}

/// The reduction knobs of one exploration. `Copy`, so
/// [`crate::reach::ReachLimits`] stays `Copy`. The default is everything
/// off: existing callers keep exhaustive semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Reduction {
    /// Expand only a deterministic ample subset of the enabled
    /// transitions per state (strong stubborn sets — preserves the set of
    /// reachable dead markings exactly).
    pub ample: bool,
    /// Quotient the state space by lane-permutation symmetry. The spec is
    /// structurally validated per net; an invalid spec is ignored rather
    /// than trusted.
    pub symmetry: Option<SymmetrySpec>,
}

impl Reduction {
    /// No reduction: the exhaustive semantics every pre-reduction caller
    /// had.
    pub const NONE: Reduction = Reduction {
        ample: false,
        symmetry: None,
    };

    /// Both reductions on (symmetry only when a spec is given).
    pub fn full(symmetry: Option<SymmetrySpec>) -> Reduction {
        Reduction {
            ample: true,
            symmetry,
        }
    }

    /// True when no reduction is requested.
    pub fn is_none(&self) -> bool {
        !self.ample && self.symmetry.is_none()
    }
}

/// Per-net precomputation and per-state scratch for strong-stubborn-set
/// ample computation.
///
/// The closure rule, per candidate member `t` of the stubborn set:
///
/// * `t` enabled — add every transition sharing an input place with `t`
///   (only token *removal* can disable `t`, and only competitors for its
///   input tokens remove them);
/// * `t` disabled — pick the first input place with insufficient tokens
///   and add that place's producers (nothing else can enable `t`).
///
/// The ample set is the enabled part of the closure. Transitions outside
/// it neither disable nor are disabled by the ample members, so every
/// firing sequence to a dead marking can be reordered to fire an ample
/// member first — the reduced graph reaches every reachable deadlock.
#[derive(Debug, Clone)]
pub struct StubbornSets {
    /// Transition ids by index (avoids re-deriving `TransId`s).
    ids: Vec<TransId>,
    /// Per transition: aggregated input arcs as raw (place, weight).
    inputs: Vec<Vec<(u32, u32)>>,
    /// Per transition: other transitions sharing an input place.
    input_conflicts: Vec<Vec<u32>>,
    /// Per place: transitions producing into it.
    producers: Vec<Vec<u32>>,
    // Per-state scratch, reused across the whole exploration.
    enabled: Vec<u32>,
    enabled_mask: Vec<bool>,
    in_set: Vec<bool>,
    touched: Vec<u32>,
    stack: Vec<u32>,
    best: Vec<u32>,
    cand: Vec<u32>,
}

impl StubbornSets {
    /// Precompute the static dependency relation of `net`.
    pub fn new(net: &Net) -> StubbornSets {
        let nt = net.num_transitions();
        let np = net.num_places();
        let ids: Vec<TransId> = net.transitions().collect();
        let inputs: Vec<Vec<(u32, u32)>> = ids
            .iter()
            .map(|&t| {
                net.inputs(t)
                    .iter()
                    .map(|&(p, w)| (p.index() as u32, w))
                    .collect()
            })
            .collect();
        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); np];
        let mut producers: Vec<Vec<u32>> = vec![Vec::new(); np];
        for (ti, &t) in ids.iter().enumerate() {
            for &(p, _) in net.inputs(t) {
                consumers[p.index()].push(ti as u32);
            }
            for &(p, _) in net.outputs(t) {
                producers[p.index()].push(ti as u32);
            }
        }
        let input_conflicts: Vec<Vec<u32>> = (0..nt)
            .map(|ti| {
                let mut deps: Vec<u32> = inputs[ti]
                    .iter()
                    .flat_map(|&(p, _)| consumers[p as usize].iter().copied())
                    .filter(|&u| u != ti as u32)
                    .collect();
                deps.sort_unstable();
                deps.dedup();
                deps
            })
            .collect();
        StubbornSets {
            ids,
            inputs,
            input_conflicts,
            producers,
            enabled: Vec::new(),
            enabled_mask: vec![false; nt],
            in_set: vec![false; nt],
            touched: Vec::new(),
            stack: Vec::new(),
            best: Vec::new(),
            cand: Vec::new(),
        }
    }

    /// Compute a deterministic ample set for the marking `tokens` into
    /// `out` (ascending transition order, every member enabled). Returns
    /// the number of enabled transitions, so callers can tally pruning.
    ///
    /// Every enabled transition is tried as the closure seed and the
    /// smallest resulting ample set wins (first seed on ties), stopping
    /// early at the optimum of one.
    pub fn ample_into(&mut self, tokens: &[u32], out: &mut Vec<TransId>) -> usize {
        out.clear();
        self.enabled.clear();
        for (ti, ins) in self.inputs.iter().enumerate() {
            let en = ins.iter().all(|&(p, w)| tokens[p as usize] >= w);
            self.enabled_mask[ti] = en;
            if en {
                self.enabled.push(ti as u32);
            }
        }
        let n_enabled = self.enabled.len();
        if n_enabled <= 1 {
            out.extend(self.enabled.iter().map(|&t| self.ids[t as usize]));
            return n_enabled;
        }
        let mut best_len = usize::MAX;
        for si in 0..self.enabled.len() {
            for &t in &self.touched {
                self.in_set[t as usize] = false;
            }
            self.touched.clear();
            self.stack.clear();
            self.stack.push(self.enabled[si]);
            while let Some(t) = self.stack.pop() {
                let ti = t as usize;
                if self.in_set[ti] {
                    continue;
                }
                self.in_set[ti] = true;
                self.touched.push(t);
                if self.enabled_mask[ti] {
                    for &u in &self.input_conflicts[ti] {
                        if !self.in_set[u as usize] {
                            self.stack.push(u);
                        }
                    }
                } else {
                    let p = self.inputs[ti]
                        .iter()
                        .find(|&&(p, w)| tokens[p as usize] < w)
                        .map(|&(p, _)| p)
                        .expect("a disabled transition has an insufficient input place");
                    for &u in &self.producers[p as usize] {
                        if !self.in_set[u as usize] {
                            self.stack.push(u);
                        }
                    }
                }
            }
            self.cand.clear();
            for &e in &self.enabled {
                if self.in_set[e as usize] {
                    self.cand.push(e);
                }
            }
            if self.cand.len() < best_len {
                best_len = self.cand.len();
                std::mem::swap(&mut self.best, &mut self.cand);
            }
            if best_len == 1 {
                break;
            }
        }
        out.extend(self.best.iter().map(|&t| self.ids[t as usize]));
        n_enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::java_model::JavaNet;
    use crate::net::NetBuilder;

    fn marking(tokens: &[u32]) -> Marking {
        Marking(tokens.to_vec().into_boxed_slice())
    }

    #[test]
    fn java_net_lane_spec_is_an_automorphism() {
        for n in 1..=6 {
            let j = JavaNet::new(n);
            assert!(j.thread_symmetry().is_automorphism(j.net()), "n={n}");
        }
    }

    #[test]
    fn asymmetric_nets_are_rejected() {
        // Two 1-place "lanes" with different transition structure.
        let mut b = NetBuilder::new();
        let p0 = b.place("p0", 1);
        let p1 = b.place("p1", 1);
        b.transition("t", &[p0], &[p1]);
        let net = b.build().unwrap();
        let spec = SymmetrySpec {
            first_place: 0,
            lanes: 2,
            lane_width: 1,
        };
        assert!(!spec.is_automorphism(&net));

        // Uniform structure but a non-uniform initial marking.
        let mut b = NetBuilder::new();
        let p0 = b.place("p0", 1);
        let p1 = b.place("p1", 0);
        b.transition("t0", &[p0], &[p0]);
        b.transition("t1", &[p1], &[p1]);
        let net = b.build().unwrap();
        assert!(!spec.is_automorphism(&net));

        // Out of bounds.
        let wide = SymmetrySpec {
            first_place: 1,
            lanes: 2,
            lane_width: 1,
        };
        assert!(!wide.is_automorphism(&net));
    }

    #[test]
    fn packed_and_wide_canonicalization_agree() {
        let spec = SymmetrySpec {
            first_place: 1,
            lanes: 3,
            lane_width: 2,
        };
        // Lane contents (b,c), (d,e), (f,g) in every permutation collapse
        // to the same representative, and packed agrees with wide.
        let m = marking(&[9, 3, 4, 1, 2, 3, 4]);
        let wide = spec.canonicalize_marking(&m);
        assert_eq!(wide, marking(&[9, 1, 2, 3, 4, 3, 4]));
        let packed = spec.canonicalize_packed(PackedMarking::pack(&m).unwrap());
        assert_eq!(packed.unpack(7), wide);

        // Idempotent, and a fixed point on the representative itself.
        assert_eq!(spec.canonicalize_marking(&wide), wide);
        assert_eq!(spec.canonicalize_packed(packed), packed);
    }

    #[test]
    fn canonicalization_is_orbit_invariant() {
        let spec = SymmetrySpec {
            first_place: 0,
            lanes: 3,
            lane_width: 1,
        };
        let orbit = [
            [1u32, 2, 3],
            [1, 3, 2],
            [2, 1, 3],
            [2, 3, 1],
            [3, 1, 2],
            [3, 2, 1],
        ];
        for perm in orbit {
            assert_eq!(
                spec.canonicalize_marking(&marking(&perm)),
                marking(&[1, 2, 3])
            );
            let p = PackedMarking::pack(&marking(&perm)).unwrap();
            assert_eq!(spec.canonicalize_packed(p).unpack(3), marking(&[1, 2, 3]));
        }
    }

    #[test]
    fn lane_canon_reports_changes() {
        let spec = SymmetrySpec {
            first_place: 0,
            lanes: 2,
            lane_width: 1,
        };
        let mut canon = LaneCanon::new(spec);
        let mut sorted = [1u32, 2];
        assert!(!canon.canonicalize(&mut sorted));
        let mut unsorted = [2u32, 1];
        assert!(canon.canonicalize(&mut unsorted));
        assert_eq!(unsorted, [1, 2]);
    }

    #[test]
    fn ample_set_is_enabled_nonempty_and_smaller() {
        // Two independent token rings: the ample set at the initial
        // marking should pick one ring, not both.
        let mut b = NetBuilder::new();
        let a0 = b.place("a0", 1);
        let a1 = b.place("a1", 0);
        let b0 = b.place("b0", 1);
        let b1 = b.place("b1", 0);
        b.transition("ta", &[a0], &[a1]);
        b.transition("ta'", &[a1], &[a0]);
        b.transition("tb", &[b0], &[b1]);
        b.transition("tb'", &[b1], &[b0]);
        let net = b.build().unwrap();
        let mut st = StubbornSets::new(&net);
        let mut out = Vec::new();
        let n_enabled = st.ample_into(&[1, 0, 1, 0], &mut out);
        assert_eq!(n_enabled, 2);
        assert_eq!(out.len(), 1, "independent rings must not both expand");
        for &t in &out {
            assert!(net.enabled(&marking(&[1, 0, 1, 0]), t));
        }
    }

    #[test]
    fn ample_set_keeps_conflicting_transitions_together() {
        // Two transitions competing for one token are dependent: the
        // ample set must contain both (no reduction possible).
        let mut b = NetBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let r = b.place("r", 0);
        b.transition("tq", &[p], &[q]);
        b.transition("tr", &[p], &[r]);
        let net = b.build().unwrap();
        let mut st = StubbornSets::new(&net);
        let mut out = Vec::new();
        let n_enabled = st.ample_into(&[1, 0, 0], &mut out);
        assert_eq!(n_enabled, 2);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn ample_set_of_dead_marking_is_empty() {
        let mut b = NetBuilder::new();
        let p = b.place("p", 0);
        let q = b.place("q", 0);
        b.transition("t", &[p], &[q]);
        let net = b.build().unwrap();
        let mut st = StubbornSets::new(&net);
        let mut out = Vec::new();
        assert_eq!(st.ample_into(&[0, 0], &mut out), 0);
        assert!(out.is_empty());
    }
}
