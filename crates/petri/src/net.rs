//! Generic place/transition nets with weighted arcs and firing semantics.
//!
//! The representation is dense and index-based: places and transitions are
//! small integers, markings are token-count vectors. This keeps reachability
//! exploration allocation-light (the hot path clones one `Box<[u32]>` per
//! discovered state and nothing else).

use std::fmt;

/// Identifier of a place within a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) u32);

/// Identifier of a transition within a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransId(pub(crate) u32);

impl PlaceId {
    /// The dense index of this place.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TransId {
    /// The dense index of this transition.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A marking: the number of tokens on each place, indexed by [`PlaceId`].
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Marking(pub Box<[u32]>);

impl Marking {
    /// Tokens currently on `place`.
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.0[place.index()]
    }

    /// Total number of tokens in the marking.
    pub fn total(&self) -> u64 {
        self.0.iter().map(|&t| u64::from(t)).sum()
    }

    /// Number of places.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the marking has no places (degenerate nets only).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Marking{:?}", &self.0)
    }
}

/// Errors from net construction or firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A transition was fired that is not enabled in the given marking.
    NotEnabled {
        /// The transition that was attempted.
        transition: TransId,
    },
    /// An arc referenced a place or transition that does not exist.
    UnknownNode(String),
    /// A duplicate place or transition name was registered.
    DuplicateName(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NotEnabled { transition } => {
                write!(f, "transition t{} is not enabled", transition.0)
            }
            NetError::UnknownNode(name) => write!(f, "unknown node `{name}`"),
            NetError::DuplicateName(name) => write!(f, "duplicate node name `{name}`"),
        }
    }
}

impl std::error::Error for NetError {}

#[derive(Debug, Clone)]
struct TransitionData {
    name: String,
    /// (place, weight) consumed when firing.
    inputs: Vec<(PlaceId, u32)>,
    /// (place, weight) produced when firing.
    outputs: Vec<(PlaceId, u32)>,
}

/// An immutable place/transition net.
///
/// Build one with [`NetBuilder`]. Markings are held externally so a single
/// `Net` can drive many concurrent explorations.
#[derive(Debug, Clone)]
pub struct Net {
    place_names: Vec<String>,
    transitions: Vec<TransitionData>,
    initial: Marking,
}

/// Builder for [`Net`].
#[derive(Debug, Default)]
pub struct NetBuilder {
    place_names: Vec<String>,
    initial_tokens: Vec<u32>,
    transitions: Vec<TransitionData>,
}

impl NetBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a place with an initial token count, returning its id.
    pub fn place(&mut self, name: impl Into<String>, initial_tokens: u32) -> PlaceId {
        let id = PlaceId(self.place_names.len() as u32);
        self.place_names.push(name.into());
        self.initial_tokens.push(initial_tokens);
        id
    }

    /// Add a transition consuming `inputs` and producing `outputs`
    /// (unit arc weights), returning its id.
    pub fn transition(
        &mut self,
        name: impl Into<String>,
        inputs: &[PlaceId],
        outputs: &[PlaceId],
    ) -> TransId {
        self.weighted_transition(
            name,
            &inputs.iter().map(|&p| (p, 1)).collect::<Vec<_>>(),
            &outputs.iter().map(|&p| (p, 1)).collect::<Vec<_>>(),
        )
    }

    /// Add a transition with explicit arc weights.
    pub fn weighted_transition(
        &mut self,
        name: impl Into<String>,
        inputs: &[(PlaceId, u32)],
        outputs: &[(PlaceId, u32)],
    ) -> TransId {
        let id = TransId(self.transitions.len() as u32);
        self.transitions.push(TransitionData {
            name: name.into(),
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
        });
        id
    }

    /// Finish building. Returns an error on duplicate node names.
    ///
    /// Duplicate arcs between one transition and one place are folded into
    /// a single arc with the summed weight, so `enabled` (per-arc weight
    /// check) and `fire` (per-arc token movement) always agree on the
    /// aggregate demand — and so the packed firing engine's per-place
    /// delta words describe exactly the same semantics.
    pub fn build(mut self) -> Result<Net, NetError> {
        let mut seen = std::collections::HashSet::new();
        for name in self
            .place_names
            .iter()
            .chain(self.transitions.iter().map(|t| &t.name))
        {
            if !seen.insert(name.clone()) {
                return Err(NetError::DuplicateName(name.clone()));
            }
        }
        for t in &mut self.transitions {
            merge_duplicate_arcs(&mut t.inputs);
            merge_duplicate_arcs(&mut t.outputs);
        }
        Ok(Net {
            place_names: self.place_names,
            transitions: self.transitions,
            initial: Marking(self.initial_tokens.into_boxed_slice()),
        })
    }
}

/// Fold duplicate `(place, weight)` arcs into one arc with the summed
/// weight, preserving first-occurrence order.
fn merge_duplicate_arcs(arcs: &mut Vec<(PlaceId, u32)>) {
    let mut merged: Vec<(PlaceId, u32)> = Vec::with_capacity(arcs.len());
    for &(p, w) in arcs.iter() {
        match merged.iter_mut().find(|(mp, _)| *mp == p) {
            Some((_, mw)) => *mw += w,
            None => merged.push((p, w)),
        }
    }
    *arcs = merged;
}

impl Net {
    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Name of a place.
    pub fn place_name(&self, place: PlaceId) -> &str {
        &self.place_names[place.index()]
    }

    /// Name of a transition.
    pub fn transition_name(&self, trans: TransId) -> &str {
        &self.transitions[trans.index()].name
    }

    /// Look up a place by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.place_names
            .iter()
            .position(|n| n == name)
            .map(|i| PlaceId(i as u32))
    }

    /// Look up a transition by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(|i| TransId(i as u32))
    }

    /// All place ids.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.place_names.len() as u32).map(PlaceId)
    }

    /// All transition ids.
    pub fn transitions(&self) -> impl Iterator<Item = TransId> + '_ {
        (0..self.transitions.len() as u32).map(TransId)
    }

    /// Input arcs (place, weight) of a transition.
    pub fn inputs(&self, trans: TransId) -> &[(PlaceId, u32)] {
        &self.transitions[trans.index()].inputs
    }

    /// Output arcs (place, weight) of a transition.
    pub fn outputs(&self, trans: TransId) -> &[(PlaceId, u32)] {
        &self.transitions[trans.index()].outputs
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Marking {
        self.initial.clone()
    }

    /// True if `trans` is enabled in `marking` (every input place holds at
    /// least the arc weight).
    pub fn enabled(&self, marking: &Marking, trans: TransId) -> bool {
        self.transitions[trans.index()]
            .inputs
            .iter()
            .all(|&(p, w)| marking.0[p.index()] >= w)
    }

    /// Iterator over the transitions enabled in `marking`, in transition
    /// order. This is the allocation-free form exploration hot paths use;
    /// [`Net::enabled_transitions`] is the collecting convenience wrapper.
    pub fn enabled_iter<'a>(
        &'a self,
        marking: &'a Marking,
    ) -> impl Iterator<Item = TransId> + 'a {
        self.transitions().filter(move |&t| self.enabled(marking, t))
    }

    /// Call `f` for each transition enabled in `marking`, in transition
    /// order, without allocating.
    pub fn for_each_enabled(&self, marking: &Marking, mut f: impl FnMut(TransId)) {
        for t in self.enabled_iter(marking) {
            f(t);
        }
    }

    /// All transitions enabled in `marking`, collected into a `Vec`.
    /// Prefer [`Net::enabled_iter`] / [`Net::for_each_enabled`] on hot
    /// paths — this form allocates per call.
    pub fn enabled_transitions(&self, marking: &Marking) -> Vec<TransId> {
        self.enabled_iter(marking).collect()
    }

    /// True if no transition is enabled — the net is dead in `marking`.
    pub fn is_deadlocked(&self, marking: &Marking) -> bool {
        self.transitions().all(|t| !self.enabled(marking, t))
    }

    /// Fire `trans` in `marking`, returning the successor marking.
    pub fn fire(&self, marking: &Marking, trans: TransId) -> Result<Marking, NetError> {
        if !self.enabled(marking, trans) {
            return Err(NetError::NotEnabled { transition: trans });
        }
        let mut next = marking.0.clone();
        let data = &self.transitions[trans.index()];
        for &(p, w) in &data.inputs {
            next[p.index()] -= w;
        }
        for &(p, w) in &data.outputs {
            next[p.index()] += w;
        }
        Ok(Marking(next))
    }

    /// The net effect of `trans` on each place (outputs minus inputs), as a
    /// signed vector indexed by place. This is the transition's column of the
    /// incidence matrix.
    pub fn incidence_column(&self, trans: TransId) -> Vec<i64> {
        let mut col = vec![0i64; self.num_places()];
        let data = &self.transitions[trans.index()];
        for &(p, w) in &data.inputs {
            col[p.index()] -= i64::from(w);
        }
        for &(p, w) in &data.outputs {
            col[p.index()] += i64::from(w);
        }
        col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_place_net() -> (Net, PlaceId, PlaceId, TransId) {
        let mut b = NetBuilder::new();
        let a = b.place("a", 1);
        let c = b.place("c", 0);
        let t = b.transition("t", &[a], &[c]);
        (b.build().unwrap(), a, c, t)
    }

    #[test]
    fn fire_moves_token() {
        let (net, a, c, t) = two_place_net();
        let m0 = net.initial_marking();
        assert!(net.enabled(&m0, t));
        let m1 = net.fire(&m0, t).unwrap();
        assert_eq!(m1.tokens(a), 0);
        assert_eq!(m1.tokens(c), 1);
    }

    #[test]
    fn fire_disabled_errors() {
        let (net, _, _, t) = two_place_net();
        let m0 = net.initial_marking();
        let m1 = net.fire(&m0, t).unwrap();
        assert!(!net.enabled(&m1, t));
        assert_eq!(
            net.fire(&m1, t),
            Err(NetError::NotEnabled { transition: t })
        );
    }

    #[test]
    fn deadlock_detected_when_no_transition_enabled() {
        let (net, _, _, t) = two_place_net();
        let m1 = net.fire(&net.initial_marking(), t).unwrap();
        assert!(net.is_deadlocked(&m1));
        assert!(!net.is_deadlocked(&net.initial_marking()));
    }

    #[test]
    fn weighted_arcs_respected() {
        let mut b = NetBuilder::new();
        let p = b.place("p", 3);
        let q = b.place("q", 0);
        let t = b.weighted_transition("t", &[(p, 2)], &[(q, 5)]);
        let net = b.build().unwrap();
        let m1 = net.fire(&net.initial_marking(), t).unwrap();
        assert_eq!(m1.tokens(p), 1);
        assert_eq!(m1.tokens(q), 5);
        // Only 1 token left on p, weight-2 arc no longer enabled.
        assert!(!net.enabled(&m1, t));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetBuilder::new();
        b.place("x", 0);
        b.place("x", 0);
        assert!(matches!(b.build(), Err(NetError::DuplicateName(_))));
    }

    #[test]
    fn name_lookup() {
        let (net, a, _, t) = two_place_net();
        assert_eq!(net.place_by_name("a"), Some(a));
        assert_eq!(net.transition_by_name("t"), Some(t));
        assert_eq!(net.place_by_name("zzz"), None);
        assert_eq!(net.place_name(a), "a");
        assert_eq!(net.transition_name(t), "t");
    }

    #[test]
    fn incidence_column_signs() {
        let (net, a, c, t) = two_place_net();
        let col = net.incidence_column(t);
        assert_eq!(col[a.index()], -1);
        assert_eq!(col[c.index()], 1);
    }

    #[test]
    fn marking_total_and_len() {
        let (net, _, _, _) = two_place_net();
        let m = net.initial_marking();
        assert_eq!(m.total(), 1);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn duplicate_arcs_merge_into_summed_weight() {
        let mut b = NetBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        // q listed twice: builder folds to one weight-2 arc, so firing
        // produces 2 tokens and the arc list has no duplicates.
        let t = b.transition("t", &[p], &[q, q]);
        let net = b.build().unwrap();
        assert_eq!(net.outputs(t), &[(q, 2)]);
        let m1 = net.fire(&net.initial_marking(), t).unwrap();
        assert_eq!(m1.tokens(q), 2);
        // Duplicate *inputs* demand the aggregate: two p-arcs need 2 tokens.
        let mut b = NetBuilder::new();
        let p = b.place("p", 1);
        let t = b.transition("t", &[p, p], &[]);
        let net = b.build().unwrap();
        assert_eq!(net.inputs(t), &[(p, 2)]);
        assert!(!net.enabled(&net.initial_marking(), t));
    }

    #[test]
    fn enabled_iter_matches_collected_form() {
        let mut b = NetBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let t1 = b.transition("t1", &[p], &[q]);
        b.transition("t2", &[q], &[p]);
        let t3 = b.transition("t3", &[p], &[p]);
        let net = b.build().unwrap();
        let m0 = net.initial_marking();
        assert_eq!(net.enabled_iter(&m0).collect::<Vec<_>>(), vec![t1, t3]);
        assert_eq!(net.enabled_transitions(&m0), vec![t1, t3]);
        let mut seen = Vec::new();
        net.for_each_enabled(&m0, |t| seen.push(t));
        assert_eq!(seen, vec![t1, t3]);
    }

    #[test]
    fn self_loop_transition_requires_and_restores_token() {
        let mut b = NetBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        // Reads p (consumes and reproduces), produces q.
        let t = b.transition("t", &[p], &[p, q]);
        let net = b.build().unwrap();
        let m1 = net.fire(&net.initial_marking(), t).unwrap();
        assert_eq!(m1.tokens(p), 1);
        assert_eq!(m1.tokens(q), 1);
        assert!(net.enabled(&m1, t));
    }
}
