//! Place invariants (P-semiflows): verification and discovery.
//!
//! A weight vector `w` over places is a P-invariant when every transition
//! conserves the weighted token sum, i.e. `wᵀ · C = 0` for the incidence
//! matrix `C`. P-invariants give the safety arguments the paper's model
//! relies on: mutual exclusion (`E + Σ Cᵢ = 1`) and per-thread state
//! conservation (`Aᵢ + Bᵢ + Cᵢ + Dᵢ = 1`).

use crate::net::{Marking, Net};

/// True if `weights` is a P-invariant of `net`: every transition's firing
/// leaves the weighted token sum unchanged.
pub fn is_invariant(net: &Net, weights: &[i64]) -> bool {
    assert_eq!(
        weights.len(),
        net.num_places(),
        "weight vector length must equal the number of places"
    );
    net.transitions().all(|t| {
        net.incidence_column(t)
            .iter()
            .zip(weights)
            .map(|(&c, &w)| c * w)
            .sum::<i64>()
            == 0
    })
}

/// The weighted token sum of `marking` under `weights`.
pub fn weighted_sum(marking: &Marking, weights: &[i64]) -> i64 {
    marking
        .0
        .iter()
        .zip(weights)
        .map(|(&t, &w)| i64::from(t) * w)
        .sum()
}

/// Compute an integer basis of the P-invariant space (the null space of the
/// transposed incidence matrix) by fraction-free Gaussian elimination.
///
/// Each returned vector is a P-invariant with coprime integer entries; every
/// P-invariant of the net is a rational combination of them. Suitable for the
/// small nets this workspace builds (places × transitions in the hundreds).
pub fn invariant_basis(net: &Net) -> Vec<Vec<i64>> {
    let rows: Vec<Vec<i64>> = net
        .transitions()
        .map(|t| net.incidence_column(t))
        .collect();
    null_space(rows, net.num_places())
}

/// True if `counts` (a firing-count vector indexed by transition) is a
/// T-invariant: firing each transition that many times returns the net to
/// the marking it started from, i.e. `C · counts = 0`.
pub fn is_t_invariant(net: &Net, counts: &[i64]) -> bool {
    assert_eq!(
        counts.len(),
        net.num_transitions(),
        "count vector length must equal the number of transitions"
    );
    net.places().all(|p| {
        net.transitions()
            .map(|t| net.incidence_column(t)[p.index()] * counts[t.index()])
            .sum::<i64>()
            == 0
    })
}

/// Compute an integer basis of the T-invariant space (the null space of the
/// incidence matrix): the cyclic firing behaviours of the net. For the
/// Figure-1 model these are exactly the two life cycles of a thread —
/// enter/leave (T1,T2,T4) and enter/wait/wake/leave (T1,T2,T3,T5,... with
/// the reacquisition T2 counted twice).
pub fn t_invariant_basis(net: &Net) -> Vec<Vec<i64>> {
    let n_trans = net.num_transitions();
    // rows: places (constraints), cols: transitions (unknown counts).
    let rows: Vec<Vec<i64>> = net
        .places()
        .map(|p| {
            net.transitions()
                .map(|t| net.incidence_column(t)[p.index()])
                .collect()
        })
        .collect();
    null_space(rows, n_trans)
}

/// Integer null-space basis of `rows` (each of width `n_cols`) by
/// fraction-free Gaussian elimination.
fn null_space(mut rows: Vec<Vec<i64>>, n_cols: usize) -> Vec<Vec<i64>> {
    let n_places = n_cols;
    let n_trans = rows.len();

    // Fraction-free (Bareiss-style simplified) row reduction.
    let mut pivot_col_of_row: Vec<usize> = Vec::new();
    let mut rank = 0usize;
    for col in 0..n_places {
        // Find a pivot row at or below `rank` with a nonzero entry in `col`.
        let Some(pivot) = (rank..n_trans).find(|&r| rows[r][col] != 0) else {
            continue;
        };
        rows.swap(rank, pivot);
        let pivot_val = rows[rank][col];
        let pivot_row = rows[rank].clone();
        for (r, row) in rows.iter_mut().enumerate() {
            if r != rank && row[col] != 0 {
                let factor = row[col];
                for (cell, &p) in row.iter_mut().zip(&pivot_row) {
                    *cell = *cell * pivot_val - p * factor;
                }
                normalize_row(row);
            }
        }
        pivot_col_of_row.push(col);
        rank += 1;
        if rank == n_trans {
            break;
        }
    }

    let pivot_cols: Vec<usize> = pivot_col_of_row.clone();
    let free_cols: Vec<usize> = (0..n_places).filter(|c| !pivot_cols.contains(c)).collect();

    // Back-substitute one basis vector per free column.
    let mut basis = Vec::with_capacity(free_cols.len());
    for &free in &free_cols {
        // Solve over rationals: set w[free] = 1, all other free vars = 0,
        // then each pivot row gives w[pivot_col] = -row[free] / row[pivot_col].
        // To stay in integers, scale by the lcm of the pivot entries involved.
        let mut num = vec![0i64; n_places];
        let mut den = vec![1i64; n_places];
        num[free] = 1;
        for (r, &pc) in pivot_col_of_row.iter().enumerate() {
            let coeff = rows[r][free];
            if coeff != 0 {
                num[pc] = -coeff;
                den[pc] = rows[r][pc];
            }
        }
        // Common denominator.
        let mut scale = 1i64;
        for &d in &den {
            scale = lcm(scale, d.abs().max(1));
        }
        let mut vec_int: Vec<i64> = (0..n_places).map(|c| num[c] * (scale / den[c])).collect();
        normalize_row(&mut vec_int);
        // Prefer mostly-positive orientation for readability.
        if vec_int.iter().sum::<i64>() < 0 {
            for v in &mut vec_int {
                *v = -*v;
            }
        }
        basis.push(vec_int);
    }
    basis
}

/// Divide a row by the gcd of its entries (no-op for the zero row).
fn normalize_row(row: &mut [i64]) {
    let g = row.iter().fold(0i64, |acc, &x| gcd(acc, x.abs()));
    if g > 1 {
        for x in row.iter_mut() {
            *x /= g;
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a.abs(), b.abs()) * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::java_model::{JavaNet, ThreadPlace};
    use crate::net::NetBuilder;

    #[test]
    fn java_model_invariants_verify() {
        for threads in 1..=4 {
            let j = JavaNet::new(threads);
            assert!(is_invariant(j.net(), &j.mutex_invariant()));
            for th in 0..threads {
                assert!(is_invariant(j.net(), &j.thread_invariant(th)));
            }
        }
    }

    #[test]
    fn non_invariant_rejected() {
        let j = JavaNet::new(1);
        // Weight only the waiting place: T3/T5 change the sum.
        let mut w = vec![0i64; j.net().num_places()];
        w[j.place(0, ThreadPlace::Waiting).index()] = 1;
        assert!(!is_invariant(j.net(), &w));
    }

    #[test]
    fn basis_spans_known_invariants_single_thread() {
        let j = JavaNet::new(1);
        let basis = invariant_basis(j.net());
        // 5 places, incidence rank 3 → 2 independent invariants:
        // mutex (C + E) and thread conservation (A+B+C+D).
        assert_eq!(basis.len(), 2);
        for b in &basis {
            assert!(is_invariant(j.net(), b));
        }
    }

    #[test]
    fn basis_size_grows_with_threads() {
        // N threads: N conservation invariants + 1 mutex invariant.
        for threads in 1..=3 {
            let j = JavaNet::new(threads);
            let basis = invariant_basis(j.net());
            assert_eq!(basis.len(), threads + 1, "threads={threads}");
            for b in &basis {
                assert!(is_invariant(j.net(), b));
            }
        }
    }

    #[test]
    fn weighted_sum_constant_along_run() {
        let j = JavaNet::new(2);
        let net = j.net();
        let basis = invariant_basis(net);
        let m0 = net.initial_marking();
        let sums0: Vec<i64> = basis.iter().map(|b| weighted_sum(&m0, b)).collect();
        // Fire an arbitrary enabled sequence and re-check.
        let mut m = m0;
        for _ in 0..20 {
            let Some(t) = net.enabled_iter(&m).next() else { break };
            m = net.fire(&m, t).unwrap();
            let sums: Vec<i64> = basis.iter().map(|b| weighted_sum(&m, b)).collect();
            assert_eq!(sums, sums0);
        }
    }

    #[test]
    fn pure_cycle_net_invariant() {
        let mut b = NetBuilder::new();
        let p1 = b.place("p1", 1);
        let p2 = b.place("p2", 0);
        let p3 = b.place("p3", 0);
        b.transition("t12", &[p1], &[p2]);
        b.transition("t23", &[p2], &[p3]);
        b.transition("t31", &[p3], &[p1]);
        let net = b.build().unwrap();
        let basis = invariant_basis(&net);
        assert_eq!(basis.len(), 1);
        assert_eq!(basis[0], vec![1, 1, 1]);
    }

    #[test]
    fn net_with_no_invariant() {
        let mut b = NetBuilder::new();
        let p = b.place("p", 0);
        let q = b.place("q", 0);
        // Source transitions break conservation in all directions.
        b.transition("mk_p", &[], &[p]);
        b.transition("mk_q", &[], &[q]);
        let net = b.build().unwrap();
        assert!(invariant_basis(&net).is_empty());
    }

    #[test]
    fn weighted_transition_invariant() {
        // 2 tokens of p convert to 1 of q and back: invariant p + 2q.
        let mut b = NetBuilder::new();
        let p = b.place("p", 4);
        let q = b.place("q", 0);
        b.weighted_transition("fwd", &[(p, 2)], &[(q, 1)]);
        b.weighted_transition("rev", &[(q, 1)], &[(p, 2)]);
        let net = b.build().unwrap();
        let basis = invariant_basis(&net);
        assert_eq!(basis.len(), 1);
        assert_eq!(basis[0], vec![1, 2]);
        assert!(is_invariant(&net, &[1, 2]));
        assert!(!is_invariant(&net, &[1, 1]));
    }

    #[test]
    fn t_invariants_of_figure_1_are_the_thread_life_cycles() {
        use crate::transition::Transition as T;
        let j = JavaNet::new(1);
        let basis = t_invariant_basis(j.net());
        assert_eq!(basis.len(), 2, "{basis:?}");
        for b in &basis {
            assert!(is_t_invariant(j.net(), b));
        }
        // The two cycles: plain visit T1,T2,T4 and wait-cycle
        // T3 + T5 + an extra T2 (re-acquisition).
        let idx = |t: T| j.transition(0, t).index();
        let plain = basis
            .iter()
            .find(|b| b[idx(T::T3)] == 0)
            .expect("plain visit cycle");
        assert_eq!(plain[idx(T::T1)], plain[idx(T::T2)]);
        assert_eq!(plain[idx(T::T1)], plain[idx(T::T4)]);
        let waity = basis
            .iter()
            .find(|b| b[idx(T::T3)] != 0)
            .expect("wait cycle");
        assert_eq!(waity[idx(T::T3)], waity[idx(T::T5)]);
    }

    #[test]
    fn t_invariant_rejects_non_cycle() {
        let j = JavaNet::new(1);
        // Firing T1 once alone does not restore the marking.
        let mut counts = vec![0i64; 5];
        counts[0] = 1;
        assert!(!is_t_invariant(j.net(), &counts));
    }

    #[test]
    fn source_sink_net_has_no_t_invariants() {
        let mut b = NetBuilder::new();
        let p = b.place("p", 0);
        b.transition("src", &[], &[p]);
        let net = b.build().unwrap();
        assert!(t_invariant_basis(&net).is_empty());
    }
}
