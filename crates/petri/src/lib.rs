//! # jcc-petri — Petri-net engine and the Figure-1 model of Java concurrency
//!
//! This crate provides the substrate for the Long & Strooper (IPPS 2003)
//! reproduction:
//!
//! * a general place/transition [`Net`] with firing semantics,
//! * reachability analysis ([`reach`]) with deadlock and boundedness checks,
//! * place-invariant (P-semiflow) verification and discovery ([`invariant`]),
//! * DOT export ([`dot`]),
//! * the paper's Figure-1 net — a single thread interacting with an object
//!   lock — and its N-thread composition ([`java_model`]),
//! * the shared vocabulary of the classification: [`Transition`] (T1–T5),
//!   [`Deviation`] (failure-to-fire / erroneous-firing) and the ten
//!   [`FailureClass`] values of Table 1 ([`transition`]).
//!
//! The petri net is *descriptive*: the paper uses it to model the possible
//! states of a thread at any point in time, and every other crate in this
//! workspace speaks in terms of the transitions it defines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod invariant;
pub mod java_model;
pub mod net;
pub mod parallel;
pub mod reach;
pub mod reduce;
pub mod state;
pub mod transition;

pub use java_model::{JavaNet, ThreadPlace};
pub use net::{Marking, Net, NetBuilder, NetError, PlaceId, TransId};
pub use parallel::{parallel_map, BatchPolicy, Parallelism};
pub use reach::{ReachGraph, ReachLimits, ReachStats};
pub use reduce::{Reduction, StubbornSets, SymmetrySpec};
pub use state::{PackedMarking, PackedNet, StateId, StateStore, MAX_PACKED_PLACES};
pub use transition::{Deviation, FailureClass, Transition, ALL_FAILURE_CLASSES};
