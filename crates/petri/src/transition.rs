//! The shared vocabulary of the classification: the five model transitions
//! T1–T5 of the paper's Figure 1, the two HAZOP deviations, and the ten
//! failure classes of Table 1.

use std::fmt;

/// The five transitions of the Figure-1 petri-net model of a thread
/// interacting with an object lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Transition {
    /// T1 — requesting an object lock: the thread reaches a
    /// `synchronized` block (place A → place B).
    T1,
    /// T2 — locking an object: the JVM grants the lock to a requesting
    /// thread (B + E → C).
    T2,
    /// T3 — waiting on an object: the thread calls `wait`, releasing the
    /// lock (C → D + E).
    T3,
    /// T4 — releasing an object lock: the thread leaves the synchronized
    /// block (C → A + E).
    T4,
    /// T5 — thread notification: a waiting thread is woken by another
    /// thread's `notify`/`notifyAll` and re-requests the lock (D → B).
    T5,
}

impl Transition {
    /// All five transitions in model order.
    pub const ALL: [Transition; 5] = [
        Transition::T1,
        Transition::T2,
        Transition::T3,
        Transition::T4,
        Transition::T5,
    ];

    /// The paper's caption for this transition.
    pub fn description(self) -> &'static str {
        match self {
            Transition::T1 => "requesting an object lock",
            Transition::T2 => "locking an object",
            Transition::T3 => "waiting on an object",
            Transition::T4 => "releasing an object lock",
            Transition::T5 => "thread notification",
        }
    }

    /// Whether the firing of this transition is caused by another thread
    /// rather than the thread whose state it changes. In Figure 1 this is the
    /// dashed arc into T5: a waiting thread cannot wake itself. T2 is fired
    /// by the JVM but on behalf of the requesting thread.
    pub fn requires_other_thread(self) -> bool {
        matches!(self, Transition::T5)
    }

    /// Whether this transition is fired by the runtime (JVM) rather than by
    /// a statement in the component under test.
    pub fn fired_by_runtime(self) -> bool {
        matches!(self, Transition::T2)
    }

    /// Whether firing this transition makes the object lock available
    /// (produces a token on place E).
    pub fn releases_lock(self) -> bool {
        matches!(self, Transition::T3 | Transition::T4)
    }

    /// Whether firing this transition consumes the object lock
    /// (takes the token from place E).
    pub fn acquires_lock(self) -> bool {
        matches!(self, Transition::T2)
    }

    /// Dense index 0..5 (T1 → 0).
    pub fn index(self) -> usize {
        match self {
            Transition::T1 => 0,
            Transition::T2 => 1,
            Transition::T3 => 2,
            Transition::T4 => 3,
            Transition::T5 => 4,
        }
    }

    /// Inverse of [`Transition::index`]; panics if out of range.
    pub fn from_index(i: usize) -> Transition {
        Transition::ALL[i]
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.index() + 1)
    }
}

/// The two HAZOP-style deviations applied to each transition in Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Deviation {
    /// The transition should have fired but did not.
    FailureToFire,
    /// The transition fired when it should not have.
    ErroneousFiring,
}

impl Deviation {
    /// Both deviations, in the order Table 1 lists them.
    pub const ALL: [Deviation; 2] = [Deviation::FailureToFire, Deviation::ErroneousFiring];

    /// Short code used in the paper's section headings ("FF"/"EF").
    pub fn code(self) -> &'static str {
        match self {
            Deviation::FailureToFire => "FF",
            Deviation::ErroneousFiring => "EF",
        }
    }
}

impl fmt::Display for Deviation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Deviation::FailureToFire => "failure to fire",
            Deviation::ErroneousFiring => "erroneous firing",
        })
    }
}

/// One of the ten failure classes of Table 1: a deviation applied to a
/// transition, e.g. FF-T5 "thread is not notified".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FailureClass {
    /// The transition under analysis.
    pub transition: Transition,
    /// Which deviation of the transition occurred.
    pub deviation: Deviation,
}

impl FailureClass {
    /// Construct a failure class.
    pub fn new(deviation: Deviation, transition: Transition) -> Self {
        FailureClass {
            transition,
            deviation,
        }
    }

    /// The paper's short code, e.g. `"FF-T1"`.
    pub fn code(self) -> String {
        format!("{}-{}", self.deviation.code(), self.transition)
    }

    /// Dense index 0..10 ordered (T1..T5) × (FF, EF), matching Table 1's
    /// row order.
    pub fn index(self) -> usize {
        self.transition.index() * 2
            + match self.deviation {
                Deviation::FailureToFire => 0,
                Deviation::ErroneousFiring => 1,
            }
    }

    /// The common name for this failure, where the literature has one.
    pub fn common_name(self) -> Option<&'static str> {
        use Deviation::*;
        use Transition::*;
        match (self.deviation, self.transition) {
            (FailureToFire, T1) => Some("interference (race condition / data race)"),
            (ErroneousFiring, T1) => Some("unnecessary synchronization"),
            (FailureToFire, T2) => Some("permanent suspension (starvation / deadlock)"),
            (FailureToFire, T3) => Some("missed wait"),
            (ErroneousFiring, T3) => Some("spurious wait"),
            (FailureToFire, T4) => Some("retained lock"),
            (ErroneousFiring, T4) => Some("premature lock release"),
            (FailureToFire, T5) => Some("lost notification"),
            (ErroneousFiring, T5) => Some("premature wake-up"),
            _ => None,
        }
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// All ten failure classes in Table 1 order:
/// FF-T1, EF-T1, FF-T2, EF-T2, …, FF-T5, EF-T5.
pub const ALL_FAILURE_CLASSES: [FailureClass; 10] = {
    let mut out = [FailureClass {
        transition: Transition::T1,
        deviation: Deviation::FailureToFire,
    }; 10];
    let transitions = Transition::ALL;
    let mut ti = 0;
    while ti < 5 {
        out[ti * 2] = FailureClass {
            transition: transitions[ti],
            deviation: Deviation::FailureToFire,
        };
        out[ti * 2 + 1] = FailureClass {
            transition: transitions[ti],
            deviation: Deviation::ErroneousFiring,
        };
        ti += 1;
    }
    out
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_display_and_index_roundtrip() {
        for (i, t) in Transition::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(Transition::from_index(i), *t);
            assert_eq!(t.to_string(), format!("T{}", i + 1));
        }
    }

    #[test]
    fn only_t5_requires_other_thread() {
        let who: Vec<_> = Transition::ALL
            .iter()
            .filter(|t| t.requires_other_thread())
            .collect();
        assert_eq!(who, vec![&Transition::T5]);
    }

    #[test]
    fn lock_effects_match_figure_1() {
        // T2 consumes the E token; T3 and T4 both produce one.
        assert!(Transition::T2.acquires_lock());
        assert!(Transition::T3.releases_lock());
        assert!(Transition::T4.releases_lock());
        assert!(!Transition::T1.acquires_lock());
        assert!(!Transition::T1.releases_lock());
        assert!(!Transition::T5.acquires_lock());
        assert!(!Transition::T5.releases_lock());
    }

    #[test]
    fn failure_class_codes() {
        let ff_t1 = FailureClass::new(Deviation::FailureToFire, Transition::T1);
        assert_eq!(ff_t1.code(), "FF-T1");
        let ef_t5 = FailureClass::new(Deviation::ErroneousFiring, Transition::T5);
        assert_eq!(ef_t5.code(), "EF-T5");
        assert_eq!(ef_t5.to_string(), "EF-T5");
    }

    #[test]
    fn all_failure_classes_are_distinct_and_ordered() {
        let all = ALL_FAILURE_CLASSES;
        assert_eq!(all.len(), 10);
        for (i, fc) in all.iter().enumerate() {
            assert_eq!(fc.index(), i, "index mismatch for {fc}");
        }
        let mut codes: Vec<_> = all.iter().map(|fc| fc.code()).collect();
        codes.dedup();
        assert_eq!(codes.len(), 10);
        assert_eq!(codes[0], "FF-T1");
        assert_eq!(codes[9], "EF-T5");
    }

    #[test]
    fn common_names_cover_the_interesting_rows() {
        // EF-T2 is the row the paper declines to analyze (JVM assumed
        // correct) — it has no common name; all FF rows do.
        use Deviation::*;
        for t in Transition::ALL {
            assert!(FailureClass::new(FailureToFire, t).common_name().is_some());
        }
        assert!(FailureClass::new(ErroneousFiring, Transition::T2)
            .common_name()
            .is_none());
    }
}
