//! Interned state storage for reachability exploration.
//!
//! Exploration used to carry heap-allocated `Marking(Box<[u32]>)` values
//! everywhere: the BFS frontier, the dedup maps, the parallel shard sets
//! and the per-worker successor records each held (and cloned, and
//! SipHash-hashed) their own copies. This module replaces that with two
//! representations the engines in [`crate::reach`] choose between per net:
//!
//! * [`PackedMarking`] — the whole marking in one `u64`, one byte per
//!   place, for nets with at most [`MAX_PACKED_PLACES`] places and token
//!   counts below 256. Every model in the paper (the 5-place Figure-1
//!   monitor net) and every component scenario fits. A packed marking is
//!   `Copy`: moving it through queues, sets and edge records costs a
//!   register, and [`PackedNet`] fires transitions with two 64-bit adds.
//! * [`StateStore`] — an append-only flat arena for wider nets: each
//!   interned marking is a `stride`-long run of `u32`s stored exactly
//!   once, addressed by a dense `u32` [`StateId`]. Dedup goes through an
//!   FxHash → candidate-id bucket map, comparing token slices only on a
//!   (deterministic) hash match.
//!
//! Both representations are *deterministic by construction*: FxHash has no
//! per-process seed, arena ids are assigned in insertion order, and bucket
//! candidates are compared in insertion order — so the interleaving-free
//! sequential engines produce identical ids on every run, and the parallel
//! engine never relies on store ids for its canonical renumbering.

use crate::net::{Marking, Net, TransId};
use crate::reach::ReachLimits;
use fxhash::FxHashMap;

/// The largest number of places a marking can have and still pack into a
/// single `u64` (one byte per place).
pub const MAX_PACKED_PLACES: usize = 8;

/// A dense identifier of an interned marking inside a [`StateStore`].
///
/// Ids are assigned in insertion order starting at 0, so a store built by
/// a sequential BFS numbers states exactly in discovery order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The dense index of this state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A whole marking packed into one `u64`: place `i`'s token count lives in
/// byte `i` (little-endian — place 0 is the least-significant byte).
///
/// ```text
///   bit 63                                                    bit 0
///   ┌────────┬────────┬────────┬────────┬────────┬────────┬────────┬────────┐
///   │ place 7│ place 6│ place 5│ place 4│ place 3│ place 2│ place 1│ place 0│
///   └────────┴────────┴────────┴────────┴────────┴────────┴────────┴────────┘
///     tokens   tokens   tokens   tokens   tokens   tokens   tokens   tokens
/// ```
///
/// Unused high bytes (nets with fewer than 8 places) are zero, so equality
/// and hashing of the raw `u64` coincide with marking equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedMarking(pub u64);

impl PackedMarking {
    /// Pack a marking. `None` when the net is too wide (more than
    /// [`MAX_PACKED_PLACES`] places) or any token count exceeds 255.
    pub fn pack(marking: &Marking) -> Option<PackedMarking> {
        if marking.len() > MAX_PACKED_PLACES {
            return None;
        }
        let mut word = 0u64;
        for (i, &tokens) in marking.0.iter().enumerate() {
            if tokens > u32::from(u8::MAX) {
                return None;
            }
            word |= u64::from(tokens) << (8 * i);
        }
        Some(PackedMarking(word))
    }

    /// Unpack into a fresh `places`-long marking.
    pub fn unpack(self, places: usize) -> Marking {
        let mut tokens = vec![0u32; places];
        self.unpack_into(&mut tokens);
        Marking(tokens.into_boxed_slice())
    }

    /// Unpack into an existing buffer (the engines reuse one scratch
    /// marking instead of allocating per state).
    #[inline]
    pub fn unpack_into(self, out: &mut [u32]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.tokens(i);
        }
    }

    /// Token count of place `i`.
    #[inline]
    pub fn tokens(self, i: usize) -> u32 {
        u32::from((self.0 >> (8 * i)) as u8)
    }
}

/// One transition of a [`PackedNet`]: aggregated per-place weights as
/// byte-lane delta words plus the per-arc views the enabling and bound
/// checks walk.
#[derive(Debug, Clone)]
struct PackedTrans {
    /// Aggregated input weights, one byte per consuming place; subtracted
    /// whole (no lane can borrow into its neighbour once enabled).
    sub: u64,
    /// Aggregated output weights, one byte per producing place; added
    /// whole (no lane can carry once the bound check passed).
    add: u64,
    /// (place index, aggregated weight) of each consuming place.
    inputs: Vec<(usize, u32)>,
    /// (place index, aggregated weight) of each producing place.
    outputs: Vec<(usize, u32)>,
}

/// A net compiled for packed firing: every transition's arcs folded into
/// byte-lane delta words over [`PackedMarking`]s.
#[derive(Debug, Clone)]
pub struct PackedNet {
    places: usize,
    trans: Vec<PackedTrans>,
    initial: PackedMarking,
}

impl PackedNet {
    /// Compile `net` for packed exploration under `limits`. `None` when the
    /// net (or the limit configuration) cannot guarantee byte-lane safety:
    /// more than [`MAX_PACKED_PLACES`] places, an aggregated arc weight or
    /// initial token count above 255, or a per-place token bound above 255
    /// (the bound check is what keeps additions carry-free). An initial
    /// marking already over the token bound is also rejected: the boxed
    /// engine notices such a violation by scanning the *whole* successor
    /// marking, while the packed fire only checks produced places, so those
    /// nets take the exact-semantics wide path instead.
    pub fn try_new(net: &Net, limits: &ReachLimits) -> Option<PackedNet> {
        let places = net.num_places();
        if places > MAX_PACKED_PLACES || limits.max_tokens_per_place > u32::from(u8::MAX) {
            return None;
        }
        let m0 = net.initial_marking();
        if m0.0.iter().any(|&t| t > limits.max_tokens_per_place) {
            return None;
        }
        let initial = PackedMarking::pack(&m0)?;
        let mut trans = Vec::with_capacity(net.num_transitions());
        for t in net.transitions() {
            let inputs = aggregate_arcs(net.inputs(t), places)?;
            let outputs = aggregate_arcs(net.outputs(t), places)?;
            let lanes = |arcs: &[(usize, u32)]| {
                arcs.iter()
                    .fold(0u64, |w, &(p, weight)| w | (u64::from(weight) << (8 * p)))
            };
            trans.push(PackedTrans {
                sub: lanes(&inputs),
                add: lanes(&outputs),
                inputs,
                outputs,
            });
        }
        Some(PackedNet {
            places,
            trans,
            initial,
        })
    }

    /// Number of places of the underlying net.
    #[inline]
    pub fn places(&self) -> usize {
        self.places
    }

    /// The packed initial marking.
    #[inline]
    pub fn initial(&self) -> PackedMarking {
        self.initial
    }

    /// True if transition `t` is enabled in `m` (every consuming place
    /// holds at least the aggregated arc weight).
    #[inline]
    pub fn enabled(&self, m: PackedMarking, t: TransId) -> bool {
        self.trans[t.index()]
            .inputs
            .iter()
            .all(|&(p, w)| m.tokens(p) >= w)
    }

    /// Fire `t` (must be enabled) in `m`. Returns the successor, or
    /// `Err(place)` with the lowest-index place whose token count would
    /// exceed `bound` — the exact truncation report the boxed engine makes.
    ///
    /// Safety of the whole-word arithmetic: the enabling check guarantees
    /// every `sub` lane subtracts without borrowing, and the bound check
    /// (`bound` ≤ 255, verified per producing place *before* the add)
    /// guarantees every `add` lane stays below 256, so no carry can cross
    /// into a neighbouring place.
    #[inline]
    pub fn fire(
        &self,
        m: PackedMarking,
        t: TransId,
        bound: u32,
        max_seen: &mut u32,
    ) -> Result<PackedMarking, usize> {
        let tr = &self.trans[t.index()];
        let drained = PackedMarking(m.0.wrapping_sub(tr.sub));
        let mut violation: Option<usize> = None;
        let mut fire_max = 0u32;
        for &(p, w) in &tr.outputs {
            let tokens = drained.tokens(p) + w;
            if tokens > bound {
                // Lowest place index wins, matching the boxed engine's
                // first-offending-place scan.
                violation = Some(violation.map_or(p, |v| v.min(p)));
            } else {
                fire_max = fire_max.max(tokens);
            }
        }
        if let Some(p) = violation {
            // Out-of-bound successors never contribute to `max_seen`, just
            // as the boxed engine discards the whole marking's peak.
            return Err(p);
        }
        *max_seen = (*max_seen).max(fire_max);
        Ok(PackedMarking(drained.0.wrapping_add(tr.add)))
    }
}

/// Fold duplicate arcs to the same place into one aggregated weight;
/// `None` when an aggregate exceeds 255 (not byte-lane safe).
fn aggregate_arcs(
    arcs: &[(crate::net::PlaceId, u32)],
    places: usize,
) -> Option<Vec<(usize, u32)>> {
    let mut weight = vec![0u64; places];
    for &(p, w) in arcs {
        weight[p.index()] += u64::from(w);
    }
    let mut out = Vec::new();
    for (p, &w) in weight.iter().enumerate() {
        if w > u64::from(u8::MAX) {
            return None;
        }
        if w > 0 {
            out.push((p, w as u32));
        }
    }
    Some(out)
}

/// Append-only interning arena for markings of nets too wide to pack.
///
/// Token vectors live contiguously in one flat `Vec<u32>` (`stride` words
/// per state); the dedup index maps an FxHash of the token slice to the
/// ids of every state with that hash, compared by slice on probe. Ids are
/// insertion-ordered, so a store filled by sequential BFS *is* the
/// canonical state numbering.
#[derive(Debug)]
pub struct StateStore {
    stride: usize,
    arena: Vec<u32>,
    /// hash → insertion-ordered candidate ids (collisions are ~never, but
    /// correctness does not depend on that).
    index: FxHashMap<u64, Vec<StateId>>,
}

impl StateStore {
    /// An empty store for markings of `stride` places.
    pub fn new(stride: usize) -> StateStore {
        StateStore {
            stride,
            arena: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    /// Number of interned states.
    #[inline]
    pub fn len(&self) -> usize {
        match self.arena.len().checked_div(self.stride) {
            Some(n) => n,
            // Degenerate zero-place nets still intern the empty marking.
            None => self.index.values().map(Vec::len).sum(),
        }
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The token slice of an interned state.
    #[inline]
    pub fn tokens(&self, id: StateId) -> &[u32] {
        let start = id.index() * self.stride;
        &self.arena[start..start + self.stride]
    }

    /// Look up `tokens` without interning.
    pub fn get(&self, tokens: &[u32]) -> Option<StateId> {
        debug_assert_eq!(tokens.len(), self.stride);
        let hash = fxhash::hash64(tokens);
        self.index
            .get(&hash)?
            .iter()
            .copied()
            .find(|&id| self.tokens(id) == tokens)
    }

    /// Intern `tokens`: return its id and whether it was newly inserted.
    pub fn intern(&mut self, tokens: &[u32]) -> (StateId, bool) {
        debug_assert_eq!(tokens.len(), self.stride);
        let hash = fxhash::hash64(tokens);
        let candidates = self.index.entry(hash).or_default();
        for &id in candidates.iter() {
            let start = id.index() * self.stride;
            if &self.arena[start..start + self.stride] == tokens {
                return (id, false);
            }
        }
        let id = StateId(match self.arena.len().checked_div(self.stride) {
            Some(n) => n as u32,
            // Zero-place nets: the arena stays empty, only the empty
            // marking is ever interned.
            None => candidates.len() as u32,
        });
        self.arena.extend_from_slice(tokens);
        candidates.push(id);
        (id, true)
    }

    /// Materialize every interned state as a [`Marking`], in id order —
    /// the one allocation per state the final [`crate::reach::ReachGraph`]
    /// still makes.
    pub fn to_markings(&self) -> Vec<Marking> {
        (0..self.len())
            .map(|i| Marking(self.tokens(StateId(i as u32)).to_vec().into_boxed_slice()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;
    use proptest::prelude::*;

    fn marking(tokens: &[u32]) -> Marking {
        Marking(tokens.to_vec().into_boxed_slice())
    }

    #[test]
    fn pack_unpack_known_values() {
        let m = marking(&[1, 0, 255, 7]);
        let p = PackedMarking::pack(&m).unwrap();
        assert_eq!(p.tokens(0), 1);
        assert_eq!(p.tokens(2), 255);
        assert_eq!(p.unpack(4), m);
    }

    #[test]
    fn pack_rejects_wide_or_big() {
        assert!(PackedMarking::pack(&marking(&[0; 9])).is_none());
        assert!(PackedMarking::pack(&marking(&[256])).is_none());
        assert!(PackedMarking::pack(&marking(&[0; 8])).is_some());
        assert!(PackedMarking::pack(&marking(&[255; 8])).is_some());
    }

    #[test]
    fn packed_net_fires_like_boxed_net() {
        let mut b = NetBuilder::new();
        let p = b.place("p", 3);
        let q = b.place("q", 0);
        let t = b.weighted_transition("t", &[(p, 2)], &[(q, 5)]);
        let net = b.build().unwrap();
        let limits = ReachLimits::default();
        let pn = PackedNet::try_new(&net, &limits).unwrap();
        let m0 = pn.initial();
        assert!(pn.enabled(m0, t));
        let mut max_seen = 0;
        let m1 = pn.fire(m0, t, 64, &mut max_seen).unwrap();
        assert_eq!(m1.unpack(2), net.fire(&net.initial_marking(), t).unwrap());
        assert_eq!(max_seen, 5);
        assert!(!pn.enabled(m1, t));
    }

    #[test]
    fn packed_fire_reports_lowest_violating_place() {
        let mut b = NetBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 10);
        let r = b.place("r", 10);
        // Feeds both q and r past a bound of 10 — place index 1 must win.
        let t = b.transition("t", &[p], &[r, q]);
        let net = b.build().unwrap();
        let pn = PackedNet::try_new(&net, &ReachLimits::default()).unwrap();
        let mut max_seen = 0;
        assert_eq!(pn.fire(pn.initial(), t, 10, &mut max_seen), Err(1));
    }

    #[test]
    fn packed_net_rejects_unsafe_configurations() {
        let mut b = NetBuilder::new();
        for i in 0..9 {
            b.place(format!("p{i}"), 0);
        }
        let nine = b.build().unwrap();
        assert!(PackedNet::try_new(&nine, &ReachLimits::default()).is_none());

        let mut b = NetBuilder::new();
        let p = b.place("p", 0);
        b.weighted_transition("t", &[], &[(p, 300)]);
        let heavy = b.build().unwrap();
        assert!(PackedNet::try_new(&heavy, &ReachLimits::default()).is_none());

        let mut b = NetBuilder::new();
        b.place("p", 1);
        let small = b.build().unwrap();
        let wide_bound = ReachLimits {
            max_tokens_per_place: 300,
            ..ReachLimits::default()
        };
        assert!(PackedNet::try_new(&small, &wide_bound).is_none());
        assert!(PackedNet::try_new(&small, &ReachLimits::default()).is_some());

        // Initial marking already over the token bound: the wide engine's
        // whole-marking scan handles that case, so packing refuses it.
        let mut b = NetBuilder::new();
        b.place("p", 50);
        let loaded = b.build().unwrap();
        let tight = ReachLimits {
            max_tokens_per_place: 10,
            ..ReachLimits::default()
        };
        assert!(PackedNet::try_new(&loaded, &tight).is_none());
    }

    #[test]
    fn packed_net_aggregates_duplicate_arcs() {
        let mut b = NetBuilder::new();
        let p = b.place("p", 2);
        let q = b.place("q", 0);
        // q appears twice in the outputs: net effect +2.
        let t = b.transition("t", &[p], &[q, q]);
        let net = b.build().unwrap();
        let pn = PackedNet::try_new(&net, &ReachLimits::default()).unwrap();
        let mut max_seen = 0;
        let m1 = pn.fire(pn.initial(), t, 64, &mut max_seen).unwrap();
        assert_eq!(m1.unpack(2), net.fire(&net.initial_marking(), t).unwrap());
        assert_eq!(m1.tokens(1), 2);
    }

    #[test]
    fn store_interns_once_and_preserves_order() {
        let mut store = StateStore::new(3);
        let (a, new_a) = store.intern(&[1, 2, 3]);
        let (b, new_b) = store.intern(&[4, 5, 6]);
        let (a2, new_a2) = store.intern(&[1, 2, 3]);
        assert!(new_a && new_b && !new_a2);
        assert_eq!(a, a2);
        assert_eq!(a, StateId(0));
        assert_eq!(b, StateId(1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.tokens(b), &[4, 5, 6]);
        assert_eq!(store.get(&[1, 2, 3]), Some(a));
        assert_eq!(store.get(&[9, 9, 9]), None);
        assert_eq!(
            store.to_markings(),
            vec![marking(&[1, 2, 3]), marking(&[4, 5, 6])]
        );
    }

    #[test]
    fn store_handles_zero_stride_nets() {
        let mut store = StateStore::new(0);
        assert!(store.is_empty());
        let (id, new) = store.intern(&[]);
        assert!(new);
        assert_eq!(id, StateId(0));
        let (id2, new2) = store.intern(&[]);
        assert!(!new2);
        assert_eq!(id2, id);
        assert_eq!(store.len(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Satellite property: pack/unpack round-trips over arbitrary
        /// ≤8-place markings with byte-range token counts.
        #[test]
        fn packed_marking_roundtrips(
            tokens in proptest::collection::vec(0u32..=255, 0..=8),
        ) {
            let m = marking(&tokens);
            let p = PackedMarking::pack(&m).expect("eligible marking");
            prop_assert_eq!(p.unpack(tokens.len()), m);
            for (i, &t) in tokens.iter().enumerate() {
                prop_assert_eq!(p.tokens(i), t);
            }
            // And per-place writes land in disjoint lanes: re-packing the
            // unpacked marking is the identity on the word.
            let again = PackedMarking::pack(&p.unpack(tokens.len())).unwrap();
            prop_assert_eq!(again, p);
        }

        /// The store is a bijection between distinct token slices and ids.
        #[test]
        fn store_intern_is_injective(
            slices in proptest::collection::vec(
                proptest::collection::vec(0u32..4, 4),
                1..40,
            ),
        ) {
            let mut store = StateStore::new(4);
            let mut reference: Vec<Vec<u32>> = Vec::new();
            for s in &slices {
                let (id, new) = store.intern(s);
                match reference.iter().position(|r| r == s) {
                    Some(pos) => {
                        prop_assert!(!new);
                        prop_assert_eq!(id.index(), pos);
                    }
                    None => {
                        prop_assert!(new);
                        prop_assert_eq!(id.index(), reference.len());
                        reference.push(s.clone());
                    }
                }
                prop_assert_eq!(store.tokens(id), s.as_slice());
            }
            prop_assert_eq!(store.len(), reference.len());
        }
    }
}
