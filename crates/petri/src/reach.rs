//! Reachability analysis: exhaustive state-space exploration with
//! configurable limits, deadlock detection and boundedness statistics.
//!
//! The hot paths run over *interned* states (see [`crate::state`]): nets
//! with at most [`crate::state::MAX_PACKED_PLACES`] places and byte-range
//! token counts explore entirely over `Copy` [`PackedMarking`] words, and
//! wider nets intern each marking once into a [`StateStore`] arena so the
//! BFS frontier and dedup maps carry dense `u32` ids instead of cloned
//! boxed slices. Dedup hashing uses the vendored deterministic FxHash.
//! The pre-interning engine survives as [`ReachGraph::explore_boxed`], the
//! reference for differential tests and benchmarks.
//!
//! Exploration is parallel when [`ReachLimits::parallelism`] asks for more
//! than one thread: workers share a work-stealing frontier (popped in small
//! batches to cut lock traffic) and a seen-set sharded by marking hash,
//! then a canonical renumbering pass rebuilds the graph in sequential-BFS
//! discovery order, so the resulting [`ReachGraph`] is identical to the one
//! the sequential engine produces. Exploration that would truncate (state
//! limit or token bound) falls back to the sequential engine so truncation
//! semantics stay exact.
//!
//! [`ReachLimits::reduction`] turns on sound state-space reduction (see
//! [`crate::reduce`]): thread-lane symmetry quotienting canonicalizes every
//! marking before dedup, and ample-set partial-order reduction expands only
//! a stubborn subset of the enabled transitions per state. Both preserve
//! the reachable dead markings (up to symmetry canonicalization) — the
//! verdicts the Table-1 classification needs — while exploring a fraction
//! of the raw graph. Reduction applies identically in the sequential and
//! parallel engines, so the canonical-renumbering byte-determinism
//! guarantee holds for the *reduced* graph at any thread count.
//! [`ReachGraph::explore_filtered`] forces reduction off: side-condition
//! filters carry dependencies the static independence relation cannot see.
//!
//! When `jcc-obs` recording is enabled, the engines publish `petri.reach.*`
//! metrics (states, edges, deadlocks, dedup hits, frontier high-water,
//! steals, queue batches, interned/packed state counts, truncations) and
//! time themselves under `span.petri.reach.*`. Tallies are accumulated in
//! plain locals and flushed once per exploration, so the hot loop is
//! untouched and totals are deterministic; observation never changes the
//! resulting graph.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use fxhash::{FxHashMap, FxHashSet};

use crate::net::{Marking, Net, TransId};
use crate::parallel::{BatchPolicy, Parallelism};
use crate::reduce::{LaneCanon, Reduction, StubbornSets, SymmetrySpec};
use crate::state::{PackedMarking, PackedNet, StateId, StateStore};

/// Limits on state-space exploration.
#[derive(Debug, Clone, Copy)]
pub struct ReachLimits {
    /// Maximum number of distinct markings to discover.
    pub max_states: usize,
    /// Maximum token count allowed on any single place; exceeding it aborts
    /// exploration and flags the net as (probably) unbounded.
    pub max_tokens_per_place: u32,
    /// Worker threads for the exploration. `threads = 1` runs the
    /// sequential engine; more threads run the work-stealing engine whose
    /// output is canonically renumbered to match the sequential graph.
    pub parallelism: Parallelism,
    /// State-space reduction knobs (symmetry quotient + ample sets).
    /// Off by default; ignored by [`ReachGraph::explore_filtered`] and
    /// [`ReachGraph::explore_boxed`], which stay exhaustive ground truth.
    pub reduction: Reduction,
    /// Frontier batch sizing for the parallel engine. Only affects
    /// scheduling, never the (canonically renumbered) result graph.
    pub batch: BatchPolicy,
}

impl Default for ReachLimits {
    fn default() -> Self {
        ReachLimits {
            max_states: 1_000_000,
            max_tokens_per_place: 64,
            parallelism: Parallelism::default(),
            reduction: Reduction::NONE,
            batch: BatchPolicy::Adaptive,
        }
    }
}

/// A [`Reduction`] request resolved against a concrete net: the symmetry
/// spec is dropped unless it verifies as a net automorphism, and the
/// stubborn-set precomputation is built once per exploration.
struct ActiveReduction {
    symmetry: Option<SymmetrySpec>,
    stubborn: Option<StubbornSets>,
}

impl ActiveReduction {
    fn none() -> ActiveReduction {
        ActiveReduction {
            symmetry: None,
            stubborn: None,
        }
    }

    fn resolve(net: &Net, r: Reduction) -> ActiveReduction {
        let symmetry = r.symmetry.filter(|s| s.lanes > 1 && s.is_automorphism(net));
        if r.symmetry.is_some() && symmetry.is_none() {
            jcc_obs::event!("petri.reach.symmetry_rejected"; "reason" => "spec is not a net automorphism");
        }
        ActiveReduction {
            symmetry,
            stubborn: if r.ample {
                Some(StubbornSets::new(net))
            } else {
                None
            },
        }
    }
}

/// Per-exploration tallies the sequential engines accumulate in locals and
/// flush once, keeping the hot loop free of registry traffic.
#[derive(Default)]
struct SeqTallies {
    dedup_hits: u64,
    frontier_peak: usize,
    ample_pruned: u64,
    symmetry_hits: u64,
    ample_active: bool,
    symmetry_active: bool,
}

/// Why exploration stopped before exhausting the state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truncation {
    /// The state limit was reached.
    StateLimit,
    /// A place exceeded the per-place token bound.
    TokenBound {
        /// Index of the offending place.
        place_index: usize,
    },
}

/// Summary statistics of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachStats {
    /// Distinct markings discovered.
    pub states: usize,
    /// Directed edges (marking, transition, marking') discovered.
    pub edges: usize,
    /// Number of dead markings (no transition enabled).
    pub deadlocks: usize,
    /// Largest token count seen on any place.
    pub max_tokens_seen: u32,
    /// Whether and why exploration was truncated.
    pub truncated: Option<Truncation>,
}

/// An explicit reachability graph: the set of reachable markings and the
/// labelled edges between them.
#[derive(Debug, Clone)]
pub struct ReachGraph {
    markings: Vec<Marking>,
    index: FxHashMap<Marking, usize>,
    /// edges[state] = (transition fired, successor state)
    edges: Vec<Vec<(TransId, usize)>>,
    stats: ReachStats,
}

impl ReachGraph {
    /// Explore the full state space of `net` from its initial marking.
    ///
    /// Honors [`ReachLimits::reduction`]: with symmetry and/or ample sets
    /// on, the explored graph is a sound quotient that preserves the
    /// reachable dead markings (up to lane canonicalization) but not edge
    /// or state counts.
    pub fn explore(net: &Net, limits: ReachLimits) -> ReachGraph {
        let red = ActiveReduction::resolve(net, limits.reduction);
        Self::explore_with(net, limits, &|_, _| true, red)
    }

    /// Explore, but only follow firings for which `filter` returns true.
    /// Used to impose side conditions the plain net cannot express (e.g. the
    /// dashed notification arc of Figure 1).
    ///
    /// Side-condition filters encode dependencies the static independence
    /// relation cannot see, so [`ReachLimits::reduction`] is forced off
    /// here: filtered exploration is always exhaustive.
    ///
    /// With `limits.parallelism.threads > 1` the state space is discovered
    /// by parallel workers and canonically renumbered; the returned graph
    /// is identical to the sequential one (explorations that truncate are
    /// re-run sequentially to preserve exact truncation semantics).
    pub fn explore_filtered(
        net: &Net,
        limits: ReachLimits,
        filter: impl Fn(&Marking, TransId) -> bool + Sync,
    ) -> ReachGraph {
        Self::explore_with(net, limits, &filter, ActiveReduction::none())
    }

    /// Shared dispatch behind [`ReachGraph::explore`] and
    /// [`ReachGraph::explore_filtered`].
    fn explore_with(
        net: &Net,
        limits: ReachLimits,
        filter: &(impl Fn(&Marking, TransId) -> bool + Sync),
        mut red: ActiveReduction,
    ) -> ReachGraph {
        // Live progress is publish-only: the cell is a mailbox watcher
        // threads read; nothing in it feeds back into exploration.
        let live = jcc_obs::progress_enabled();
        if live {
            jcc_obs::reach_progress().begin(limits.max_states as u64);
        }
        let graph = if limits.parallelism.is_sequential() {
            Self::explore_sequential(net, limits, filter, &mut red)
        } else {
            match Self::explore_parallel(net, limits, filter, &red) {
                Some(graph) => graph,
                // Truncated: replay sequentially so the partial graph is
                // the exact prefix the sequential engine reports.
                None => Self::explore_sequential(net, limits, filter, &mut red),
            }
        };
        if live {
            jcc_obs::reach_progress().finish(graph.stats.states as u64);
        }
        graph
    }

    /// The pre-interning single-threaded engine, kept verbatim as the
    /// reference implementation: boxed markings in a `VecDeque` frontier,
    /// SipHash dedup map, one clone per queue hop. Differential tests pit
    /// the interned engines against it, and the benchmark suite uses it to
    /// measure the packed-vs-boxed gap. Never publishes obs metrics, so a
    /// reference run does not pollute throughput counters.
    pub fn explore_boxed(
        net: &Net,
        limits: ReachLimits,
        filter: impl Fn(&Marking, TransId) -> bool,
    ) -> ReachGraph {
        let mut markings: Vec<Marking> = Vec::new();
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut edges: Vec<Vec<(TransId, usize)>> = Vec::new();
        let mut queue = VecDeque::new();
        let mut truncated = None;
        let mut max_tokens_seen = 0;

        let m0 = net.initial_marking();
        max_tokens_seen = max_tokens_seen.max(m0.0.iter().copied().max().unwrap_or(0));
        index.insert(m0.clone(), 0);
        markings.push(m0);
        edges.push(Vec::new());
        queue.push_back(0usize);

        'outer: while let Some(cur) = queue.pop_front() {
            let marking = markings[cur].clone();
            for t in net.transitions() {
                if !net.enabled(&marking, t) || !filter(&marking, t) {
                    continue;
                }
                let next = net.fire(&marking, t).expect("enabled");
                let peak = next.0.iter().copied().max().unwrap_or(0);
                if peak > limits.max_tokens_per_place {
                    let place_index = next
                        .0
                        .iter()
                        .position(|&x| x > limits.max_tokens_per_place)
                        .unwrap_or(0);
                    truncated = Some(Truncation::TokenBound { place_index });
                    break 'outer;
                }
                max_tokens_seen = max_tokens_seen.max(peak);
                let next_id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        if markings.len() >= limits.max_states {
                            truncated = Some(Truncation::StateLimit);
                            break 'outer;
                        }
                        let id = markings.len();
                        index.insert(next.clone(), id);
                        markings.push(next);
                        edges.push(Vec::new());
                        queue.push_back(id);
                        id
                    }
                };
                edges[cur].push((t, next_id));
            }
        }

        let deadlocks = markings.iter().filter(|m| net.is_deadlocked(m)).count();
        let edge_count = edges.iter().map(Vec::len).sum();
        let stats = ReachStats {
            states: markings.len(),
            edges: edge_count,
            deadlocks,
            max_tokens_seen,
            truncated,
        };
        ReachGraph {
            markings,
            index: index.into_iter().collect(),
            edges,
            stats,
        }
    }

    /// Sequential dispatch: packed engine when the net fits one `u64` per
    /// marking, interned wide engine otherwise. Canonical: state IDs are
    /// discovery order, edge lists are in transition order.
    fn explore_sequential(
        net: &Net,
        limits: ReachLimits,
        filter: &(impl Fn(&Marking, TransId) -> bool + Sync),
        red: &mut ActiveReduction,
    ) -> ReachGraph {
        let _span = jcc_obs::span!("petri.reach.sequential");
        match PackedNet::try_new(net, &limits) {
            Some(pn) => Self::sequential_packed(net, &pn, limits, filter, red),
            None => Self::sequential_wide(net, limits, filter, red),
        }
    }

    /// BFS over `u64`-packed markings: the frontier is an arena cursor (no
    /// queue allocation at all), dedup is a word → id map, and firing is
    /// two wide adds per transition.
    fn sequential_packed(
        net: &Net,
        pn: &PackedNet,
        limits: ReachLimits,
        filter: &(impl Fn(&Marking, TransId) -> bool + Sync),
        red: &mut ActiveReduction,
    ) -> ReachGraph {
        let bound = limits.max_tokens_per_place;
        let places = net.num_places();
        let sym = red.symmetry;
        let mut tallies = SeqTallies {
            ample_active: red.stubborn.is_some(),
            symmetry_active: sym.is_some(),
            ..SeqTallies::default()
        };
        let mut ample_buf: Vec<TransId> = Vec::new();
        let mut states: Vec<PackedMarking> = Vec::new();
        let mut seen: FxHashMap<u64, u32> = FxHashMap::default();
        let mut edges: Vec<Vec<(TransId, usize)>> = Vec::new();
        let mut truncated = None;

        let mut m0 = pn.initial();
        if let Some(s) = sym {
            m0 = s.canonicalize_packed(m0);
        }
        let mut max_tokens_seen = (0..places).map(|i| m0.tokens(i)).max().unwrap_or(0);
        seen.insert(m0.0, 0);
        states.push(m0);
        edges.push(Vec::new());

        // `filter` speaks boxed markings; one scratch buffer serves every
        // expanded state.
        let mut scratch = net.initial_marking();
        let mut cur = 0usize;
        // States `cur..states.len()` *are* the BFS queue: ids are assigned
        // in discovery order, so the arena doubles as the frontier.
        'outer: while cur < states.len() {
            tallies.frontier_peak = tallies.frontier_peak.max(states.len() - cur);
            if cur & 1023 == 0 && jcc_obs::progress_enabled() {
                let cell = jcc_obs::reach_progress();
                cell.publish(states.len() as u64, (states.len() - cur) as u64, cur as u64);
                cell.set_saved(tallies.ample_pruned + tallies.symmetry_hits);
            }
            let m = states[cur];
            m.unpack_into(&mut scratch.0);
            // One successor: fire, canonicalize, dedup, record the edge.
            macro_rules! visit {
                ($t:expr) => {{
                    let t = $t;
                    let next = match pn.fire(m, t, bound, &mut max_tokens_seen) {
                        Ok(next) => next,
                        Err(place_index) => {
                            truncated = Some(Truncation::TokenBound { place_index });
                            break 'outer;
                        }
                    };
                    let next = match sym {
                        Some(s) => {
                            let canon = s.canonicalize_packed(next);
                            if canon.0 != next.0 {
                                tallies.symmetry_hits += 1;
                            }
                            canon
                        }
                        None => next,
                    };
                    let next_id = match seen.get(&next.0) {
                        Some(&id) => {
                            tallies.dedup_hits += 1;
                            id as usize
                        }
                        None => {
                            if states.len() >= limits.max_states {
                                truncated = Some(Truncation::StateLimit);
                                break 'outer;
                            }
                            let id = states.len();
                            seen.insert(next.0, id as u32);
                            states.push(next);
                            edges.push(Vec::new());
                            id
                        }
                    };
                    edges[cur].push((t, next_id));
                }};
            }
            if let Some(st) = red.stubborn.as_mut() {
                let n_enabled = st.ample_into(&scratch.0, &mut ample_buf);
                tallies.ample_pruned += (n_enabled - ample_buf.len()) as u64;
                for &t in &ample_buf {
                    visit!(t);
                }
            } else {
                for t in net.transitions() {
                    if !pn.enabled(m, t) || !filter(&scratch, t) {
                        continue;
                    }
                    visit!(t);
                }
            }
            cur += 1;
        }

        let markings: Vec<Marking> = states.iter().map(|s| s.unpack(places)).collect();
        Self::finish_sequential(net, markings, edges, max_tokens_seen, truncated, tallies, true)
    }

    /// BFS for nets too wide to pack: markings are interned once into a
    /// [`StateStore`] arena and the frontier is a cursor over its dense
    /// ids; the only per-state allocation left is the arena growth itself.
    fn sequential_wide(
        net: &Net,
        limits: ReachLimits,
        filter: &(impl Fn(&Marking, TransId) -> bool + Sync),
        red: &mut ActiveReduction,
    ) -> ReachGraph {
        let places = net.num_places();
        let mut tallies = SeqTallies {
            ample_active: red.stubborn.is_some(),
            symmetry_active: red.symmetry.is_some(),
            ..SeqTallies::default()
        };
        let mut canon = red.symmetry.map(LaneCanon::new);
        let mut ample_buf: Vec<TransId> = Vec::new();
        let mut store = StateStore::new(places);
        let mut edges: Vec<Vec<(TransId, usize)>> = Vec::new();
        let mut truncated = None;

        let mut m0 = net.initial_marking();
        if let Some(c) = canon.as_mut() {
            c.canonicalize(&mut m0.0);
        }
        let mut max_tokens_seen = m0.0.iter().copied().max().unwrap_or(0);
        let (id0, _) = store.intern(&m0.0);
        debug_assert_eq!(id0, StateId(0));
        edges.push(Vec::new());

        // Two scratch buffers: the state being expanded and the successor
        // under construction. Firing writes into `succ` directly, so the
        // loop never allocates a marking.
        let mut scratch = m0.clone();
        let mut succ = m0;
        let mut cur = 0usize;
        'outer: while cur < store.len() {
            tallies.frontier_peak = tallies.frontier_peak.max(store.len() - cur);
            if cur & 1023 == 0 && jcc_obs::progress_enabled() {
                let cell = jcc_obs::reach_progress();
                cell.publish(store.len() as u64, (store.len() - cur) as u64, cur as u64);
                cell.set_saved(tallies.ample_pruned + tallies.symmetry_hits);
            }
            scratch.0.copy_from_slice(store.tokens(StateId(cur as u32)));
            // One successor: fire in place (arc weights are pre-aggregated
            // by the builder, so per-place subtract/add matches
            // `Net::fire`), canonicalize, dedup, record the edge.
            macro_rules! visit {
                ($t:expr) => {{
                    let t = $t;
                    succ.0.copy_from_slice(&scratch.0);
                    for &(p, w) in net.inputs(t) {
                        succ.0[p.index()] -= w;
                    }
                    for &(p, w) in net.outputs(t) {
                        succ.0[p.index()] += w;
                    }
                    let peak = succ.0.iter().copied().max().unwrap_or(0);
                    if peak > limits.max_tokens_per_place {
                        let place_index = succ
                            .0
                            .iter()
                            .position(|&x| x > limits.max_tokens_per_place)
                            .unwrap_or(0);
                        truncated = Some(Truncation::TokenBound { place_index });
                        break 'outer;
                    }
                    max_tokens_seen = max_tokens_seen.max(peak);
                    if let Some(c) = canon.as_mut() {
                        if c.canonicalize(&mut succ.0) {
                            tallies.symmetry_hits += 1;
                        }
                    }
                    let next_id = match store.get(&succ.0) {
                        Some(id) => {
                            tallies.dedup_hits += 1;
                            id.index()
                        }
                        None => {
                            if store.len() >= limits.max_states {
                                truncated = Some(Truncation::StateLimit);
                                break 'outer;
                            }
                            let (id, _) = store.intern(&succ.0);
                            edges.push(Vec::new());
                            id.index()
                        }
                    };
                    edges[cur].push((t, next_id));
                }};
            }
            if let Some(st) = red.stubborn.as_mut() {
                let n_enabled = st.ample_into(&scratch.0, &mut ample_buf);
                tallies.ample_pruned += (n_enabled - ample_buf.len()) as u64;
                for &t in &ample_buf {
                    visit!(t);
                }
            } else {
                for t in net.transitions() {
                    if !net.enabled(&scratch, t) || !filter(&scratch, t) {
                        continue;
                    }
                    visit!(t);
                }
            }
            cur += 1;
        }

        let markings = store.to_markings();
        Self::finish_sequential(net, markings, edges, max_tokens_seen, truncated, tallies, false)
    }

    /// Shared tail of the sequential engines: stats, obs flush, index
    /// build. `packed` notes which representation carried the exploration.
    fn finish_sequential(
        net: &Net,
        markings: Vec<Marking>,
        edges: Vec<Vec<(TransId, usize)>>,
        max_tokens_seen: u32,
        truncated: Option<Truncation>,
        tallies: SeqTallies,
        packed: bool,
    ) -> ReachGraph {
        let deadlocks = markings.iter().filter(|m| net.is_deadlocked(m)).count();
        let edge_count = edges.iter().map(Vec::len).sum();
        let stats = ReachStats {
            states: markings.len(),
            edges: edge_count,
            deadlocks,
            max_tokens_seen,
            truncated,
        };
        if jcc_obs::enabled() {
            let reg = jcc_obs::global();
            reg.counter("petri.reach.dedup_hits").add(tallies.dedup_hits);
            reg.gauge("petri.reach.frontier_peak")
                .set_max(tallies.frontier_peak as u64);
            if tallies.ample_active {
                reg.counter("petri.reach.ample_pruned")
                    .add(tallies.ample_pruned);
            }
            if tallies.symmetry_active {
                reg.counter("petri.reach.symmetry_hits")
                    .add(tallies.symmetry_hits);
            }
            Self::flush_representation(&stats, packed);
            Self::flush_stats(&stats);
        }
        let index = markings
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, m)| (m, i))
            .collect();
        ReachGraph {
            markings,
            index,
            edges,
            stats,
        }
    }

    /// Publish which state representation carried an exploration.
    fn flush_representation(stats: &ReachStats, packed: bool) {
        let reg = jcc_obs::global();
        reg.counter("petri.reach.interned").add(stats.states as u64);
        if packed {
            reg.counter("petri.reach.packed").add(stats.states as u64);
        }
    }

    /// Publish an exploration's summary statistics to the global registry.
    /// Called once per engine run, never from the hot loop.
    fn flush_stats(stats: &ReachStats) {
        let reg = jcc_obs::global();
        reg.counter("petri.reach.explorations").inc();
        reg.counter("petri.reach.states").add(stats.states as u64);
        reg.counter("petri.reach.edges").add(stats.edges as u64);
        reg.counter("petri.reach.deadlocks")
            .add(stats.deadlocks as u64);
        if stats.truncated.is_some() {
            reg.counter("petri.reach.truncations").inc();
        }
    }

    /// Parallel dispatch: the work-stealing engine runs over `Copy` packed
    /// words when the net fits, owned markings otherwise. Returns `None`
    /// when the exploration hit a limit (caller falls back to the
    /// sequential engine for exact truncation semantics).
    fn explore_parallel(
        net: &Net,
        limits: ReachLimits,
        filter: &(impl Fn(&Marking, TransId) -> bool + Sync),
        red: &ActiveReduction,
    ) -> Option<ReachGraph> {
        let _span = jcc_obs::span!("petri.reach.parallel");
        // Reduction tallies, accumulated Relaxed: each is a sum of
        // per-state quantities over the deterministic explored set, so the
        // totals are deterministic despite racing workers.
        let ample_pruned = AtomicUsize::new(0);
        let symmetry_hits = AtomicUsize::new(0);
        let sym = red.symmetry;
        let graph = match PackedNet::try_new(net, &limits) {
            Some(pn) => {
                let places = net.num_places();
                let bound = limits.max_tokens_per_place;
                let pn = &pn;
                let stub = &red.stubborn;
                let ample_pruned = &ample_pruned;
                let symmetry_hits = &symmetry_hits;
                let mut m0 = pn.initial();
                if let Some(s) = sym {
                    m0 = s.canonicalize_packed(m0);
                }
                type PackedCtx = (Marking, Option<StubbornSets>, Vec<TransId>);
                Self::parallel_generic(
                    net,
                    limits,
                    m0,
                    // Per-worker scratch: a marking for the filter/ample
                    // callbacks, a private stubborn-set engine, a buffer
                    // for the ample transitions.
                    &|| (net.initial_marking(), stub.clone(), Vec::new()),
                    &move |ctx: &mut PackedCtx,
                           m: &PackedMarking,
                           succs: &mut Vec<(TransId, PackedMarking)>| {
                        let (scratch, stubborn, ample_buf) = ctx;
                        m.unpack_into(&mut scratch.0);
                        let fire = |t: TransId, succs: &mut Vec<(TransId, PackedMarking)>| {
                            let mut sink = 0u32;
                            match pn.fire(*m, t, bound, &mut sink) {
                                Ok(next) => {
                                    let next = match sym {
                                        Some(s) => {
                                            let canon = s.canonicalize_packed(next);
                                            if canon.0 != next.0 {
                                                symmetry_hits.fetch_add(1, Ordering::Relaxed);
                                            }
                                            canon
                                        }
                                        None => next,
                                    };
                                    succs.push((t, next));
                                    false
                                }
                                Err(_) => true,
                            }
                        };
                        if let Some(st) = stubborn.as_mut() {
                            let n_enabled = st.ample_into(&scratch.0, ample_buf);
                            ample_pruned
                                .fetch_add(n_enabled - ample_buf.len(), Ordering::Relaxed);
                            for &t in ample_buf.iter() {
                                if fire(t, succs) {
                                    return true;
                                }
                            }
                        } else {
                            for t in net.transitions() {
                                if !pn.enabled(*m, t) || !filter(scratch, t) {
                                    continue;
                                }
                                if fire(t, succs) {
                                    return true;
                                }
                            }
                        }
                        false
                    },
                    &|s: &PackedMarking| s.unpack(places),
                    true,
                )
            }
            None => {
                let bound = limits.max_tokens_per_place;
                let stub = &red.stubborn;
                let ample_pruned = &ample_pruned;
                let symmetry_hits = &symmetry_hits;
                let mut m0 = net.initial_marking();
                if let Some(s) = sym {
                    m0 = s.canonicalize_marking(&m0);
                }
                type WideCtx = (Option<StubbornSets>, Option<LaneCanon>, Vec<TransId>);
                Self::parallel_generic(
                    net,
                    limits,
                    m0,
                    &|| (stub.clone(), sym.map(LaneCanon::new), Vec::new()),
                    &move |ctx: &mut WideCtx, m: &Marking, succs: &mut Vec<(TransId, Marking)>| {
                        let (stubborn, canon, ample_buf) = ctx;
                        let mut fire = |t: TransId, succs: &mut Vec<(TransId, Marking)>| {
                            let mut next = net.fire(m, t).expect("enabled");
                            if next.0.iter().copied().max().unwrap_or(0) > bound {
                                return true;
                            }
                            if let Some(c) = canon.as_mut() {
                                if c.canonicalize(&mut next.0) {
                                    symmetry_hits.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            succs.push((t, next));
                            false
                        };
                        if let Some(st) = stubborn.as_mut() {
                            let n_enabled = st.ample_into(&m.0, ample_buf);
                            ample_pruned
                                .fetch_add(n_enabled - ample_buf.len(), Ordering::Relaxed);
                            for &t in ample_buf.iter() {
                                if fire(t, succs) {
                                    return true;
                                }
                            }
                        } else {
                            for t in net.transitions() {
                                if !net.enabled(m, t) || !filter(m, t) {
                                    continue;
                                }
                                if fire(t, succs) {
                                    return true;
                                }
                            }
                        }
                        false
                    },
                    &|s: &Marking| s.clone(),
                    false,
                )
            }
        };
        // Flush only for completed runs: every state is expanded exactly
        // once, so these totals are deterministic. Aborted runs replay
        // sequentially and flush their own (exact) tallies instead.
        if graph.is_some() && jcc_obs::enabled() {
            let reg = jcc_obs::global();
            if red.stubborn.is_some() {
                reg.counter("petri.reach.ample_pruned")
                    .add(ample_pruned.load(Ordering::Relaxed) as u64);
            }
            if sym.is_some() {
                reg.counter("petri.reach.symmetry_hits")
                    .add(symmetry_hits.load(Ordering::Relaxed) as u64);
            }
        }
        graph
    }

    /// Parallel discovery, generic over the state representation `S`
    /// (packed `u64` words or owned markings): work-stealing frontier with
    /// batched pops + FxHash-sharded seen-set, then a canonical renumbering
    /// pass. `expand` lists one state's successors into the given buffer
    /// (returning `true` to abort on a token-bound violation); `make_ctx`
    /// builds each worker's private scratch space.
    fn parallel_generic<S, C>(
        net: &Net,
        limits: ReachLimits,
        m0: S,
        make_ctx: &(impl Fn() -> C + Sync),
        expand: &(impl Fn(&mut C, &S, &mut Vec<(TransId, S)>) -> bool + Sync),
        to_marking: &impl Fn(&S) -> Marking,
        packed: bool,
    ) -> Option<ReachGraph>
    where
        S: Clone + Eq + Hash + Send + Sync,
    {
        // Worker-local tallies land here once per worker; flushed to the
        // global registry after the join so totals are deterministic.
        let total_steals = AtomicUsize::new(0);
        let total_dedup_hits = AtomicUsize::new(0);
        let total_batches = AtomicUsize::new(0);
        let threads = limits.parallelism.threads;
        let shard_count = (threads * 8).next_power_of_two();
        let shards: Vec<Mutex<FxHashSet<S>>> = (0..shard_count)
            .map(|_| Mutex::new(FxHashSet::default()))
            .collect();
        let queues: Vec<Mutex<VecDeque<S>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        // Per-worker successor records, merged after the join.
        type SuccessorRecord<S> = (S, Vec<(TransId, S)>);
        let records: Vec<Mutex<Vec<SuccessorRecord<S>>>> =
            (0..threads).map(|_| Mutex::new(Vec::new())).collect();

        let aborted = AtomicBool::new(false);
        let discovered = AtomicUsize::new(1);
        // States queued or currently being expanded; 0 means exploration
        // is complete (successors are enqueued before the parent retires).
        let pending = AtomicUsize::new(1);

        shards[Self::shard_of(&m0, shard_count)]
            .lock()
            .expect("shard lock")
            .insert(m0.clone());
        queues[0].lock().expect("queue lock").push_back(m0.clone());

        crossbeam::scope(|scope| {
            for w in 0..threads {
                let shards = &shards;
                let queues = &queues;
                let records = &records;
                let aborted = &aborted;
                let discovered = &discovered;
                let pending = &pending;
                let total_steals = &total_steals;
                let total_dedup_hits = &total_dedup_hits;
                let total_batches = &total_batches;
                scope.spawn(move || {
                    let mut ctx = make_ctx();
                    let mut steals: usize = 0;
                    let mut dedup_hits: usize = 0;
                    let mut batches: usize = 0;
                    let mut expanded: usize = 0;
                    let mut local: Vec<SuccessorRecord<S>> = Vec::new();
                    // States grabbed but not yet expanded; they stay
                    // counted in `pending` until their record is pushed.
                    let mut batch: VecDeque<S> = VecDeque::new();
                    loop {
                        if aborted.load(Ordering::Relaxed) {
                            break;
                        }
                        if batch.is_empty() {
                            // Refill in one lock grab: own queue first
                            // (front, preserving rough BFS order), then
                            // steal a smaller slice from a victim's back.
                            // Batch sizes come from the configured policy;
                            // the adaptive default leaves half the visible
                            // queue behind so other workers can steal it.
                            {
                                let mut q = queues[w].lock().expect("queue lock");
                                let take = limits.batch.own_batch(q.len());
                                for _ in 0..take {
                                    match q.pop_front() {
                                        Some(s) => batch.push_back(s),
                                        None => break,
                                    }
                                }
                            }
                            if batch.is_empty() {
                                for v in 1..threads {
                                    let victim = (w + v) % threads;
                                    let mut q = queues[victim].lock().expect("queue lock");
                                    let take = limits.batch.steal_batch(q.len());
                                    for _ in 0..take {
                                        match q.pop_back() {
                                            Some(s) => batch.push_back(s),
                                            None => break,
                                        }
                                    }
                                    if !batch.is_empty() {
                                        steals += 1;
                                        if jcc_obs::progress_enabled() {
                                            jcc_obs::reach_progress().add_steals(1);
                                        }
                                        break;
                                    }
                                }
                            }
                            if batch.is_empty() {
                                if pending.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                                continue;
                            }
                            batches += 1;
                        }
                        let state = batch.pop_front().expect("non-empty batch");
                        expanded += 1;
                        if expanded & 1023 == 0 && jcc_obs::progress_enabled() {
                            jcc_obs::reach_progress().publish(
                                discovered.load(Ordering::Relaxed) as u64,
                                pending.load(Ordering::Relaxed) as u64,
                                0,
                            );
                        }

                        let mut succs: Vec<(TransId, S)> = Vec::new();
                        if expand(&mut ctx, &state, &mut succs) {
                            // Token bound violated: the sequential replay
                            // will reproduce the exact truncation report.
                            aborted.store(true, Ordering::Relaxed);
                            local.push((state, succs));
                            pending.fetch_sub(1, Ordering::Release);
                            break;
                        }
                        for (_, next) in &succs {
                            let is_new = shards[Self::shard_of(next, shard_count)]
                                .lock()
                                .expect("shard lock")
                                .insert(next.clone());
                            if is_new {
                                if discovered.fetch_add(1, Ordering::Relaxed) + 1
                                    > limits.max_states
                                {
                                    aborted.store(true, Ordering::Relaxed);
                                    break;
                                }
                                pending.fetch_add(1, Ordering::Release);
                                queues[w].lock().expect("queue lock").push_back(next.clone());
                            } else {
                                dedup_hits += 1;
                            }
                        }
                        local.push((state, succs));
                        pending.fetch_sub(1, Ordering::Release);
                    }
                    *records[w].lock().expect("record lock") = local;
                    total_steals.fetch_add(steals, Ordering::Relaxed);
                    total_dedup_hits.fetch_add(dedup_hits, Ordering::Relaxed);
                    total_batches.fetch_add(batches, Ordering::Relaxed);
                });
            }
        });

        if jcc_obs::enabled() {
            let reg = jcc_obs::global();
            reg.counter("petri.reach.steals")
                .add(total_steals.load(Ordering::Relaxed) as u64);
            reg.counter("petri.reach.dedup_hits")
                .add(total_dedup_hits.load(Ordering::Relaxed) as u64);
            reg.counter("petri.reach.queue_batches")
                .add(total_batches.load(Ordering::Relaxed) as u64);
        }
        if aborted.load(Ordering::Relaxed) {
            jcc_obs::event!("petri.reach.parallel_abort"; "reason" => "limit hit, sequential replay");
            return None;
        }

        let mut successors: FxHashMap<S, Vec<(TransId, S)>> = FxHashMap::default();
        for record in records {
            for (state, succs) in record.into_inner().expect("record lock") {
                successors.insert(state, succs);
            }
        }
        Some(Self::renumber_canonical(
            net,
            &m0,
            &successors,
            to_marking,
            packed,
        ))
    }

    /// Shard index of a state (FxHash-partitioned seen-set).
    fn shard_of<S: Hash>(state: &S, shard_count: usize) -> usize {
        (fxhash::hash64(state) as usize) & (shard_count - 1)
    }

    /// Rebuild the graph in canonical sequential-BFS order from the
    /// (unordered) state → successors map the parallel workers produced.
    /// Successor lists are already in transition order, so assigning state
    /// IDs by BFS discovery reproduces the sequential graph exactly.
    fn renumber_canonical<S: Clone + Eq + Hash>(
        net: &Net,
        m0: &S,
        successors: &FxHashMap<S, Vec<(TransId, S)>>,
        to_marking: &impl Fn(&S) -> Marking,
        packed: bool,
    ) -> ReachGraph {
        let _span = jcc_obs::span!("petri.reach.renumber");
        let total = successors.len();
        let mut markings: Vec<Marking> = Vec::with_capacity(total);
        let mut keys: Vec<S> = Vec::with_capacity(total);
        let mut ids: FxHashMap<S, usize> = FxHashMap::default();
        let mut edges: Vec<Vec<(TransId, usize)>> = Vec::with_capacity(total);
        let mut queue = VecDeque::new();

        let first = to_marking(m0);
        let mut max_tokens_seen = first.0.iter().copied().max().unwrap_or(0);
        ids.insert(m0.clone(), 0);
        keys.push(m0.clone());
        markings.push(first);
        edges.push(Vec::new());
        queue.push_back(0usize);

        while let Some(cur) = queue.pop_front() {
            let succs = successors
                .get(&keys[cur])
                .expect("every discovered state was expanded");
            for (t, next) in succs {
                let next_id = match ids.get(next) {
                    Some(&id) => id,
                    None => {
                        let id = markings.len();
                        let m = to_marking(next);
                        max_tokens_seen =
                            max_tokens_seen.max(m.0.iter().copied().max().unwrap_or(0));
                        ids.insert(next.clone(), id);
                        keys.push(next.clone());
                        markings.push(m);
                        edges.push(Vec::new());
                        queue.push_back(id);
                        id
                    }
                };
                edges[cur].push((*t, next_id));
            }
        }

        let deadlocks = markings.iter().filter(|m| net.is_deadlocked(m)).count();
        let edge_count = edges.iter().map(Vec::len).sum();
        let stats = ReachStats {
            states: markings.len(),
            edges: edge_count,
            deadlocks,
            max_tokens_seen,
            truncated: None,
        };
        if jcc_obs::enabled() {
            Self::flush_representation(&stats, packed);
            Self::flush_stats(&stats);
        }
        let index = markings
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, m)| (m, i))
            .collect();
        ReachGraph {
            markings,
            index,
            edges,
            stats,
        }
    }

    /// Summary statistics.
    pub fn stats(&self) -> &ReachStats {
        &self.stats
    }

    /// All discovered markings. Index 0 is the initial marking.
    pub fn markings(&self) -> &[Marking] {
        &self.markings
    }

    /// Outgoing edges of state `i` as (transition, successor-state) pairs.
    pub fn successors(&self, i: usize) -> &[(TransId, usize)] {
        &self.edges[i]
    }

    /// Look up a marking's state index.
    pub fn state_of(&self, m: &Marking) -> Option<usize> {
        self.index.get(m).copied()
    }

    /// Indices of dead markings (no outgoing edges *and* no enabled
    /// transition in the unfiltered net would be stricter; here we report
    /// states with no explored successor).
    pub fn dead_states(&self) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// A shortest firing sequence from the initial marking to state
    /// `target`, as a list of transitions. `None` if unreachable (cannot
    /// happen for indices returned by this graph) .
    pub fn path_to(&self, target: usize) -> Option<Vec<TransId>> {
        if target == 0 {
            return Some(Vec::new());
        }
        let mut pred: Vec<Option<(usize, TransId)>> = vec![None; self.markings.len()];
        let mut queue = VecDeque::new();
        queue.push_back(0usize);
        let mut seen = vec![false; self.markings.len()];
        seen[0] = true;
        while let Some(cur) = queue.pop_front() {
            for &(t, next) in &self.edges[cur] {
                if !seen[next] {
                    seen[next] = true;
                    pred[next] = Some((cur, t));
                    if next == target {
                        let mut path = Vec::new();
                        let mut at = target;
                        while let Some((p, tr)) = pred[at] {
                            path.push(tr);
                            at = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// True if every discovered marking keeps each place's token count
    /// within `bound` (k-boundedness over the explored portion).
    pub fn is_k_bounded(&self, bound: u32) -> bool {
        self.stats.truncated.is_none() && self.stats.max_tokens_seen <= bound
    }

    /// Per-transition firing counts over the explored graph: how many
    /// discovered edges fire each transition, indexed by [`TransId`].
    /// The evidence behind Table-1 claims about which transitions a
    /// composition can actually exercise.
    pub fn firing_counts(&self, net: &Net) -> Vec<(TransId, usize)> {
        let mut counts: Vec<usize> = vec![0; net.num_transitions()];
        for edges in &self.edges {
            for &(t, _) in edges {
                counts[t.index()] += 1;
            }
        }
        net.transitions()
            .map(|t| (t, counts[t.index()]))
            .collect()
    }

    /// [`ReachGraph::firing_counts`] aggregated by the transition's *kind*
    /// — the name up to the first `#` or `.` (the per-thread copies of a
    /// Figure-1 transition share a kind, e.g. `T3#0`/`T3#1` → `T3`).
    /// Counts are also published to the global obs registry as
    /// `petri.firing.<kind>` when recording is enabled.
    pub fn firing_counts_by_kind(&self, net: &Net) -> Vec<(String, usize)> {
        let mut by_kind: Vec<(String, usize)> = Vec::new();
        for (t, n) in self.firing_counts(net) {
            let name = net.transition_name(t);
            let kind = name
                .split(['#', '.'])
                .next()
                .unwrap_or(name)
                .to_string();
            match by_kind.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, total)) => *total += n,
                None => by_kind.push((kind, n)),
            }
        }
        if jcc_obs::enabled() {
            let reg = jcc_obs::global();
            for (kind, n) in &by_kind {
                reg.counter(&format!("petri.firing.{kind}")).add(*n as u64);
            }
        }
        by_kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::java_model::JavaNet;
    use crate::net::NetBuilder;
    use proptest::prelude::*;

    #[test]
    fn single_thread_java_net_has_five_states() {
        // One thread: A+E, B+E, C, D+E, B+E(after T5 — same as request) …
        // distinct markings: {A,E}, {B,E}, {C}, {D,E}. T5 leads back to {B,E}.
        let j = JavaNet::new(1);
        let g = ReachGraph::explore(j.net(), ReachLimits::default());
        assert_eq!(g.stats().states, 4);
        assert_eq!(g.stats().deadlocks, 0);
        assert!(g.stats().truncated.is_none());
        assert!(g.is_k_bounded(1));
    }

    #[test]
    fn two_thread_java_net_is_safe_and_live() {
        let j = JavaNet::new(2);
        let g = ReachGraph::explore(j.net(), ReachLimits::default());
        // Net is 1-bounded and deadlock-free without the side condition
        // (T5 always structurally enabled from D).
        assert!(g.is_k_bounded(1));
        assert_eq!(g.stats().deadlocks, 0);
        // Mutual exclusion: no marking has both C places marked.
        for m in g.markings() {
            let c0 = m.tokens(j.place(0, crate::java_model::ThreadPlace::Critical));
            let c1 = m.tokens(j.place(1, crate::java_model::ThreadPlace::Critical));
            assert!(c0 + c1 <= 1, "mutual exclusion violated in {m:?}");
        }
    }

    #[test]
    fn side_condition_exposes_wait_forever_deadlock() {
        // With the dashed-arc side condition a single thread that waits can
        // never be woken: the filtered graph has a dead state.
        let j = JavaNet::new(1);
        let g = ReachGraph::explore_filtered(
            j.net(),
            ReachLimits::default(),
            j.notify_side_condition(),
        );
        let dead = g.dead_states();
        assert_eq!(dead.len(), 1);
        let dead_marking = &g.markings()[dead[0]];
        assert!(j.all_threads_stuck(dead_marking));
        // And there is a firing path to it (T1, T2, T3).
        let path = g.path_to(dead[0]).unwrap();
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn two_threads_with_side_condition_can_both_wait() {
        let j = JavaNet::new(2);
        let g = ReachGraph::explore_filtered(
            j.net(),
            ReachLimits::default(),
            j.notify_side_condition(),
        );
        // The all-waiting marking is reachable (both threads wait in turn)
        // and dead under the side condition — the classic lost-wakeup
        // deadlock shape.
        let stuck: Vec<_> = g
            .dead_states()
            .into_iter()
            .filter(|&s| j.all_threads_stuck(&g.markings()[s]))
            .collect();
        assert_eq!(stuck.len(), 1);
    }

    #[test]
    fn unbounded_net_truncates_on_token_bound() {
        let mut b = NetBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        // p -> p + q: q grows without bound.
        b.transition("grow", &[p], &[p, q]);
        let net = b.build().unwrap();
        let g = ReachGraph::explore(
            &net,
            ReachLimits {
                max_states: 1000,
                max_tokens_per_place: 16,
                ..ReachLimits::default()
            },
        );
        assert!(matches!(
            g.stats().truncated,
            Some(Truncation::TokenBound { .. })
        ));
        assert!(!g.is_k_bounded(16));
    }

    #[test]
    fn state_limit_truncates() {
        let j = JavaNet::new(3);
        let g = ReachGraph::explore(
            j.net(),
            ReachLimits {
                max_states: 5,
                max_tokens_per_place: 64,
                ..ReachLimits::default()
            },
        );
        assert_eq!(g.stats().truncated, Some(Truncation::StateLimit));
        assert!(g.stats().states <= 5);
    }

    #[test]
    fn path_to_initial_is_empty() {
        let j = JavaNet::new(1);
        let g = ReachGraph::explore(j.net(), ReachLimits::default());
        assert_eq!(g.path_to(0), Some(vec![]));
    }

    #[test]
    fn state_lookup_roundtrip() {
        let j = JavaNet::new(1);
        let g = ReachGraph::explore(j.net(), ReachLimits::default());
        for (i, m) in g.markings().iter().enumerate() {
            assert_eq!(g.state_of(m), Some(i));
        }
    }

    /// Full structural equality between two explorations (markings, edge
    /// lists and stats — the graph's entire observable state).
    fn assert_graphs_identical(a: &ReachGraph, b: &ReachGraph) {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.markings(), b.markings());
        for i in 0..a.markings().len() {
            assert_eq!(a.successors(i), b.successors(i), "state {i}");
        }
    }

    #[test]
    fn parallel_graph_is_identical_to_sequential() {
        for threads in [2usize, 3, 8] {
            for n in 1..=4 {
                let j = JavaNet::new(n);
                let seq = ReachGraph::explore(
                    j.net(),
                    ReachLimits {
                        parallelism: Parallelism::sequential(),
                        ..ReachLimits::default()
                    },
                );
                let par = ReachGraph::explore(
                    j.net(),
                    ReachLimits {
                        parallelism: Parallelism::with_threads(threads),
                        ..ReachLimits::default()
                    },
                );
                assert_graphs_identical(&seq, &par);
            }
        }
    }

    #[test]
    fn parallel_filtered_graph_is_identical_to_sequential() {
        for n in 1..=3 {
            let j = JavaNet::new(n);
            let seq = ReachGraph::explore_filtered(
                j.net(),
                ReachLimits {
                    parallelism: Parallelism::sequential(),
                    ..ReachLimits::default()
                },
                j.notify_side_condition(),
            );
            let par = ReachGraph::explore_filtered(
                j.net(),
                ReachLimits {
                    parallelism: Parallelism::with_threads(4),
                    ..ReachLimits::default()
                },
                j.notify_side_condition(),
            );
            assert_graphs_identical(&seq, &par);
        }
    }

    #[test]
    fn parallel_truncation_falls_back_to_sequential_prefix() {
        // Token-bound truncation: the parallel engine must report the exact
        // sequential prefix (it re-runs sequentially on abort).
        let mut b = NetBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        b.transition("grow", &[p], &[p, q]);
        let net = b.build().unwrap();
        let limits = |threads| ReachLimits {
            max_states: 1000,
            max_tokens_per_place: 16,
            parallelism: Parallelism::with_threads(threads),
            ..ReachLimits::default()
        };
        let seq = ReachGraph::explore(&net, limits(1));
        let par = ReachGraph::explore(&net, limits(4));
        assert_graphs_identical(&seq, &par);
        assert!(matches!(
            par.stats().truncated,
            Some(Truncation::TokenBound { .. })
        ));

        // State-limit truncation likewise.
        let j = JavaNet::new(3);
        let limits = |threads| ReachLimits {
            max_states: 5,
            max_tokens_per_place: 64,
            parallelism: Parallelism::with_threads(threads),
            ..ReachLimits::default()
        };
        let seq = ReachGraph::explore(j.net(), limits(1));
        let par = ReachGraph::explore(j.net(), limits(2));
        assert_graphs_identical(&seq, &par);
        assert_eq!(par.stats().truncated, Some(Truncation::StateLimit));
    }

    #[test]
    fn boxed_reference_matches_interned_engines_on_java_nets() {
        // n=1 → 5 places (packed engine); n=2 → 9 places (wide engine).
        for n in 1..=2 {
            let j = JavaNet::new(n);
            let interned = ReachGraph::explore(j.net(), ReachLimits::default());
            let boxed =
                ReachGraph::explore_boxed(j.net(), ReachLimits::default(), |_, _| true);
            assert_graphs_identical(&interned, &boxed);
            let interned = ReachGraph::explore_filtered(
                j.net(),
                ReachLimits::default(),
                j.notify_side_condition(),
            );
            let boxed = ReachGraph::explore_boxed(
                j.net(),
                ReachLimits::default(),
                j.notify_side_condition(),
            );
            assert_graphs_identical(&interned, &boxed);
        }
    }

    #[test]
    fn overloaded_initial_marking_truncates_identically() {
        // m0 already violates the token bound: the packed engine must
        // refuse the net (it only checks produced places) and the wide
        // engine must reproduce the boxed whole-marking scan exactly.
        let mut b = NetBuilder::new();
        let p = b.place("p", 30);
        let q = b.place("q", 0);
        b.transition("t", &[p], &[q]);
        let net = b.build().unwrap();
        let limits = ReachLimits {
            max_tokens_per_place: 10,
            ..ReachLimits::default()
        };
        let interned = ReachGraph::explore(&net, limits);
        let boxed = ReachGraph::explore_boxed(&net, limits, |_, _| true);
        assert_graphs_identical(&interned, &boxed);
        assert_eq!(
            interned.stats().truncated,
            Some(Truncation::TokenBound { place_index: 0 })
        );
    }

    /// A small random net plus exploration limits, spanning both the packed
    /// (≤8 places) and wide regimes, with bounds tight enough to exercise
    /// truncation on some inputs.
    fn arb_net_and_limits() -> impl Strategy<Value = (crate::net::Net, ReachLimits)> {
        (1usize..=10).prop_flat_map(|places| {
            let arcs = proptest::collection::vec((0..places, 1u32..=2), 0..=3);
            (
                proptest::collection::vec(0u32..=2, places),
                proptest::collection::vec((arcs.clone(), arcs), 1..=6),
                prop_oneof![Just(6u32), Just(64)],
                prop_oneof![Just(40usize), Just(100_000)],
            )
                .prop_map(move |(init, trans, bound, max_states)| {
                    let mut b = NetBuilder::new();
                    let pids: Vec<_> = init
                        .iter()
                        .enumerate()
                        .map(|(i, &k)| b.place(format!("p{i}"), k))
                        .collect();
                    for (i, (ins, outs)) in trans.iter().enumerate() {
                        let ins: Vec<_> = ins.iter().map(|&(p, w)| (pids[p], w)).collect();
                        let outs: Vec<_> = outs.iter().map(|&(p, w)| (pids[p], w)).collect();
                        b.weighted_transition(format!("t{i}"), &ins, &outs);
                    }
                    let limits = ReachLimits {
                        max_states,
                        max_tokens_per_place: bound,
                        parallelism: Parallelism::sequential(),
                        ..ReachLimits::default()
                    };
                    (b.build().unwrap(), limits)
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Satellite property: the interned engines (packed and wide) are
        /// observationally identical to the pre-optimization boxed engine —
        /// same markings, edges, stats, and truncation reports.
        #[test]
        fn interned_engines_match_boxed_reference(
            (net, limits) in arb_net_and_limits(),
        ) {
            let interned = ReachGraph::explore(&net, limits);
            let boxed = ReachGraph::explore_boxed(&net, limits, |_, _| true);
            prop_assert_eq!(interned.stats(), boxed.stats());
            prop_assert_eq!(interned.markings(), boxed.markings());
            for i in 0..interned.markings().len() {
                prop_assert_eq!(interned.successors(i), boxed.successors(i));
            }
        }

        /// And the parallel engine agrees with both on random nets (falling
        /// back to sequential replay whenever the exploration truncates).
        #[test]
        fn parallel_matches_boxed_reference(
            (net, limits) in arb_net_and_limits(),
        ) {
            let par = ReachGraph::explore(
                &net,
                ReachLimits {
                    parallelism: Parallelism::with_threads(3),
                    ..limits
                },
            );
            let boxed = ReachGraph::explore_boxed(&net, limits, |_, _| true);
            prop_assert_eq!(par.stats(), boxed.stats());
            prop_assert_eq!(par.markings(), boxed.markings());
            for i in 0..par.markings().len() {
                prop_assert_eq!(par.successors(i), boxed.successors(i));
            }
        }

        /// Ample-set reduction preserves the set of reachable dead
        /// markings *exactly* on random nets (both packed and wide
        /// regimes), for every non-truncating exploration.
        #[test]
        fn ample_reduction_preserves_dead_markings(
            (net, limits) in arb_net_and_limits(),
        ) {
            let full = ReachGraph::explore_boxed(&net, limits, |_, _| true);
            let reduced = ReachGraph::explore(
                &net,
                ReachLimits {
                    reduction: Reduction { ample: true, symmetry: None },
                    ..limits
                },
            );
            // Reduction changes which states get visited, so truncation
            // points differ; the dead-set guarantee is for complete runs.
            if full.stats().truncated.is_none() && reduced.stats().truncated.is_none() {
                prop_assert!(reduced.stats().states <= full.stats().states);
                prop_assert_eq!(
                    dead_marking_set(&reduced, &net, None),
                    dead_marking_set(&full, &net, None)
                );
                prop_assert_eq!(reduced.stats().deadlocks, full.stats().deadlocks);
            }
        }
    }

    /// The deadlocked markings of a graph as a sorted, deduplicated set,
    /// optionally canonicalized under a symmetry spec (so full-graph dead
    /// states can be compared orbit-wise against a quotient graph).
    fn dead_marking_set(
        g: &ReachGraph,
        net: &Net,
        spec: Option<crate::reduce::SymmetrySpec>,
    ) -> Vec<Marking> {
        let mut dead: Vec<Marking> = g
            .markings()
            .iter()
            .filter(|m| net.is_deadlocked(m))
            .map(|m| match spec {
                Some(s) => s.canonicalize_marking(m),
                None => m.clone(),
            })
            .collect();
        dead.sort();
        dead.dedup();
        dead
    }

    #[test]
    fn symmetry_quotient_explores_exactly_the_canonical_orbits() {
        // With symmetry only (no ample), the quotient graph's state set
        // must equal the canonicalized image of the full state set.
        for n in 2..=4 {
            let j = JavaNet::new(n);
            let spec = j.thread_symmetry();
            let full = ReachGraph::explore(
                j.net(),
                ReachLimits {
                    parallelism: Parallelism::sequential(),
                    ..ReachLimits::default()
                },
            );
            let quotient = ReachGraph::explore(
                j.net(),
                ReachLimits {
                    parallelism: Parallelism::sequential(),
                    reduction: Reduction {
                        ample: false,
                        symmetry: Some(spec),
                    },
                    ..ReachLimits::default()
                },
            );
            let mut orbit_reps: Vec<Marking> = full
                .markings()
                .iter()
                .map(|m| spec.canonicalize_marking(m))
                .collect();
            orbit_reps.sort();
            orbit_reps.dedup();
            let mut quotient_states: Vec<Marking> = quotient.markings().to_vec();
            quotient_states.sort();
            assert_eq!(quotient_states, orbit_reps, "n={n}");
            assert!(quotient.stats().states < full.stats().states, "n={n}");
            assert_eq!(
                dead_marking_set(&quotient, j.net(), None),
                dead_marking_set(&full, j.net(), Some(spec)),
                "n={n}"
            );
        }
    }

    #[test]
    fn packed_engine_symmetry_quotient_matches_full_orbits() {
        // A 5-place net (packed regime): shared token s, two symmetric
        // lanes [a_i, b_i] with t_i: a_i+s -> b_i and u_i: b_i -> a_i+s.
        let mut b = NetBuilder::new();
        let s = b.place("s", 1);
        let a0 = b.place("a0", 1);
        let b0 = b.place("b0", 0);
        let a1 = b.place("a1", 1);
        let b1 = b.place("b1", 0);
        b.transition("t0", &[a0, s], &[b0]);
        b.transition("u0", &[b0], &[a0, s]);
        b.transition("t1", &[a1, s], &[b1]);
        b.transition("u1", &[b1], &[a1, s]);
        let net = b.build().unwrap();
        let spec = crate::reduce::SymmetrySpec {
            first_place: 1,
            lanes: 2,
            lane_width: 2,
        };
        assert!(spec.is_automorphism(&net));
        let full = ReachGraph::explore(&net, ReachLimits::default());
        let quotient = ReachGraph::explore(
            &net,
            ReachLimits {
                parallelism: Parallelism::sequential(),
                reduction: Reduction {
                    ample: false,
                    symmetry: Some(spec),
                },
                ..ReachLimits::default()
            },
        );
        let mut orbit_reps: Vec<Marking> = full
            .markings()
            .iter()
            .map(|m| spec.canonicalize_marking(m))
            .collect();
        orbit_reps.sort();
        orbit_reps.dedup();
        let mut quotient_states: Vec<Marking> = quotient.markings().to_vec();
        quotient_states.sort();
        assert_eq!(quotient_states, orbit_reps);
        assert!(quotient.stats().states < full.stats().states);
        // And the packed parallel engine agrees byte-for-byte.
        let par = ReachGraph::explore(
            &net,
            ReachLimits {
                parallelism: Parallelism::with_threads(4),
                reduction: Reduction {
                    ample: false,
                    symmetry: Some(spec),
                },
                ..ReachLimits::default()
            },
        );
        assert_graphs_identical(&quotient, &par);
    }

    #[test]
    fn full_reduction_is_byte_deterministic_across_thread_counts() {
        // The reduced graph itself obeys the canonical-renumbering
        // guarantee: parallelism 1/2/4 produce identical graphs, and the
        // deadlock verdict matches the exhaustive reference orbit-wise.
        for n in [2usize, 4, 6] {
            let j = JavaNet::new(n);
            let spec = j.thread_symmetry();
            let reduction = Reduction::full(Some(spec));
            let graphs: Vec<ReachGraph> = [1usize, 2, 4]
                .iter()
                .map(|&threads| {
                    ReachGraph::explore(
                        j.net(),
                        ReachLimits {
                            parallelism: Parallelism::with_threads(threads),
                            reduction,
                            ..ReachLimits::default()
                        },
                    )
                })
                .collect();
            assert_graphs_identical(&graphs[0], &graphs[1]);
            assert_graphs_identical(&graphs[0], &graphs[2]);
            let full =
                ReachGraph::explore_boxed(j.net(), ReachLimits::default(), |_, _| true);
            assert_eq!(
                dead_marking_set(&graphs[0], j.net(), Some(spec)),
                dead_marking_set(&full, j.net(), Some(spec)),
                "n={n}"
            );
            assert!(graphs[0].stats().states < full.stats().states, "n={n}");
        }
    }

    #[test]
    fn filtered_exploration_forces_reduction_off() {
        // Side-condition filters and reduction cannot soundly mix; asking
        // for both must yield the exhaustive filtered graph.
        let j = JavaNet::new(2);
        let with_reduction = ReachGraph::explore_filtered(
            j.net(),
            ReachLimits {
                reduction: Reduction::full(Some(j.thread_symmetry())),
                ..ReachLimits::default()
            },
            j.notify_side_condition(),
        );
        let without = ReachGraph::explore_filtered(
            j.net(),
            ReachLimits::default(),
            j.notify_side_condition(),
        );
        assert_graphs_identical(&with_reduction, &without);
    }

    #[test]
    fn invalid_symmetry_spec_is_ignored_not_trusted() {
        // A spec that is not an automorphism (lanes of different structure)
        // must leave the exploration exhaustive rather than merge
        // non-equivalent states.
        let mut b = NetBuilder::new();
        let p0 = b.place("p0", 1);
        let p1 = b.place("p1", 0);
        let q = b.place("q", 0);
        b.transition("t", &[p0], &[p1]);
        b.transition("u", &[p1], &[q]);
        let net = b.build().unwrap();
        let bogus = crate::reduce::SymmetrySpec {
            first_place: 0,
            lanes: 3,
            lane_width: 1,
        };
        let reduced = ReachGraph::explore(
            &net,
            ReachLimits {
                reduction: Reduction {
                    ample: false,
                    symmetry: Some(bogus),
                },
                ..ReachLimits::default()
            },
        );
        let full = ReachGraph::explore(&net, ReachLimits::default());
        assert_graphs_identical(&reduced, &full);
    }

    #[test]
    fn batch_policies_produce_identical_parallel_graphs() {
        let j = JavaNet::new(4);
        let base = ReachGraph::explore(
            j.net(),
            ReachLimits {
                parallelism: Parallelism::sequential(),
                ..ReachLimits::default()
            },
        );
        for batch in [
            crate::parallel::BatchPolicy::Adaptive,
            crate::parallel::BatchPolicy::FIXED_LEGACY,
            crate::parallel::BatchPolicy::Fixed { own: 1, steal: 1 },
        ] {
            let par = ReachGraph::explore(
                j.net(),
                ReachLimits {
                    parallelism: Parallelism::with_threads(4),
                    batch,
                    ..ReachLimits::default()
                },
            );
            assert_graphs_identical(&base, &par);
        }
    }
}
