//! Reachability analysis: exhaustive state-space exploration with
//! configurable limits, deadlock detection and boundedness statistics.

use std::collections::{HashMap, VecDeque};

use crate::net::{Marking, Net, TransId};

/// Limits on state-space exploration.
#[derive(Debug, Clone, Copy)]
pub struct ReachLimits {
    /// Maximum number of distinct markings to discover.
    pub max_states: usize,
    /// Maximum token count allowed on any single place; exceeding it aborts
    /// exploration and flags the net as (probably) unbounded.
    pub max_tokens_per_place: u32,
}

impl Default for ReachLimits {
    fn default() -> Self {
        ReachLimits {
            max_states: 1_000_000,
            max_tokens_per_place: 64,
        }
    }
}

/// Why exploration stopped before exhausting the state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truncation {
    /// The state limit was reached.
    StateLimit,
    /// A place exceeded the per-place token bound.
    TokenBound {
        /// Index of the offending place.
        place_index: usize,
    },
}

/// Summary statistics of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachStats {
    /// Distinct markings discovered.
    pub states: usize,
    /// Directed edges (marking, transition, marking') discovered.
    pub edges: usize,
    /// Number of dead markings (no transition enabled).
    pub deadlocks: usize,
    /// Largest token count seen on any place.
    pub max_tokens_seen: u32,
    /// Whether and why exploration was truncated.
    pub truncated: Option<Truncation>,
}

/// An explicit reachability graph: the set of reachable markings and the
/// labelled edges between them.
#[derive(Debug, Clone)]
pub struct ReachGraph {
    markings: Vec<Marking>,
    index: HashMap<Marking, usize>,
    /// edges[state] = (transition fired, successor state)
    edges: Vec<Vec<(TransId, usize)>>,
    stats: ReachStats,
}

impl ReachGraph {
    /// Explore the full state space of `net` from its initial marking.
    pub fn explore(net: &Net, limits: ReachLimits) -> ReachGraph {
        Self::explore_filtered(net, limits, |_, _| true)
    }

    /// Explore, but only follow firings for which `filter` returns true.
    /// Used to impose side conditions the plain net cannot express (e.g. the
    /// dashed notification arc of Figure 1).
    pub fn explore_filtered(
        net: &Net,
        limits: ReachLimits,
        filter: impl Fn(&Marking, TransId) -> bool,
    ) -> ReachGraph {
        let mut markings: Vec<Marking> = Vec::new();
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut edges: Vec<Vec<(TransId, usize)>> = Vec::new();
        let mut queue = VecDeque::new();
        let mut truncated = None;
        let mut max_tokens_seen = 0;

        let m0 = net.initial_marking();
        max_tokens_seen = max_tokens_seen.max(m0.0.iter().copied().max().unwrap_or(0));
        index.insert(m0.clone(), 0);
        markings.push(m0);
        edges.push(Vec::new());
        queue.push_back(0usize);

        'outer: while let Some(cur) = queue.pop_front() {
            let marking = markings[cur].clone();
            for t in net.transitions() {
                if !net.enabled(&marking, t) || !filter(&marking, t) {
                    continue;
                }
                let next = net.fire(&marking, t).expect("enabled");
                let peak = next.0.iter().copied().max().unwrap_or(0);
                if peak > limits.max_tokens_per_place {
                    let place_index = next
                        .0
                        .iter()
                        .position(|&x| x > limits.max_tokens_per_place)
                        .unwrap_or(0);
                    truncated = Some(Truncation::TokenBound { place_index });
                    break 'outer;
                }
                max_tokens_seen = max_tokens_seen.max(peak);
                let next_id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        if markings.len() >= limits.max_states {
                            truncated = Some(Truncation::StateLimit);
                            break 'outer;
                        }
                        let id = markings.len();
                        index.insert(next.clone(), id);
                        markings.push(next);
                        edges.push(Vec::new());
                        queue.push_back(id);
                        id
                    }
                };
                edges[cur].push((t, next_id));
            }
        }

        let deadlocks = markings
            .iter()
            .filter(|m| net.is_deadlocked(m))
            .count();
        let edge_count = edges.iter().map(Vec::len).sum();
        let stats = ReachStats {
            states: markings.len(),
            edges: edge_count,
            deadlocks,
            max_tokens_seen,
            truncated,
        };
        ReachGraph {
            markings,
            index,
            edges,
            stats,
        }
    }

    /// Summary statistics.
    pub fn stats(&self) -> &ReachStats {
        &self.stats
    }

    /// All discovered markings. Index 0 is the initial marking.
    pub fn markings(&self) -> &[Marking] {
        &self.markings
    }

    /// Outgoing edges of state `i` as (transition, successor-state) pairs.
    pub fn successors(&self, i: usize) -> &[(TransId, usize)] {
        &self.edges[i]
    }

    /// Look up a marking's state index.
    pub fn state_of(&self, m: &Marking) -> Option<usize> {
        self.index.get(m).copied()
    }

    /// Indices of dead markings (no outgoing edges *and* no enabled
    /// transition in the unfiltered net would be stricter; here we report
    /// states with no explored successor).
    pub fn dead_states(&self) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// A shortest firing sequence from the initial marking to state
    /// `target`, as a list of transitions. `None` if unreachable (cannot
    /// happen for indices returned by this graph) .
    pub fn path_to(&self, target: usize) -> Option<Vec<TransId>> {
        if target == 0 {
            return Some(Vec::new());
        }
        let mut pred: Vec<Option<(usize, TransId)>> = vec![None; self.markings.len()];
        let mut queue = VecDeque::new();
        queue.push_back(0usize);
        let mut seen = vec![false; self.markings.len()];
        seen[0] = true;
        while let Some(cur) = queue.pop_front() {
            for &(t, next) in &self.edges[cur] {
                if !seen[next] {
                    seen[next] = true;
                    pred[next] = Some((cur, t));
                    if next == target {
                        let mut path = Vec::new();
                        let mut at = target;
                        while let Some((p, tr)) = pred[at] {
                            path.push(tr);
                            at = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// True if every discovered marking keeps each place's token count
    /// within `bound` (k-boundedness over the explored portion).
    pub fn is_k_bounded(&self, bound: u32) -> bool {
        self.stats.truncated.is_none() && self.stats.max_tokens_seen <= bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::java_model::JavaNet;
    use crate::net::NetBuilder;

    #[test]
    fn single_thread_java_net_has_five_states() {
        // One thread: A+E, B+E, C, D+E, B+E(after T5 — same as request) …
        // distinct markings: {A,E}, {B,E}, {C}, {D,E}. T5 leads back to {B,E}.
        let j = JavaNet::new(1);
        let g = ReachGraph::explore(j.net(), ReachLimits::default());
        assert_eq!(g.stats().states, 4);
        assert_eq!(g.stats().deadlocks, 0);
        assert!(g.stats().truncated.is_none());
        assert!(g.is_k_bounded(1));
    }

    #[test]
    fn two_thread_java_net_is_safe_and_live() {
        let j = JavaNet::new(2);
        let g = ReachGraph::explore(j.net(), ReachLimits::default());
        // Net is 1-bounded and deadlock-free without the side condition
        // (T5 always structurally enabled from D).
        assert!(g.is_k_bounded(1));
        assert_eq!(g.stats().deadlocks, 0);
        // Mutual exclusion: no marking has both C places marked.
        for m in g.markings() {
            let c0 = m.tokens(j.place(0, crate::java_model::ThreadPlace::Critical));
            let c1 = m.tokens(j.place(1, crate::java_model::ThreadPlace::Critical));
            assert!(c0 + c1 <= 1, "mutual exclusion violated in {m:?}");
        }
    }

    #[test]
    fn side_condition_exposes_wait_forever_deadlock() {
        // With the dashed-arc side condition a single thread that waits can
        // never be woken: the filtered graph has a dead state.
        let j = JavaNet::new(1);
        let g = ReachGraph::explore_filtered(
            j.net(),
            ReachLimits::default(),
            j.notify_side_condition(),
        );
        let dead = g.dead_states();
        assert_eq!(dead.len(), 1);
        let dead_marking = &g.markings()[dead[0]];
        assert!(j.all_threads_stuck(dead_marking));
        // And there is a firing path to it (T1, T2, T3).
        let path = g.path_to(dead[0]).unwrap();
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn two_threads_with_side_condition_can_both_wait() {
        let j = JavaNet::new(2);
        let g = ReachGraph::explore_filtered(
            j.net(),
            ReachLimits::default(),
            j.notify_side_condition(),
        );
        // The all-waiting marking is reachable (both threads wait in turn)
        // and dead under the side condition — the classic lost-wakeup
        // deadlock shape.
        let stuck: Vec<_> = g
            .dead_states()
            .into_iter()
            .filter(|&s| j.all_threads_stuck(&g.markings()[s]))
            .collect();
        assert_eq!(stuck.len(), 1);
    }

    #[test]
    fn unbounded_net_truncates_on_token_bound() {
        let mut b = NetBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        // p -> p + q: q grows without bound.
        b.transition("grow", &[p], &[p, q]);
        let net = b.build().unwrap();
        let g = ReachGraph::explore(
            &net,
            ReachLimits {
                max_states: 1000,
                max_tokens_per_place: 16,
            },
        );
        assert!(matches!(
            g.stats().truncated,
            Some(Truncation::TokenBound { .. })
        ));
        assert!(!g.is_k_bounded(16));
    }

    #[test]
    fn state_limit_truncates() {
        let j = JavaNet::new(3);
        let g = ReachGraph::explore(
            j.net(),
            ReachLimits {
                max_states: 5,
                max_tokens_per_place: 64,
            },
        );
        assert_eq!(g.stats().truncated, Some(Truncation::StateLimit));
        assert!(g.stats().states <= 5);
    }

    #[test]
    fn path_to_initial_is_empty() {
        let j = JavaNet::new(1);
        let g = ReachGraph::explore(j.net(), ReachLimits::default());
        assert_eq!(g.path_to(0), Some(vec![]));
    }

    #[test]
    fn state_lookup_roundtrip() {
        let j = JavaNet::new(1);
        let g = ReachGraph::explore(j.net(), ReachLimits::default());
        for (i, m) in g.markings().iter().enumerate() {
            assert_eq!(g.state_of(m), Some(i));
        }
    }
}
