//! `jcc` — the command-line linter over the Java-subset frontend.
//!
//! ```text
//! jcc check [--deny=high|medium|low] [--format=text|json] <paths...>
//! ```
//!
//! Paths may be `.java` files or directories (searched recursively,
//! sorted). Exit codes: 0 = clean at the deny threshold, 1 = findings at
//! or above the threshold, 2 = parse/lower error (or bad usage).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use jcc_analyze::Severity;
use jcc_javasrc::check::{check_paths, CheckOptions, Format};

const USAGE: &str = "\
usage: jcc check [--deny=high|medium|low] [--format=text|json] <paths...>

Lints Java sources with the jcc static concurrency analyzer.
Paths may be .java files or directories (searched recursively).

exit codes:
  0  every file parsed and no finding reached the --deny threshold
  1  at least one finding at or above the threshold (default: high)
  2  a file failed to parse or lower, or the command line was invalid
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<u8, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some("--help") | Some("-h") => {
            print!("{USAGE}");
            return Ok(0);
        }
        Some(other) => return Err(format!("unknown command `{other}`")),
        None => return Err("missing command".to_string()),
    }

    let mut opts = CheckOptions::default();
    let mut paths = Vec::new();
    for arg in it {
        if let Some(v) = arg.strip_prefix("--deny=") {
            opts.deny = match v {
                "high" => Severity::High,
                "medium" => Severity::Medium,
                "low" => Severity::Low,
                _ => return Err(format!("invalid --deny level `{v}`")),
            };
        } else if let Some(v) = arg.strip_prefix("--format=") {
            opts.format = match v {
                "text" => Format::Text,
                "json" => Format::Json,
                _ => return Err(format!("invalid --format `{v}`")),
            };
        } else if arg == "--help" || arg == "-h" {
            print!("{USAGE}");
            return Ok(0);
        } else if arg.starts_with('-') {
            return Err(format!("unknown option `{arg}`"));
        } else {
            paths.push(PathBuf::from(arg));
        }
    }
    if paths.is_empty() {
        return Err("no input paths".to_string());
    }

    let outcome = check_paths(&paths, &opts).map_err(|e| e.to_string())?;
    print!("{}", outcome.output);
    if opts.format == Format::Text {
        let n_files = outcome.files.len();
        let findings: usize = outcome
            .files
            .iter()
            .flat_map(|f| f.reports.iter())
            .map(|r| r.diagnostics.len())
            .sum();
        println!(
            "checked {n_files} file(s), {} LOC: {findings} finding(s), {} at or above --deny={}, {} frontend error(s)",
            outcome.loc,
            outcome.denied_findings,
            opts.deny.name(),
            outcome.front_errors,
        );
    }
    Ok(outcome.exit_code() as u8)
}
