//! `jcc` — the command-line linter and live profiler.
//!
//! ```text
//! jcc check   [--deny=high|medium|low] [--format=text|json] [--obs-out=DIR] <paths...>
//! jcc profile [--threads=K] [--interval-ms=MS] [--expose=PORT] [--obs-out=DIR] <scenario>
//! ```
//!
//! `check` lints real Java sources; paths may be `.java` files or
//! directories (searched recursively, sorted). Exit codes: 0 = clean at
//! the deny threshold, 1 = findings at or above the threshold, 2 =
//! parse/lower error (or bad usage). With `--obs-out=DIR` the run records
//! at `trace` level and writes a `RunReport` plus a Chrome trace of the
//! span stream into the directory.
//!
//! `profile` runs a named exploration scenario with the full live
//! introspection stack on — hierarchical span tree, sampling profiler,
//! progress heartbeats (a `top`-style one-line refresh on stderr), and
//! optionally the Prometheus metrics endpoint — then prints the flame
//! table and span tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use jcc_analyze::Severity;
use jcc_javasrc::check::{check_paths, CheckOptions, Format};

const USAGE: &str = "\
usage: jcc check [--deny=high|medium|low] [--format=text|json] [--obs-out=DIR] <paths...>
       jcc profile [--threads=K] [--interval-ms=MS] [--expose=PORT] [--obs-out=DIR] <scenario>

check: lint Java sources with the jcc static concurrency analyzer.
Paths may be .java files or directories (searched recursively).
--obs-out=DIR records the run at trace level and writes a RunReport
(check_report.json) and a Chrome trace (check_trace.json) into DIR.

exit codes:
  0  every file parsed and no finding reached the --deny threshold
  1  at least one finding at or above the threshold (default: high)
  2  a file failed to parse or lower, or the command line was invalid

profile: run a scenario with live introspection (span tree, sampling
profiler, progress heartbeats, optional metrics endpoint).

scenarios:
  javanet[:N]            petri reachability of the N-thread Figure-1 net (default N=6)
  producer-consumer[:C]  VM schedule exploration with C consumers (default C=3)

  --threads=K       parallel reachability with K workers (javanet only)
  --interval-ms=MS  heartbeat refresh interval (default 200)
  --expose=PORT     serve Prometheus metrics on 127.0.0.1:PORT during the run
  --obs-out=DIR     write profile_report.json, profile_flame.txt and
                    profile_flame_trace.json into DIR
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<u8, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => cmd_check(it),
        Some("profile") => cmd_profile(it),
        Some("--help") | Some("-h") => {
            print!("{USAGE}");
            Ok(0)
        }
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".to_string()),
    }
}

fn cmd_check<'a, I: Iterator<Item = &'a String>>(it: I) -> Result<u8, String> {
    let mut opts = CheckOptions::default();
    let mut paths = Vec::new();
    let mut obs_out: Option<PathBuf> = None;
    for arg in it {
        if let Some(v) = arg.strip_prefix("--deny=") {
            opts.deny = match v {
                "high" => Severity::High,
                "medium" => Severity::Medium,
                "low" => Severity::Low,
                _ => return Err(format!("invalid --deny level `{v}`")),
            };
        } else if let Some(v) = arg.strip_prefix("--format=") {
            opts.format = match v {
                "text" => Format::Text,
                "json" => Format::Json,
                _ => return Err(format!("invalid --format `{v}`")),
            };
        } else if let Some(v) = arg.strip_prefix("--obs-out=") {
            obs_out = Some(PathBuf::from(v));
        } else if arg == "--help" || arg == "-h" {
            print!("{USAGE}");
            return Ok(0);
        } else if arg.starts_with('-') {
            return Err(format!("unknown option `{arg}`"));
        } else {
            paths.push(PathBuf::from(arg));
        }
    }
    if paths.is_empty() {
        return Err("no input paths".to_string());
    }

    use jcc_core::obs;
    if let Some(dir) = &obs_out {
        std::fs::create_dir_all(dir).map_err(|e| format!("--obs-out: {e}"))?;
        obs::set_level(obs::ObsLevel::Trace);
        obs::global().reset();
        obs::drain_trace();
    }
    let t0 = Instant::now();
    let outcome = {
        let _span = obs::span!("jcc.check");
        check_paths(&paths, &opts).map_err(|e| e.to_string())?
    };
    print!("{}", outcome.output);
    let findings: usize = outcome
        .files
        .iter()
        .flat_map(|f| f.reports.iter())
        .map(|r| r.diagnostics.len())
        .sum();
    if opts.format == Format::Text {
        println!(
            "checked {} file(s), {} LOC: {findings} finding(s), {} at or above --deny={}, {} frontend error(s)",
            outcome.files.len(),
            outcome.loc,
            outcome.denied_findings,
            opts.deny.name(),
            outcome.front_errors,
        );
    }
    if let Some(dir) = obs_out {
        let wall = t0.elapsed().as_secs_f64();
        let reg = obs::global();
        reg.counter("check.files").add(outcome.files.len() as u64);
        reg.counter("check.loc").add(outcome.loc as u64);
        reg.counter("check.findings").add(findings as u64);
        reg.counter("check.front_errors")
            .add(outcome.front_errors as u64);
        let (records, _dropped) = obs::drain_trace();
        let report = obs::RunReport::from_registry("jcc_check", obs::ObsLevel::Trace, wall, reg);
        let report_path = dir.join("check_report.json");
        report
            .write_to(&report_path)
            .map_err(|e| format!("--obs-out: {e}"))?;
        let trace_path = dir.join("check_trace.json");
        std::fs::write(&trace_path, obs::trace::to_chrome_string(&records))
            .map_err(|e| format!("--obs-out: {e}"))?;
        obs::set_level(obs::ObsLevel::Off);
        eprintln!(
            "obs: report written to {}, chrome trace to {}",
            report_path.display(),
            trace_path.display()
        );
    }
    Ok(outcome.exit_code() as u8)
}

/// What `jcc profile` ran and found, for the closing summary.
struct ScenarioOutcome {
    what: String,
    states: u64,
}

fn run_scenario(scenario: &str, threads: usize) -> Result<ScenarioOutcome, String> {
    use jcc_core::petri::{JavaNet, Parallelism, ReachGraph, ReachLimits};
    use jcc_core::vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Value, Vm};

    let (name, param) = match scenario.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (scenario, None),
    };
    match name {
        "javanet" => {
            let n: usize = match param {
                Some(p) => p
                    .parse()
                    .map_err(|_| format!("invalid thread count `{p}` in `{scenario}`"))?,
                None => 6,
            };
            let parallelism = if threads > 1 {
                Parallelism::with_threads(threads)
            } else {
                Parallelism::sequential()
            };
            let j = JavaNet::new(n);
            let g = ReachGraph::explore(
                j.net(),
                ReachLimits {
                    parallelism,
                    ..ReachLimits::default()
                },
            );
            Ok(ScenarioOutcome {
                what: format!(
                    "petri reachability, JavaNet({n}): {} states, {} edges, {} dead",
                    g.stats().states,
                    g.stats().edges,
                    g.dead_states().len()
                ),
                states: g.stats().states as u64,
            })
        }
        "producer-consumer" | "pc" => {
            let consumers: usize = match param {
                Some(p) => p
                    .parse()
                    .map_err(|_| format!("invalid consumer count `{p}` in `{scenario}`"))?,
                None => 3,
            };
            let component = jcc_core::model::examples::producer_consumer();
            let compiled = compile(&component).map_err(|e| format!("compile: {e:?}"))?;
            let mut specs = vec![ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new(
                    "send",
                    vec![Value::Str("x".repeat(consumers))],
                )],
            }];
            for i in 0..consumers {
                specs.push(ThreadSpec {
                    name: format!("c{i}"),
                    calls: vec![CallSpec::new("receive", vec![])],
                });
            }
            let vm = Vm::new(compiled, specs);
            let r = explore(vm, &ExploreConfig::default(), None);
            Ok(ScenarioOutcome {
                what: format!(
                    "VM exploration, producer-consumer x{consumers}: {} states, {} transitions, \
                     {} completed, {} deadlocked",
                    r.states, r.transitions, r.completed_paths, r.deadlock_paths
                ),
                states: r.states as u64,
            })
        }
        other => Err(format!(
            "unknown scenario `{other}` (try `javanet:6` or `producer-consumer:3`)"
        )),
    }
}

fn cmd_profile<'a, I: Iterator<Item = &'a String>>(it: I) -> Result<u8, String> {
    let mut threads = 1usize;
    let mut interval_ms = 200u64;
    let mut expose: Option<u16> = None;
    let mut obs_out: Option<PathBuf> = None;
    let mut scenario: Option<String> = None;
    for arg in it {
        if let Some(v) = arg.strip_prefix("--threads=") {
            threads = v
                .parse()
                .map_err(|_| format!("invalid --threads `{v}`"))?;
        } else if let Some(v) = arg.strip_prefix("--interval-ms=") {
            interval_ms = v
                .parse()
                .map_err(|_| format!("invalid --interval-ms `{v}`"))?;
        } else if let Some(v) = arg.strip_prefix("--expose=") {
            expose = Some(v.parse().map_err(|_| format!("invalid --expose port `{v}`"))?);
        } else if let Some(v) = arg.strip_prefix("--obs-out=") {
            obs_out = Some(PathBuf::from(v));
        } else if arg == "--help" || arg == "-h" {
            print!("{USAGE}");
            return Ok(0);
        } else if arg.starts_with('-') {
            return Err(format!("unknown option `{arg}`"));
        } else if scenario.is_none() {
            scenario = Some(arg.clone());
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    let scenario = scenario.ok_or_else(|| "missing scenario".to_string())?;
    if let Some(dir) = &obs_out {
        std::fs::create_dir_all(dir).map_err(|e| format!("--obs-out: {e}"))?;
    }

    use jcc_core::obs;
    // The full live stack: summary metrics, span tree, progress cells,
    // stack-mirroring sampler, heartbeat watcher, optional exposition.
    obs::set_level(obs::ObsLevel::Summary);
    obs::global().reset();
    obs::SpanTree::reset();
    obs::set_span_tree(true);
    obs::set_progress(true);
    let server = match expose {
        Some(port) => {
            let s = obs::ExposeServer::start(port).map_err(|e| format!("--expose: {e}"))?;
            println!("metrics: http://{}/metrics", s.local_addr());
            Some(s)
        }
        None => None,
    };
    let profiler = obs::Profiler::start(Duration::from_millis(5), 0x6a6363);
    let heartbeat = obs::Heartbeat::start(Duration::from_millis(interval_ms.max(10)), |stats| {
        // `top`-style single-line refresh; padded so a shorter line fully
        // overwrites a longer one.
        eprint!("\r{:<100}", stats.render_line());
        let _ = std::io::stderr().flush();
    });

    let t0 = Instant::now();
    let scenario_name = scenario.clone();
    let worker = std::thread::Builder::new()
        .name("jcc-profile-worker".to_string())
        .spawn(move || {
            let _reg = obs::register_thread("worker");
            run_scenario(&scenario_name, threads)
        })
        .map_err(|e| format!("spawn worker: {e}"))?;
    let outcome = worker.join().map_err(|_| "worker panicked".to_string())??;
    let wall = t0.elapsed().as_secs_f64();

    heartbeat.stop();
    eprintln!();
    let profile = profiler.stop();
    obs::set_span_tree(false);
    obs::set_progress(false);
    let tree = obs::SpanTree::snapshot();

    println!("{}", outcome.what);
    println!(
        "wall {wall:.3}s, {:.0} states/s, {} profiler samples",
        outcome.states as f64 / wall.max(1e-9),
        profile.total_samples
    );
    print!("{}", tree.render_ascii());
    print!("{}", profile.render_flame_table());

    if let Some(s) = &server {
        let body = obs::fetch_metrics(s.local_addr()).map_err(|e| format!("--expose: {e}"))?;
        let samples = body
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .count();
        println!("metrics endpoint served {samples} samples at shutdown");
    }
    if let Some(dir) = obs_out {
        let report =
            obs::RunReport::from_registry("jcc_profile", obs::ObsLevel::Summary, wall, obs::global());
        report
            .write_to(&dir.join("profile_report.json"))
            .map_err(|e| format!("--obs-out: {e}"))?;
        std::fs::write(dir.join("profile_flame.txt"), profile.render_flame_table())
            .map_err(|e| format!("--obs-out: {e}"))?;
        std::fs::write(
            dir.join("profile_flame_trace.json"),
            profile.to_chrome_string(),
        )
        .map_err(|e| format!("--obs-out: {e}"))?;
        println!("obs: profile artifacts written to {}", dir.display());
    }
    drop(server);
    obs::set_level(obs::ObsLevel::Off);
    Ok(0)
}
