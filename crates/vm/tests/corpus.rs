//! VM semantics over the whole component corpus: each monitor behaves per
//! its specification under controlled schedules and exhaustive exploration.

use jcc_model::examples;
use jcc_vm::{
    compile, explore, CallSpec, ExploreConfig, RunConfig, Scheduler, ThreadSpec, Value,
    Verdict, Vm,
};

fn spec(name: &str, calls: Vec<CallSpec>) -> ThreadSpec {
    ThreadSpec {
        name: name.to_string(),
        calls,
    }
}

#[test]
fn bounded_buffer_alternates() {
    let c = examples::bounded_buffer();
    let mut vm = Vm::new(
        compile(&c).unwrap(),
        vec![
            spec(
                "producer",
                (0..4).map(|i| CallSpec::new("put", vec![Value::Int(i)])).collect(),
            ),
            spec("consumer", (0..4).map(|_| CallSpec::new("take", vec![])).collect()),
        ],
    );
    let out = vm.run(&RunConfig::default());
    assert_eq!(out.verdict, Verdict::Completed);
    let taken: Vec<Value> = out.results[1]
        .iter()
        .map(|r| r.returned.clone().unwrap())
        .collect();
    assert_eq!(
        taken,
        vec![Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(3)],
        "one-slot buffer forces strict alternation"
    );
}

#[test]
fn bounded_buffer_never_fails_exhaustively() {
    let c = examples::bounded_buffer();
    let vm = Vm::new(
        compile(&c).unwrap(),
        vec![
            spec("p", vec![CallSpec::new("put", vec![Value::Int(1)])]),
            spec("c", vec![CallSpec::new("take", vec![])]),
        ],
    );
    let r = explore(vm, &ExploreConfig::default(), None);
    assert!(!r.found_failure(), "{r:?}");
}

#[test]
fn semaphore_bounds_holders_under_all_schedules() {
    // permits=1: two acquirers, one release each — like a mutex handoff.
    let c = examples::semaphore();
    let vm = Vm::new(
        compile(&c).unwrap(),
        vec![
            spec("init", vec![CallSpec::new("init", vec![Value::Int(1)])]),
            spec(
                "a",
                vec![CallSpec::new("acquire", vec![]), CallSpec::new("release", vec![])],
            ),
            spec(
                "b",
                vec![CallSpec::new("acquire", vec![]), CallSpec::new("release", vec![])],
            ),
        ],
    );
    let r = explore(vm, &ExploreConfig::default(), None);
    assert!(!r.found_failure(), "{r:?}");
    assert!(r.completed_paths > 0);
}

#[test]
fn semaphore_acquire_without_permits_suspends() {
    let c = examples::semaphore();
    let mut vm = Vm::new(
        compile(&c).unwrap(),
        vec![spec("a", vec![CallSpec::new("acquire", vec![])])],
    );
    let out = vm.run(&RunConfig::default());
    assert!(matches!(out.verdict, Verdict::Deadlock { ref waiting, .. } if waiting == &vec![0]));
}

#[test]
fn barrier_releases_full_generation() {
    let c = examples::barrier();
    // parties defaults to 2.
    let mut vm = Vm::new(
        compile(&c).unwrap(),
        vec![
            spec("a", vec![CallSpec::new("await", vec![])]),
            spec("b", vec![CallSpec::new("await", vec![])]),
        ],
    );
    let out = vm.run(&RunConfig::default());
    assert_eq!(out.verdict, Verdict::Completed);
    // Both awaited generation 0.
    assert_eq!(out.results[0][0].returned, Some(Value::Int(0)));
    assert_eq!(out.results[1][0].returned, Some(Value::Int(0)));
}

#[test]
fn barrier_lone_arrival_waits_forever() {
    let c = examples::barrier();
    let mut vm = Vm::new(
        compile(&c).unwrap(),
        vec![spec("a", vec![CallSpec::new("await", vec![])])],
    );
    let out = vm.run(&RunConfig::default());
    assert!(matches!(out.verdict, Verdict::Deadlock { ref waiting, .. } if waiting == &vec![0]));
}

#[test]
fn barrier_is_cyclic_across_generations() {
    let c = examples::barrier();
    let mut vm = Vm::new(
        compile(&c).unwrap(),
        vec![
            spec(
                "a",
                vec![CallSpec::new("await", vec![]), CallSpec::new("await", vec![])],
            ),
            spec(
                "b",
                vec![CallSpec::new("await", vec![]), CallSpec::new("await", vec![])],
            ),
        ],
    );
    let out = vm.run(&RunConfig {
        scheduler: Scheduler::Random(5),
        max_steps: 50_000,
    });
    assert_eq!(out.verdict, Verdict::Completed);
    for results in &out.results {
        assert_eq!(results[0].returned, Some(Value::Int(0)));
        assert_eq!(results[1].returned, Some(Value::Int(1)));
    }
}

#[test]
fn readers_writers_excludes_under_all_schedules() {
    // One full write session and one full read session: every interleaving
    // completes (writer preference cannot strand a balanced workload).
    let c = examples::readers_writers();
    let vm = Vm::new(
        compile(&c).unwrap(),
        vec![
            spec(
                "w",
                vec![
                    CallSpec::new("startWrite", vec![]),
                    CallSpec::new("endWrite", vec![]),
                ],
            ),
            spec(
                "r",
                vec![
                    CallSpec::new("startRead", vec![]),
                    CallSpec::new("endRead", vec![]),
                ],
            ),
        ],
    );
    let r = explore(vm, &ExploreConfig::default(), None);
    assert!(!r.found_failure(), "{r:?}");
    assert!(r.completed_paths > 0);
}

#[test]
fn readers_writers_writer_preference_observable() {
    // Reader holds; writer queues; a second reader must NOT pass the
    // waiting writer. Forced schedule: r1 starts read, w requests write,
    // r2 tries to read — r2 blocks until the writer got its turn.
    let c = examples::readers_writers();
    let mut vm = Vm::new(
        compile(&c).unwrap(),
        vec![
            spec(
                "r1",
                vec![CallSpec::new("startRead", vec![]), CallSpec::new("endRead", vec![])],
            ),
            spec("w", vec![CallSpec::new("startWrite", vec![])]),
            spec("r2", vec![CallSpec::new("startRead", vec![])]),
        ],
    );
    // r1 completes startRead (7 steps); w runs startWrite to its wait
    // (5 steps: begin, enter, writersWaiting+=1, guard, wait); r2 runs
    // startRead to its wait behind the queued writer (4 steps); r1's
    // endRead notifies (8 steps); w wins the wake-up (preference), r2
    // re-waits. w never ends its write, so r2 stays waiting.
    let mut plan = Vec::new();
    plan.extend(std::iter::repeat_n(0, 7));
    plan.extend(std::iter::repeat_n(1, 5));
    plan.extend(std::iter::repeat_n(2, 4));
    plan.extend(std::iter::repeat_n(0, 8));
    plan.extend(std::iter::repeat_n(1, 7));
    plan.extend(std::iter::repeat_n(2, 3));
    let out = vm.run(&RunConfig {
        scheduler: Scheduler::Fixed(plan),
        max_steps: 10_000,
    });
    match &out.verdict {
        Verdict::Deadlock { waiting, .. } => {
            assert!(waiting.contains(&2), "r2 must be the one left waiting: {out:?}")
        }
        other => panic!("expected r2 stranded behind the writer, got {other:?}"),
    }
    // The writer itself completed its startWrite.
    assert!(!out.results[1][0].suspended());
}

#[test]
fn dining_ordered_corpus_smoke() {
    let c = examples::dining_ordered();
    let mut vm = Vm::new(
        compile(&c).unwrap(),
        vec![
            spec("p0", vec![CallSpec::new("eat0", vec![])]),
            spec("p1", vec![CallSpec::new("eat1", vec![])]),
            spec("p2", vec![CallSpec::new("eat2", vec![])]),
        ],
    );
    let out = vm.run(&RunConfig::default());
    assert_eq!(out.verdict, Verdict::Completed);
    assert_eq!(vm.field("meals"), Some(&Value::Int(3)));
}
