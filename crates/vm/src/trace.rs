//! VM trace events and their conversion to CoFG coverage markers.

use jcc_cofg::coverage::{CoverageTracker, Marker, SiteId};
use jcc_model::ast::StmtPath;
use jcc_petri::Transition;

/// What a trace event records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A Figure-1 transition fired on `lock`.
    Transition {
        /// Which transition.
        t: Transition,
        /// Lock index within the compiled component (0 = `this`).
        lock: usize,
    },
    /// The thread issued a notification.
    NotifyIssued {
        /// Lock index.
        lock: usize,
        /// `notifyAll`?
        all: bool,
        /// Waiters present at the instant of notification.
        waiters: usize,
    },
    /// A method call began.
    MethodStart {
        /// Method name.
        method: String,
    },
    /// A method call returned.
    MethodEnd {
        /// Method name.
        method: String,
    },
    /// A concurrency statement was executed (coverage site). For explicit
    /// `synchronized` blocks, `exit` distinguishes leaving from entering.
    Site {
        /// Method name.
        method: String,
        /// Statement path.
        path: Vec<usize>,
        /// True for the exit side of an explicit `synchronized` block.
        exit: bool,
    },
    /// A shared field was read (while evaluating an expression).
    FieldRead {
        /// Field name.
        field: String,
    },
    /// A shared field was written.
    FieldWrite {
        /// Field name.
        field: String,
    },
    /// The thread faulted.
    Fault {
        /// Description.
        message: String,
    },
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The global step counter when the event fired.
    pub step: usize,
    /// The logical thread index.
    pub thread: usize,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Fold a trace into a CoFG coverage tracker. Thread indices become
/// tracker thread ids directly.
pub fn apply_trace(trace: &[TraceEvent], tracker: &mut CoverageTracker) {
    for event in trace {
        let thread = event.thread as u64;
        match &event.kind {
            TraceEventKind::MethodStart { method } => {
                tracker.record(thread, &SiteId::start(method.clone()));
            }
            TraceEventKind::MethodEnd { method } => {
                tracker.record(thread, &SiteId::end(method.clone()));
            }
            TraceEventKind::Site { method, path, exit } => {
                let marker = if *exit {
                    Marker::SyncExit(StmtPath(path.clone()))
                } else {
                    Marker::Stmt(StmtPath(path.clone()))
                };
                tracker.record(
                    thread,
                    &SiteId {
                        method: method.clone(),
                        marker,
                    },
                );
            }
            _ => {}
        }
    }
}

/// Render a trace as a human-readable interleaving story, one line per
/// event, with thread names substituted. The `locks` slice supplies lock
/// display names (index 0 is `this`).
pub fn render_trace(trace: &[TraceEvent], thread_names: &[String], locks: &[String]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let name = |i: usize| {
        thread_names
            .get(i)
            .map(String::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let lock_name = |i: usize| locks.get(i).map(String::as_str).unwrap_or("?").to_string();
    for e in trace {
        let who = name(e.thread);
        let line = match &e.kind {
            TraceEventKind::MethodStart { method } => format!("{who} calls {method}()"),
            TraceEventKind::MethodEnd { method } => format!("{who} returns from {method}()"),
            TraceEventKind::Transition { t, lock } => {
                let l = lock_name(*lock);
                match t {
                    Transition::T1 => format!("{who} requests lock `{l}` (T1)"),
                    Transition::T2 => format!("{who} acquires lock `{l}` (T2)"),
                    Transition::T3 => format!("{who} waits on `{l}`, releasing it (T3)"),
                    Transition::T4 => format!("{who} releases lock `{l}` (T4)"),
                    Transition::T5 => format!("{who} is woken on `{l}` (T5)"),
                }
            }
            TraceEventKind::NotifyIssued { lock, all, waiters } => format!(
                "{who} calls {} on `{}` ({} waiter(s) present)",
                if *all { "notifyAll" } else { "notify" },
                lock_name(*lock),
                waiters
            ),
            TraceEventKind::Site { .. } => continue_marker(),
            TraceEventKind::FieldRead { field } => format!("{who} reads `{field}`"),
            TraceEventKind::FieldWrite { field } => format!("{who} writes `{field}`"),
            TraceEventKind::Fault { message } => format!("{who} FAULTS: {message}"),
        };
        if line.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  [{:>4}] {line}", e.step);
    }
    out
}

fn continue_marker() -> String {
    String::new() // coverage sites are bookkeeping, not narrative
}

/// Count occurrences of each Figure-1 transition in a trace, indexed by
/// [`Transition::index`].
pub fn transition_counts(trace: &[TraceEvent]) -> [usize; 5] {
    let mut counts = [0usize; 5];
    for event in trace {
        if let TraceEventKind::Transition { t, .. } = event.kind {
            counts[t.index()] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::machine::{CallSpec, RunConfig, ThreadSpec, Vm};
    use crate::value::Value;
    use jcc_cofg::build_component_cofgs;
    use jcc_model::examples;

    #[test]
    fn trace_drives_coverage() {
        let c = examples::producer_consumer();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "c".into(),
                    calls: vec![CallSpec::new("receive", vec![])],
                },
                ThreadSpec {
                    name: "p".into(),
                    calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
                },
            ],
        );
        let out = vm.run(&RunConfig::default());
        let mut tracker = CoverageTracker::new(build_component_cofgs(&c));
        apply_trace(&out.trace, &mut tracker);
        assert_eq!(tracker.strays, 0);
        // The consumer either waited first (covering start->wait) or not;
        // in round-robin it starts first and waits.
        assert!(tracker.covered_arcs() >= 3);
    }

    #[test]
    fn transition_counts_tally() {
        let c = examples::producer_consumer();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
            }],
        );
        let out = vm.run(&RunConfig::default());
        let counts = transition_counts(&out.trace);
        // T1, T2, T4 once each; no wait or wake.
        assert_eq!(counts, [1, 1, 0, 1, 0]);
    }

    #[test]
    fn sync_block_sites_cover_enter_and_exit() {
        let c = examples::lock_order_deadlock();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![ThreadSpec {
                name: "t".into(),
                calls: vec![CallSpec::new("forward", vec![])],
            }],
        );
        let out = vm.run(&RunConfig::default());
        let mut tracker = CoverageTracker::new(build_component_cofgs(&c));
        apply_trace(&out.trace, &mut tracker);
        assert_eq!(tracker.strays, 0);
        // forward's CoFG has 5 arcs, all covered by one uncontended run.
        let per = tracker.per_method();
        let fwd = per.iter().find(|(m, _, _)| m == "forward").unwrap();
        assert_eq!((fwd.1, fwd.2), (5, 5));
    }

    #[test]
    fn render_trace_tells_the_story() {
        let c = examples::producer_consumer();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "consumer".into(),
                    calls: vec![CallSpec::new("receive", vec![])],
                },
                ThreadSpec {
                    name: "producer".into(),
                    calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
                },
            ],
        );
        let out = vm.run(&RunConfig::default());
        let text = render_trace(
            &out.trace,
            &["consumer".to_string(), "producer".to_string()],
            &["this".to_string()],
        );
        assert!(text.contains("consumer calls receive()"), "{text}");
        assert!(text.contains("consumer waits on `this`, releasing it (T3)"));
        assert!(text.contains("producer calls notifyAll on `this` (1 waiter(s) present)"));
        assert!(text.contains("consumer is woken on `this` (T5)"));
        assert!(text.contains("producer returns from send()"));
        // Coverage sites are omitted from the narrative.
        assert!(!text.contains("Site"));
    }
}
