//! The virtual machine: logical threads executing compiled components under
//! a pluggable scheduler, with full trace recording.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use fxhash::FxHasher;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use jcc_petri::Transition;

use crate::compile::{CompiledComponent, Instr};

/// Cached obs counter handles for the five Figure-1 transitions. The global
/// registry resets metrics *in place*, so these handles stay valid across
/// [`jcc_obs::Registry::reset`] calls.
fn transition_counter(t: Transition) -> &'static jcc_obs::Counter {
    static COUNTERS: std::sync::OnceLock<[jcc_obs::Counter; 5]> = std::sync::OnceLock::new();
    let counters = COUNTERS.get_or_init(|| {
        let reg = jcc_obs::global();
        [
            reg.counter("vm.transition.T1"),
            reg.counter("vm.transition.T2"),
            reg.counter("vm.transition.T3"),
            reg.counter("vm.transition.T4"),
            reg.counter("vm.transition.T5"),
        ]
    });
    let idx = match t {
        Transition::T1 => 0,
        Transition::T2 => 1,
        Transition::T3 => 2,
        Transition::T4 => 3,
        Transition::T5 => 4,
    };
    &counters[idx]
}
use crate::trace::{TraceEvent, TraceEventKind};
use crate::value::{eval, Env, Value};

/// One method call a logical thread will perform.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CallSpec {
    /// Method name.
    pub method: String,
    /// Argument values, matching the method's parameters.
    pub args: Vec<Value>,
}

impl CallSpec {
    /// Convenience constructor.
    pub fn new(method: impl Into<String>, args: Vec<Value>) -> Self {
        CallSpec {
            method: method.into(),
            args,
        }
    }
}

/// A logical thread: a name and the calls it performs in order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ThreadSpec {
    /// Display name.
    pub name: String,
    /// Calls performed back-to-back.
    pub calls: Vec<CallSpec>,
}

/// The outcome of one call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallResult {
    /// Method name.
    pub method: String,
    /// Step at which the call began.
    pub started_step: usize,
    /// Step at which the call returned (`None` = never completed).
    pub completed_step: Option<usize>,
    /// Returned value, if the method returned one and completed.
    pub returned: Option<Value>,
}

impl CallResult {
    /// True if the call never completed within the run.
    pub fn suspended(&self) -> bool {
        self.completed_step.is_none()
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every thread finished all its calls.
    Completed,
    /// No thread could make progress: the classic deadlock picture.
    /// Threads in `waiting` are suspended in a wait set (FF-T5 / EF-T3
    /// exposure); threads in `blocked` are stuck acquiring a lock (FF-T2).
    Deadlock {
        /// Thread indices suspended in wait sets.
        waiting: Vec<usize>,
        /// Thread indices blocked at lock acquisition.
        blocked: Vec<usize>,
    },
    /// The step budget was exhausted (endless loop — FF-T4 territory when a
    /// lock is held, livelock otherwise).
    StepLimit,
    /// A thread faulted (runtime error / IllegalMonitorState); remaining
    /// threads were run to quiescence.
    Faulted {
        /// Faulting thread index.
        thread: usize,
        /// Fault description.
        message: String,
    },
}

impl Verdict {
    /// True when the run ended without completing all calls normally.
    pub fn is_failure(&self) -> bool {
        !matches!(self, Verdict::Completed)
    }
}

/// Scheduling policies.
#[derive(Debug, Clone)]
pub enum Scheduler {
    /// Rotate through runnable threads.
    RoundRobin,
    /// Seeded pseudo-random choice among runnable threads.
    Random(u64),
    /// At step *i*, prefer thread `plan[i]` when runnable, else fall back to
    /// the lowest-index runnable thread. Deterministic replay of a designed
    /// schedule.
    Fixed(Vec<usize>),
}

/// Run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Scheduling policy.
    pub scheduler: Scheduler,
    /// Step budget.
    pub max_steps: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            scheduler: Scheduler::RoundRobin,
            max_steps: 20_000,
        }
    }
}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Why the run stopped.
    pub verdict: Verdict,
    /// Steps executed.
    pub steps: usize,
    /// The full event trace.
    pub trace: Vec<TraceEvent>,
    /// Per thread, per call: results.
    pub results: Vec<Vec<CallResult>>,
    /// Thread display names, indexed by the trace's thread indices.
    pub thread_names: Vec<String>,
    /// Lock display names, indexed by the trace's lock indices
    /// (index 0 is `this`).
    pub lock_names: Vec<String>,
}

impl RunOutcome {
    /// All call results flattened with their thread index.
    pub fn all_calls(&self) -> impl Iterator<Item = (usize, &CallResult)> {
        self.results
            .iter()
            .enumerate()
            .flat_map(|(t, rs)| rs.iter().map(move |r| (t, r)))
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Status {
    /// Between calls (or before the first).
    Idle,
    /// Executing instructions.
    Running,
    /// Issued T1, waiting for the lock (model place B).
    BlockedEntry { lock: usize },
    /// In a wait set (model place D). `holds` restores reentrancy depth.
    Waiting { lock: usize, holds: u32 },
    /// Notified, re-acquiring the lock (back in place B).
    Reacquire { lock: usize, holds: u32 },
    /// All calls done.
    Finished,
    /// Runtime fault; thread is dead.
    Faulted,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Frame {
    method_idx: usize,
    pc: usize,
    locals: BTreeMap<String, Value>,
    ret_reg: Option<Value>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ThreadState {
    call_idx: usize,
    frame: Option<Frame>,
    status: Status,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LockState {
    owner: Option<usize>,
    count: u32,
    /// FIFO wait set of thread indices.
    wait_set: Vec<usize>,
}

/// The virtual machine. Clone it to snapshot the whole execution state
/// (used by the exhaustive explorer). The compiled component and thread
/// specs are immutable for the life of the machine and shared behind
/// `Arc`s, so a snapshot copies only the mutable state (fields, locks,
/// frames, trace) — the explorer clones a `Vm` per branch, and those
/// clones dominated its profile before the sharing.
#[derive(Debug, Clone)]
pub struct Vm {
    component: Arc<CompiledComponent>,
    specs: Arc<[ThreadSpec]>,
    fields: BTreeMap<String, Value>,
    locks: Vec<LockState>,
    threads: Vec<ThreadState>,
    trace: Vec<TraceEvent>,
    results: Vec<Vec<CallResult>>,
    steps: usize,
    fault: Option<(usize, String)>,
    last_scheduled: usize,
    /// Per-thread hash of the last coverage marker passed. Part of the
    /// state key so that exhaustive exploration distinguishes states that
    /// differ only in which CoFG node a thread last crossed (coverage is a
    /// path property; without this, state dedup would under-count arcs).
    last_marker: Vec<u64>,
}

impl Vm {
    /// Create a VM over `component` with the given logical threads.
    pub fn new(component: CompiledComponent, threads: Vec<ThreadSpec>) -> Self {
        let fields = component.fields.iter().cloned().collect();
        let locks = component
            .locks
            .iter()
            .map(|_| LockState {
                owner: None,
                count: 0,
                wait_set: Vec::new(),
            })
            .collect();
        let thread_states = threads
            .iter()
            .map(|_| ThreadState {
                call_idx: 0,
                frame: None,
                status: Status::Idle,
            })
            .collect();
        let results = threads.iter().map(|_| Vec::new()).collect();
        let n_threads = threads.len();
        Vm {
            component: Arc::new(component),
            specs: threads.into(),
            fields,
            locks,
            threads: thread_states,
            trace: Vec::new(),
            results,
            steps: 0,
            fault: None,
            last_scheduled: usize::MAX,
            last_marker: vec![0; n_threads],
        }
    }

    /// Thread display name.
    pub fn thread_name(&self, idx: usize) -> &str {
        &self.specs[idx].name
    }

    /// Number of logical threads.
    pub fn thread_count(&self) -> usize {
        self.specs.len()
    }

    /// Steps executed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Current shared field values (for assertions in tests).
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.get(name)
    }

    /// The trace so far.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Indices of threads that can take a step right now.
    pub fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&i| self.is_runnable(i))
            .collect()
    }

    fn is_runnable(&self, i: usize) -> bool {
        let t = &self.threads[i];
        match &t.status {
            Status::Finished | Status::Faulted | Status::Waiting { .. } => false,
            Status::Idle => t.call_idx < self.specs[i].calls.len(),
            Status::BlockedEntry { lock } | Status::Reacquire { lock, .. } => {
                self.locks[*lock].owner.is_none()
            }
            Status::Running => true,
        }
    }

    /// True when every thread has finished (or faulted).
    pub fn quiescent(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished | Status::Faulted))
    }

    fn emit(&mut self, thread: usize, kind: TraceEventKind) {
        match &kind {
            TraceEventKind::MethodStart { method } => {
                self.last_marker[thread] = marker_hash(method, None, false, 1);
            }
            TraceEventKind::MethodEnd { method } => {
                self.last_marker[thread] = marker_hash(method, None, false, 2);
            }
            TraceEventKind::Site { method, path, exit } => {
                self.last_marker[thread] = marker_hash(method, Some(path), *exit, 3);
            }
            _ => {}
        }
        if jcc_obs::enabled() {
            if let TraceEventKind::Transition { t, .. } = &kind {
                transition_counter(*t).inc();
            }
        }
        self.trace.push(TraceEvent {
            step: self.steps,
            thread,
            kind,
        });
    }

    /// A 64-bit hash of the complete execution state (fields, locks, thread
    /// frames) — used by the explorer to prune revisited states. The trace
    /// and step counter are deliberately excluded.
    pub fn state_key(&self) -> u64 {
        let mut h = FxHasher::default();
        self.fields.hash(&mut h);
        self.locks.hash(&mut h);
        self.threads.hash(&mut h);
        self.last_marker.hash(&mut h);
        // The observable projection of the call results (method, completed,
        // returned value) is part of the state: two paths that reach the
        // same machine configuration but with different values already
        // returned to callers must not be merged, or signature enumeration
        // would under-approximate. Step counters are deliberately excluded.
        for calls in &self.results {
            for call in calls {
                call.method.hash(&mut h);
                call.completed_step.is_some().hash(&mut h);
                call.returned.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Groups of interchangeable thread indices: threads whose
    /// [`ThreadSpec`]s are equal (same name, same call sequence) behave
    /// identically under every schedule, so permuting them is an
    /// automorphism of the transition system. Groups preserve first-index
    /// order; singletons are dropped (no permutation to exploit).
    pub fn symmetry_groups(&self) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in 0..self.specs.len() {
            match groups
                .iter_mut()
                .find(|g| self.specs[g[0]] == self.specs[i])
            {
                Some(g) => g.push(i),
                None => groups.push(vec![i]),
            }
        }
        groups.retain(|g| g.len() > 1);
        groups
    }

    /// Everything thread `i` contributes to the state key, hashed in
    /// isolation so interchangeable threads can be ordered canonically:
    /// its control state, coverage marker, observable call results and its
    /// role in every lock (owner? position in the FIFO wait set?).
    fn thread_fingerprint(&self, i: usize) -> u64 {
        let mut h = FxHasher::default();
        self.threads[i].hash(&mut h);
        self.last_marker[i].hash(&mut h);
        for call in &self.results[i] {
            call.method.hash(&mut h);
            call.completed_step.is_some().hash(&mut h);
            call.returned.hash(&mut h);
        }
        for lock in &self.locks {
            (lock.owner == Some(i)).hash(&mut h);
            lock.wait_set.iter().position(|&w| w == i).hash(&mut h);
        }
        h.finish()
    }

    /// [`state_key`](Self::state_key) quotiented by thread symmetry: all
    /// states related by permuting the threads of one `groups` entry hash
    /// to the same key. Within each group, threads are sorted by
    /// [fingerprint](Self::thread_fingerprint) (ties broken by index —
    /// a tie can only lose reduction, never merge inequivalent states),
    /// and the whole state is hashed with every thread index remapped
    /// through that canonical permutation, including lock owners and
    /// wait-set entries (FIFO order preserved).
    pub fn state_key_symmetric(&self, groups: &[Vec<usize>]) -> u64 {
        if groups.is_empty() {
            return self.state_key();
        }
        let n = self.threads.len();
        // new_at[slot] = old thread index placed at `slot` canonically.
        let mut new_at: Vec<usize> = (0..n).collect();
        let mut keyed: Vec<(u64, usize)> = Vec::new();
        for group in groups {
            keyed.clear();
            keyed.extend(group.iter().map(|&i| (self.thread_fingerprint(i), i)));
            keyed.sort_unstable();
            for (&slot, &(_, old)) in group.iter().zip(keyed.iter()) {
                new_at[slot] = old;
            }
        }
        let mut old_to_new = vec![0usize; n];
        for (slot, &old) in new_at.iter().enumerate() {
            old_to_new[old] = slot;
        }
        let mut h = FxHasher::default();
        self.fields.hash(&mut h);
        for lock in &self.locks {
            lock.owner.map(|o| old_to_new[o]).hash(&mut h);
            lock.count.hash(&mut h);
            lock.wait_set.len().hash(&mut h);
            for &w in &lock.wait_set {
                old_to_new[w].hash(&mut h);
            }
        }
        for &old in &new_at {
            self.threads[old].hash(&mut h);
            self.last_marker[old].hash(&mut h);
            for call in &self.results[old] {
                call.method.hash(&mut h);
                call.completed_step.is_some().hash(&mut h);
                call.returned.hash(&mut h);
            }
        }
        h.finish()
    }

    /// True when thread `i`'s next step is *thread-local*: it touches
    /// neither locks nor shared fields and cannot fault, so it commutes
    /// with every step of every other thread. Idle threads qualify when
    /// their next call resolves cleanly (method exists, arity matches) —
    /// `begin_call` then only builds the thread's own frame. Used by the
    /// explorer's ample-set reduction.
    pub fn is_local_step(&self, i: usize) -> bool {
        let t = &self.threads[i];
        match &t.status {
            Status::Idle => {
                let Some(call) = self.specs[i].calls.get(t.call_idx) else {
                    return false;
                };
                match self.component.method_index(&call.method) {
                    Some(mi) => self.component.methods[mi].params.len() == call.args.len(),
                    None => false,
                }
            }
            Status::Running => {
                let frame = t.frame.as_ref().expect("running frame");
                self.component.methods[frame.method_idx].code[frame.pc].is_thread_local()
            }
            _ => false,
        }
    }

    /// Execute one step of thread `idx`. Panics if the thread is not
    /// runnable (callers choose from [`runnable`](Self::runnable)).
    pub fn step(&mut self, idx: usize) {
        assert!(self.is_runnable(idx), "thread {idx} is not runnable");
        self.steps += 1;
        match self.threads[idx].status.clone() {
            Status::Idle => self.begin_call(idx),
            Status::BlockedEntry { lock } => {
                self.acquire(idx, lock, 1);
                self.threads[idx].status = Status::Running;
            }
            Status::Reacquire { lock, holds } => {
                self.acquire(idx, lock, holds);
                self.threads[idx].status = Status::Running;
            }
            Status::Running => self.exec_instr(idx),
            s => unreachable!("unrunnable status {s:?}"),
        }
    }

    fn begin_call(&mut self, idx: usize) {
        let call = self.specs[idx].calls[self.threads[idx].call_idx].clone();
        let Some(mi) = self.component.method_index(&call.method) else {
            self.fault_thread(idx, format!("no such method `{}`", call.method));
            return;
        };
        let method = &self.component.methods[mi];
        if method.params.len() != call.args.len() {
            self.fault_thread(
                idx,
                format!(
                    "`{}` expects {} arguments, got {}",
                    call.method,
                    method.params.len(),
                    call.args.len()
                ),
            );
            return;
        }
        let locals: BTreeMap<String, Value> = method
            .params
            .iter()
            .cloned()
            .zip(call.args.iter().cloned())
            .collect();
        self.emit(
            idx,
            TraceEventKind::MethodStart {
                method: call.method.clone(),
            },
        );
        self.results[idx].push(CallResult {
            method: call.method.clone(),
            started_step: self.steps,
            completed_step: None,
            returned: None,
        });
        self.threads[idx].frame = Some(Frame {
            method_idx: mi,
            pc: 0,
            locals,
            ret_reg: None,
        });
        self.threads[idx].status = Status::Running;
    }

    fn acquire(&mut self, idx: usize, lock: usize, holds: u32) {
        debug_assert!(self.locks[lock].owner.is_none());
        self.locks[lock].owner = Some(idx);
        self.locks[lock].count = holds;
        self.emit(
            idx,
            TraceEventKind::Transition {
                t: Transition::T2,
                lock,
            },
        );
    }

    fn fault_thread(&mut self, idx: usize, message: String) {
        self.emit(
            idx,
            TraceEventKind::Fault {
                message: message.clone(),
            },
        );
        // Release anything the thread holds so others can continue —
        // mirrors Java unwinding synchronized blocks on an exception.
        let mut released = Vec::new();
        for (li, lock) in self.locks.iter_mut().enumerate() {
            if lock.owner == Some(idx) {
                lock.owner = None;
                lock.count = 0;
                released.push(li);
            }
        }
        for li in released {
            self.emit(
                idx,
                TraceEventKind::Transition {
                    t: Transition::T4,
                    lock: li,
                },
            );
        }
        self.threads[idx].status = Status::Faulted;
        self.threads[idx].frame = None;
        if self.fault.is_none() {
            self.fault = Some((idx, message));
        }
    }

    fn current_method_name(&self, idx: usize) -> String {
        let frame = self.threads[idx].frame.as_ref().expect("running frame");
        self.component.methods[frame.method_idx].name.clone()
    }

    fn eval_in_frame(&mut self, idx: usize, expr: &jcc_model::ast::Expr) -> Option<Value> {
        // Log field reads for the race detectors.
        let mut reads = Vec::new();
        collect_field_reads(expr, &mut reads);
        for field in reads {
            self.emit(idx, TraceEventKind::FieldRead { field });
        }
        let frame = self.threads[idx].frame.as_ref().expect("running frame");
        let env = Env {
            fields: &self.fields,
            locals: &frame.locals,
        };
        match eval(expr, &env) {
            Ok(v) => Some(v),
            Err(e) => {
                self.fault_thread(idx, e.message);
                None
            }
        }
    }

    fn exec_instr(&mut self, idx: usize) {
        let frame = self.threads[idx].frame.as_ref().expect("running frame");
        let mi = frame.method_idx;
        let pc = frame.pc;
        // A refcount bump on the shared component lets the instruction be
        // borrowed while the machine mutates; the per-step deep clone of
        // the instruction (strings + expression trees) was a hot-path cost.
        let component = Arc::clone(&self.component);
        match &component.methods[mi].code[pc] {
            Instr::EnterSync { lock, path } => {
                let lock = *lock;
                if let Some(p) = path {
                    self.emit(
                        idx,
                        TraceEventKind::Site {
                            method: self.current_method_name(idx),
                            path: p.clone(),
                            exit: false,
                        },
                    );
                }
                let l = &self.locks[lock];
                if l.owner == Some(idx) {
                    self.locks[lock].count += 1;
                    self.advance(idx);
                } else {
                    self.emit(
                        idx,
                        TraceEventKind::Transition {
                            t: Transition::T1,
                            lock,
                        },
                    );
                    self.advance(idx);
                    if self.locks[lock].owner.is_none() {
                        self.acquire(idx, lock, 1);
                    } else {
                        self.threads[idx].status = Status::BlockedEntry { lock };
                    }
                }
            }
            Instr::ExitSync { lock, path } => {
                let lock = *lock;
                if self.locks[lock].owner != Some(idx) {
                    self.fault_thread(
                        idx,
                        format!(
                            "IllegalMonitorStateException: release of `{}` by non-owner",
                            self.component.locks[lock]
                        ),
                    );
                    return;
                }
                if let Some(p) = path {
                    self.emit(
                        idx,
                        TraceEventKind::Site {
                            method: self.current_method_name(idx),
                            path: p.clone(),
                            exit: true,
                        },
                    );
                }
                self.locks[lock].count -= 1;
                if self.locks[lock].count == 0 {
                    self.locks[lock].owner = None;
                    self.emit(
                        idx,
                        TraceEventKind::Transition {
                            t: Transition::T4,
                            lock,
                        },
                    );
                }
                self.advance(idx);
            }
            Instr::Wait { lock, path } => {
                let lock = *lock;
                if self.locks[lock].owner != Some(idx) {
                    self.fault_thread(
                        idx,
                        format!(
                            "IllegalMonitorStateException: wait on `{}` without lock",
                            self.component.locks[lock]
                        ),
                    );
                    return;
                }
                self.emit(
                    idx,
                    TraceEventKind::Site {
                        method: self.current_method_name(idx),
                        path: path.clone(),
                        exit: false,
                    },
                );
                let holds = self.locks[lock].count;
                self.locks[lock].owner = None;
                self.locks[lock].count = 0;
                self.locks[lock].wait_set.push(idx);
                self.emit(
                    idx,
                    TraceEventKind::Transition {
                        t: Transition::T3,
                        lock,
                    },
                );
                self.advance(idx);
                self.threads[idx].status = Status::Waiting { lock, holds };
            }
            Instr::Notify { lock, all, path } => {
                let (lock, all) = (*lock, *all);
                if self.locks[lock].owner != Some(idx) {
                    self.fault_thread(
                        idx,
                        format!(
                            "IllegalMonitorStateException: notify on `{}` without lock",
                            self.component.locks[lock]
                        ),
                    );
                    return;
                }
                self.emit(
                    idx,
                    TraceEventKind::Site {
                        method: self.current_method_name(idx),
                        path: path.clone(),
                        exit: false,
                    },
                );
                let waiters = self.locks[lock].wait_set.len();
                self.emit(idx, TraceEventKind::NotifyIssued { lock, all, waiters });
                let to_wake: Vec<usize> = if all {
                    std::mem::take(&mut self.locks[lock].wait_set)
                } else if waiters > 0 {
                    vec![self.locks[lock].wait_set.remove(0)]
                } else {
                    Vec::new()
                };
                for w in to_wake {
                    let Status::Waiting { lock: wl, holds } = self.threads[w].status.clone()
                    else {
                        unreachable!("wait-set member not waiting");
                    };
                    debug_assert_eq!(wl, lock);
                    self.emit(
                        w,
                        TraceEventKind::Transition {
                            t: Transition::T5,
                            lock,
                        },
                    );
                    self.threads[w].status = Status::Reacquire { lock, holds };
                }
                self.advance(idx);
            }
            Instr::StoreField { name, value } => {
                if let Some(v) = self.eval_in_frame(idx, value) {
                    self.emit(idx, TraceEventKind::FieldWrite { field: name.clone() });
                    self.fields.insert(name.clone(), v);
                    self.advance(idx);
                }
            }
            Instr::StoreLocal { name, value } => {
                if let Some(v) = self.eval_in_frame(idx, value) {
                    let frame = self.threads[idx].frame.as_mut().expect("running frame");
                    frame.locals.insert(name.clone(), v);
                    self.advance(idx);
                }
            }
            Instr::JumpIfFalse { cond, target } => {
                if let Some(v) = self.eval_in_frame(idx, cond) {
                    match v.as_bool() {
                        Ok(true) => self.advance(idx),
                        Ok(false) => self.jump(idx, *target),
                        Err(e) => self.fault_thread(idx, e.message),
                    }
                }
            }
            Instr::Jump { target } => self.jump(idx, *target),
            Instr::EvalRet { value } => {
                let v = match value {
                    Some(e) => match self.eval_in_frame(idx, e) {
                        Some(v) => Some(v),
                        None => return, // faulted
                    },
                    None => None,
                };
                let frame = self.threads[idx].frame.as_mut().expect("running frame");
                frame.ret_reg = v;
                self.advance(idx);
            }
            Instr::Ret => {
                let method = self.current_method_name(idx);
                let frame = self.threads[idx].frame.take().expect("running frame");
                self.emit(idx, TraceEventKind::MethodEnd { method });
                let result = self.results[idx]
                    .last_mut()
                    .expect("call result opened at begin_call");
                result.completed_step = Some(self.steps);
                result.returned = frame.ret_reg;
                self.threads[idx].call_idx += 1;
                self.threads[idx].status =
                    if self.threads[idx].call_idx < self.specs[idx].calls.len() {
                        Status::Idle
                    } else {
                        Status::Finished
                    };
            }
        }
    }

    fn advance(&mut self, idx: usize) {
        if let Some(frame) = self.threads[idx].frame.as_mut() {
            frame.pc += 1;
        }
    }

    fn jump(&mut self, idx: usize, target: usize) {
        if let Some(frame) = self.threads[idx].frame.as_mut() {
            frame.pc = target;
        }
    }

    /// The verdict if the machine is in a terminal state (quiescent or
    /// globally blocked), else `None`.
    pub fn current_verdict(&self) -> Option<Verdict> {
        if self.quiescent() {
            return Some(match &self.fault {
                Some((thread, message)) => Verdict::Faulted {
                    thread: *thread,
                    message: message.clone(),
                },
                None => Verdict::Completed,
            });
        }
        if self.runnable().is_empty() {
            // A fault that stranded other threads is the root cause; report
            // it rather than the secondary deadlock.
            if let Some((thread, message)) = &self.fault {
                return Some(Verdict::Faulted {
                    thread: *thread,
                    message: message.clone(),
                });
            }
            let mut waiting = Vec::new();
            let mut blocked = Vec::new();
            for (i, t) in self.threads.iter().enumerate() {
                match t.status {
                    Status::Waiting { .. } => waiting.push(i),
                    Status::BlockedEntry { .. } | Status::Reacquire { .. } => blocked.push(i),
                    _ => {}
                }
            }
            return Some(Verdict::Deadlock { waiting, blocked });
        }
        None
    }

    /// Package the current state as a [`RunOutcome`] with the given verdict
    /// (used by the explorer to produce witnesses).
    pub fn into_outcome(mut self, verdict: Verdict) -> RunOutcome {
        self.finish(verdict)
    }

    /// Run to completion (or deadlock / step budget) under `config`.
    pub fn run(&mut self, config: &RunConfig) -> RunOutcome {
        let mut rng = match &config.scheduler {
            Scheduler::Random(seed) => Some(StdRng::seed_from_u64(*seed)),
            _ => None,
        };
        let mut plan_pos = 0usize;
        while self.steps < config.max_steps {
            if self.quiescent() {
                return self.finish(match &self.fault {
                    Some((thread, message)) => Verdict::Faulted {
                        thread: *thread,
                        message: message.clone(),
                    },
                    None => Verdict::Completed,
                });
            }
            let runnable = self.runnable();
            if runnable.is_empty() {
                let verdict = self
                    .current_verdict()
                    .expect("no runnable threads is terminal");
                return self.finish(verdict);
            }
            let chosen = match &config.scheduler {
                Scheduler::RoundRobin => {
                    let next = runnable
                        .iter()
                        .copied()
                        .find(|&i| i > self.last_scheduled)
                        .unwrap_or(runnable[0]);
                    self.last_scheduled = next;
                    next
                }
                Scheduler::Random(_) => {
                    let rng = rng.as_mut().expect("rng for random scheduler");
                    runnable[rng.gen_range(0..runnable.len())]
                }
                Scheduler::Fixed(plan) => {
                    let preferred = plan.get(plan_pos).copied();
                    plan_pos += 1;
                    match preferred {
                        Some(p) if runnable.contains(&p) => p,
                        _ => runnable[0],
                    }
                }
            };
            self.step(chosen);
        }
        self.finish(Verdict::StepLimit)
    }

    fn finish(&mut self, verdict: Verdict) -> RunOutcome {
        RunOutcome {
            verdict,
            steps: self.steps,
            trace: self.trace.clone(),
            results: self.results.clone(),
            thread_names: self.specs.iter().map(|s| s.name.clone()).collect(),
            lock_names: self.component.locks.clone(),
        }
    }
}

fn marker_hash(method: &str, path: Option<&Vec<usize>>, exit: bool, tag: u8) -> u64 {
    let mut h = FxHasher::default();
    tag.hash(&mut h);
    method.hash(&mut h);
    path.hash(&mut h);
    exit.hash(&mut h);
    h.finish()
}

fn collect_field_reads(expr: &jcc_model::ast::Expr, out: &mut Vec<String>) {
    use jcc_model::ast::Expr as E;
    match expr {
        E::Field(name) => out.push(name.clone()),
        E::Unary(_, e) => collect_field_reads(e, out),
        E::Binary(_, a, b) => {
            collect_field_reads(a, out);
            collect_field_reads(b, out);
        }
        E::Call(_, args) => {
            for a in args {
                collect_field_reads(a, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use jcc_model::examples;

    fn pc_vm(threads: Vec<ThreadSpec>) -> Vm {
        let c = examples::producer_consumer();
        Vm::new(compile(&c).unwrap(), threads)
    }

    fn spec(name: &str, calls: Vec<CallSpec>) -> ThreadSpec {
        ThreadSpec {
            name: name.to_string(),
            calls,
        }
    }

    #[test]
    fn symmetry_groups_require_identical_specs() {
        let recv = || vec![CallSpec::new("receive", vec![])];
        let vm = pc_vm(vec![
            spec("c", recv()),
            spec("p", vec![CallSpec::new("send", vec![Value::Str("a".into())])]),
            spec("c", recv()),
            spec("c", recv()),
        ]);
        assert_eq!(vm.symmetry_groups(), vec![vec![0, 2, 3]]);
        // Different names (or call lists) break interchangeability.
        let vm = pc_vm(vec![spec("c1", recv()), spec("c2", recv())]);
        assert!(vm.symmetry_groups().is_empty());
    }

    #[test]
    fn permuted_states_share_a_symmetric_key() {
        let recv = || vec![CallSpec::new("receive", vec![])];
        let vm = pc_vm(vec![
            spec("c", recv()),
            spec("c", recv()),
            spec("p", vec![CallSpec::new("send", vec![Value::Str("a".into())])]),
        ]);
        let groups = vm.symmetry_groups();
        assert_eq!(groups, vec![vec![0, 1]]);
        // Start thread 0 in one copy, thread 1 in the other: the states
        // are thread-permutations of each other.
        let mut a = vm.clone();
        a.step(0);
        let mut b = vm.clone();
        b.step(1);
        assert_ne!(a.state_key(), b.state_key());
        assert_eq!(
            a.state_key_symmetric(&groups),
            b.state_key_symmetric(&groups)
        );
        // Advance both copies identically: keys stay in lockstep, and a
        // genuinely different state (the producer moved) changes the key.
        a.step(0);
        b.step(1);
        assert_eq!(
            a.state_key_symmetric(&groups),
            b.state_key_symmetric(&groups)
        );
        let before = a.state_key_symmetric(&groups);
        a.step(2);
        assert_ne!(a.state_key_symmetric(&groups), before);
    }

    #[test]
    fn local_steps_are_exactly_the_commuting_ones() {
        let recv = || vec![CallSpec::new("receive", vec![])];
        let vm = pc_vm(vec![spec("c", recv()), spec("p", recv())]);
        // Idle with a resolvable call: local (begin_call builds only the
        // thread's own frame).
        assert!(vm.is_local_step(0));
        let mut vm = vm;
        vm.step(0);
        // Now Running at EnterSync (synchronized method): not local.
        assert!(!vm.is_local_step(0));
        // A thread whose call cannot resolve is not a local step.
        let bad = pc_vm(vec![spec("x", vec![CallSpec::new("nope", vec![])])]);
        assert!(!bad.is_local_step(0));
    }

    #[test]
    fn single_send_completes() {
        let mut vm = pc_vm(vec![spec(
            "producer",
            vec![CallSpec::new("send", vec![Value::Str("hi".into())])],
        )]);
        let out = vm.run(&RunConfig::default());
        assert_eq!(out.verdict, Verdict::Completed);
        assert_eq!(vm.field("curPos"), Some(&Value::Int(2)));
        assert_eq!(vm.field("contents"), Some(&Value::Str("hi".into())));
        assert!(!out.results[0][0].suspended());
    }

    #[test]
    fn receive_alone_deadlocks_waiting() {
        // A lone consumer waits forever: FF-T5's "only one thread in the
        // system and thus waits forever".
        let mut vm = pc_vm(vec![spec(
            "consumer",
            vec![CallSpec::new("receive", vec![])],
        )]);
        let out = vm.run(&RunConfig::default());
        assert_eq!(
            out.verdict,
            Verdict::Deadlock {
                waiting: vec![0],
                blocked: vec![]
            }
        );
        assert!(out.results[0][0].suspended());
    }

    #[test]
    fn producer_consumer_handoff() {
        let mut vm = pc_vm(vec![
            spec("consumer", vec![CallSpec::new("receive", vec![])]),
            spec(
                "producer",
                vec![CallSpec::new("send", vec![Value::Str("a".into())])],
            ),
        ]);
        let out = vm.run(&RunConfig::default());
        assert_eq!(out.verdict, Verdict::Completed);
        assert_eq!(
            out.results[0][0].returned,
            Some(Value::Str("a".into()))
        );
    }

    #[test]
    fn characters_received_in_order() {
        let mut vm = pc_vm(vec![
            spec(
                "producer",
                vec![CallSpec::new("send", vec![Value::Str("abc".into())])],
            ),
            spec(
                "consumer",
                vec![
                    CallSpec::new("receive", vec![]),
                    CallSpec::new("receive", vec![]),
                    CallSpec::new("receive", vec![]),
                ],
            ),
        ]);
        let out = vm.run(&RunConfig::default());
        assert_eq!(out.verdict, Verdict::Completed);
        let received: Vec<String> = out.results[1]
            .iter()
            .map(|r| match &r.returned {
                Some(Value::Str(s)) => s.clone(),
                other => panic!("expected char, got {other:?}"),
            })
            .collect();
        assert_eq!(received, vec!["a", "b", "c"]);
    }

    #[test]
    fn random_schedules_are_reproducible() {
        let mk = || {
            pc_vm(vec![
                spec(
                    "p",
                    vec![CallSpec::new("send", vec![Value::Str("xyz".into())])],
                ),
                spec(
                    "c",
                    vec![
                        CallSpec::new("receive", vec![]),
                        CallSpec::new("receive", vec![]),
                        CallSpec::new("receive", vec![]),
                    ],
                ),
            ])
        };
        let cfg = RunConfig {
            scheduler: Scheduler::Random(1234),
            max_steps: 20_000,
        };
        let out1 = mk().run(&cfg);
        let out2 = mk().run(&cfg);
        assert_eq!(out1.trace, out2.trace);
        assert_eq!(out1.steps, out2.steps);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            let mut vm = pc_vm(vec![
                spec(
                    "p",
                    vec![CallSpec::new("send", vec![Value::Str("xyz".into())])],
                ),
                spec("c", vec![CallSpec::new("receive", vec![])]),
            ]);
            vm.run(&RunConfig {
                scheduler: Scheduler::Random(seed),
                max_steps: 20_000,
            })
            .trace
        };
        // Not guaranteed for every pair, but these seeds interleave
        // differently (stable because StdRng is deterministic).
        let traces: Vec<_> = (0..8).map(mk).collect();
        assert!(
            traces.iter().any(|t| *t != traces[0]),
            "eight seeds all produced identical traces"
        );
    }

    #[test]
    fn two_receivers_one_short_send() {
        // Two consumers, one 1-char send: one consumer must stay suspended.
        let mut vm = pc_vm(vec![
            spec("c1", vec![CallSpec::new("receive", vec![])]),
            spec("c2", vec![CallSpec::new("receive", vec![])]),
            spec(
                "p",
                vec![CallSpec::new("send", vec![Value::Str("x".into())])],
            ),
        ]);
        let out = vm.run(&RunConfig::default());
        match out.verdict {
            Verdict::Deadlock { waiting, blocked } => {
                assert_eq!(waiting.len(), 1);
                assert!(blocked.is_empty());
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn lock_order_deadlock_detected() {
        let c = examples::lock_order_deadlock();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                spec("fwd", vec![CallSpec::new("forward", vec![])]),
                spec("bwd", vec![CallSpec::new("backward", vec![])]),
            ],
        );
        // A fixed schedule forcing the deadlock: each thread acquires its
        // first lock, then tries the other's.
        // Steps per thread: Idle->begin, EnterSync outer (uncontended: one
        // step), EnterSync inner (request, blocks).
        let out = vm.run(&RunConfig {
            scheduler: Scheduler::Fixed(vec![0, 0, 1, 1, 0, 1]),
            max_steps: 10_000,
        });
        match out.verdict {
            Verdict::Deadlock { waiting, blocked } => {
                assert!(waiting.is_empty());
                assert_eq!(blocked, vec![0, 1]);
            }
            other => panic!("expected lock-order deadlock, got {other:?}"),
        }
    }

    #[test]
    fn step_limit_on_infinite_loop() {
        let src = "class L { synchronized fn spin() { while (true) { skip; } } }";
        let c = jcc_model::parse_component(src).unwrap();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![spec("t", vec![CallSpec::new("spin", vec![])])],
        );
        let out = vm.run(&RunConfig {
            scheduler: Scheduler::RoundRobin,
            max_steps: 500,
        });
        assert_eq!(out.verdict, Verdict::StepLimit);
    }

    #[test]
    fn runtime_fault_reported() {
        let src = r#"
            class F {
              var s: str = "ab";
              synchronized fn bad() -> str {
                return charAt(s, 99);
              }
            }
        "#;
        let c = jcc_model::parse_component(src).unwrap();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![spec("t", vec![CallSpec::new("bad", vec![])])],
        );
        let out = vm.run(&RunConfig::default());
        match out.verdict {
            Verdict::Faulted { thread: 0, message } => {
                assert!(message.contains("out of bounds"), "{message}");
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn fault_releases_held_locks() {
        let src = r#"
            class F {
              var s: str = "ab";
              synchronized fn bad() -> str { return charAt(s, 99); }
              synchronized fn ok() -> int { return 1; }
            }
        "#;
        let c = jcc_model::parse_component(src).unwrap();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                spec("t1", vec![CallSpec::new("bad", vec![])]),
                spec("t2", vec![CallSpec::new("ok", vec![])]),
            ],
        );
        let out = vm.run(&RunConfig::default());
        // t2 must complete even though t1 faulted inside the monitor.
        assert_eq!(out.results[1][0].returned, Some(Value::Int(1)));
    }

    #[test]
    fn notify_fifo_wakes_longest_waiter() {
        let src = r#"
            class N {
              var go: int = 0;
              synchronized fn block() -> int {
                while (go == 0) { wait; }
                go = go - 1;
                return 1;
              }
              synchronized fn release_one() {
                go = go + 1;
                notify;
              }
            }
        "#;
        let c = jcc_model::parse_component(src).unwrap();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                spec("w1", vec![CallSpec::new("block", vec![])]),
                spec("w2", vec![CallSpec::new("block", vec![])]),
                spec("r", vec![CallSpec::new("release_one", vec![])]),
            ],
        );
        // Run w1 to its wait, then w2, then release one.
        let out = vm.run(&RunConfig {
            scheduler: Scheduler::Fixed(vec![
                0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 0, 0, 0, 0, 0, 0,
            ]),
            max_steps: 10_000,
        });
        // w1 (first waiter) completed; w2 still waiting.
        match out.verdict {
            Verdict::Deadlock { waiting, .. } => assert_eq!(waiting, vec![1]),
            other => panic!("expected one leftover waiter, got {other:?}"),
        }
        assert_eq!(out.results[0][0].returned, Some(Value::Int(1)));
        assert!(out.results[1][0].suspended());
    }

    #[test]
    fn state_key_stable_and_sensitive() {
        let vm1 = pc_vm(vec![spec(
            "p",
            vec![CallSpec::new("send", vec![Value::Str("a".into())])],
        )]);
        let vm2 = pc_vm(vec![spec(
            "p",
            vec![CallSpec::new("send", vec![Value::Str("a".into())])],
        )]);
        assert_eq!(vm1.state_key(), vm2.state_key());
        let mut vm3 = pc_vm(vec![spec(
            "p",
            vec![CallSpec::new("send", vec![Value::Str("a".into())])],
        )]);
        vm3.step(0);
        assert_ne!(vm1.state_key(), vm3.state_key());
    }

    #[test]
    fn trace_contains_figure1_transitions() {
        let mut vm = pc_vm(vec![spec(
            "p",
            vec![CallSpec::new("send", vec![Value::Str("a".into())])],
        )]);
        let out = vm.run(&RunConfig::default());
        let transitions: Vec<Transition> = out
            .trace
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Transition { t, .. } => Some(t),
                _ => None,
            })
            .collect();
        // Uncontended send: T1, T2 (enter), T4 (exit). No wait involved.
        assert_eq!(
            transitions,
            vec![Transition::T1, Transition::T2, Transition::T4]
        );
    }

    #[test]
    fn mismatched_arity_faults() {
        let mut vm = pc_vm(vec![spec("p", vec![CallSpec::new("send", vec![])])]);
        let out = vm.run(&RunConfig::default());
        assert!(matches!(out.verdict, Verdict::Faulted { .. }));
    }
}
