//! # jcc-vm — a virtual machine for Monitor IR components
//!
//! The paper tests components "under the assumption of multiple thread
//! access", which requires *controlling* the interleaving of threads. The
//! JVM gives no such control; this VM does. It interprets `jcc-model`
//! components with logical threads under a pluggable scheduler:
//!
//! * [`machine::Scheduler::RoundRobin`] — deterministic rotation,
//! * [`machine::Scheduler::Random`] — seeded pseudo-random interleaving
//!   (reproducible noise, the paper's "non-deterministic" baseline),
//! * [`machine::Scheduler::Fixed`] — an explicit schedule (deterministic
//!   testing in the Brinch Hansen / ConAn sense),
//! * [`explore`] — exhaustive bounded DFS over *all* schedules, with state
//!   hashing (a small model checker, used to prove a mutant deadlocks or to
//!   union coverage over every interleaving).
//!
//! Monitor semantics follow the paper's Figure-1 model exactly: `enter`
//! fires T1 then T2, `wait` fires T3 (and the wake-up path fires T5 then
//! T2), leaving a synchronized region fires T4. Locks are reentrant; each
//! lock has one FIFO wait set; `notify` wakes the longest-waiting thread
//! (the JVM may pick arbitrarily — FIFO keeps runs reproducible).
//!
//! Every run yields a [`machine::RunOutcome`]: a full trace (convertible to
//! CoFG coverage markers), per-call results and completion steps, and a
//! verdict (completed / deadlocked / step-limit).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod explore;
pub mod machine;
pub mod timeline;
pub mod trace;
pub mod value;

pub use compile::{compile, CompileError, CompiledComponent};
pub use explore::{
    explore, explore_observed, explore_portfolio, ExploreConfig, ExploreResult, FoundBy,
    PortfolioConfig, PortfolioResult,
};
pub use jcc_petri::Parallelism;
pub use machine::{
    CallResult, CallSpec, RunConfig, RunOutcome, Scheduler, ThreadSpec, Verdict, Vm,
};
pub use timeline::timeline_of_outcome;
pub use trace::{TraceEvent, TraceEventKind};
pub use value::Value;
