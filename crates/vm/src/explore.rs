//! Exhaustive bounded exploration of every schedule — a small explicit-state
//! model checker over the VM.
//!
//! From each reachable VM state, every runnable thread is tried; states are
//! deduplicated by [`Vm::state_key`] (which includes per-thread coverage
//! context, so arc-coverage union over schedules is exact). The result
//! aggregates every distinct terminal outcome:
//!
//! * **completed** paths — all calls returned,
//! * **deadlock** paths — no thread can progress (FF-T2 / FF-T5 pictures),
//! * **fault** paths — a runtime error or IllegalMonitorState,
//! * **cycle** paths — the path revisited one of its own earlier states:
//!   the system can loop forever without any call completing (a spin with
//!   the lock held is the FF-T4 picture; a pure livelock otherwise).
//!
//! The paper's deterministic-testing premise — that a failure only shows up
//! under *some* schedules — is exactly what this module quantifies.

use std::collections::HashSet;

use jcc_cofg::coverage::CoverageTracker;

use crate::machine::{RunOutcome, Verdict, Vm};
use crate::trace::apply_trace;

/// Exploration limits.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum distinct states to visit.
    pub max_states: usize,
    /// Maximum scheduler decisions along one path (depth bound).
    pub max_depth: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 200_000,
            max_depth: 2_000,
        }
    }
}

/// Aggregated result of exploring all schedules.
#[derive(Debug)]
pub struct ExploreResult {
    /// Distinct states visited.
    pub states: usize,
    /// Scheduler transitions taken.
    pub transitions: usize,
    /// Terminal paths that completed normally.
    pub completed_paths: usize,
    /// Terminal paths ending in deadlock.
    pub deadlock_paths: usize,
    /// A witness run for the first deadlock found, if any.
    pub deadlock_witness: Option<RunOutcome>,
    /// Terminal paths ending in a fault.
    pub fault_paths: usize,
    /// A witness run for the first fault found, if any.
    pub fault_witness: Option<RunOutcome>,
    /// Paths that revisited one of their own earlier states (potential
    /// livelock / busy-wait loop).
    pub cycle_paths: usize,
    /// A cycle is *inescapable* when, in the revisited state, only the
    /// cycling threads are runnable — no other thread can break the loop
    /// (the SkipWait / HoldLockForever mutant picture).
    pub inescapable_cycles: usize,
    /// A witness for the first cycle found, if any.
    pub cycle_witness: Option<RunOutcome>,
    /// Paths cut off by the depth bound.
    pub depth_limited_paths: usize,
    /// True when the state or depth limits truncated the exploration.
    pub truncated: bool,
}

impl ExploreResult {
    /// True when at least one schedule deadlocks, faults or can loop
    /// forever.
    pub fn found_failure(&self) -> bool {
        self.deadlock_paths > 0 || self.fault_paths > 0 || self.cycle_paths > 0
    }
}

/// Explore every schedule of `vm` (consumed as the initial state). When
/// `coverage` is provided, the union of CoFG coverage over all explored
/// paths is accumulated into it.
pub fn explore(
    vm: Vm,
    config: &ExploreConfig,
    coverage: Option<&mut CoverageTracker>,
) -> ExploreResult {
    match coverage {
        Some(tracker) => explore_observed(vm, config, |vm| {
            tracker.reset_threads();
            apply_trace(vm.trace(), tracker);
        }),
        None => explore_observed(vm, config, |_| {}),
    }
}

/// Like [`explore`], but calls `observer` with the VM at the end of every
/// maximal path prefix (terminal states, cycle closures and first revisits
/// of shared states) — the points where a path's trace is complete enough
/// to measure path properties such as coverage or waiter profiles.
pub fn explore_observed(
    vm: Vm,
    config: &ExploreConfig,
    mut observer: impl FnMut(&Vm),
) -> ExploreResult {
    let mut result = ExploreResult {
        states: 1,
        transitions: 0,
        completed_paths: 0,
        deadlock_paths: 0,
        deadlock_witness: None,
        fault_paths: 0,
        fault_witness: None,
        cycle_paths: 0,
        inescapable_cycles: 0,
        cycle_witness: None,
        depth_limited_paths: 0,
        truncated: false,
    };
    let mut seen: HashSet<u64> = HashSet::new();
    let mut on_path: HashSet<u64> = HashSet::new();
    let key0 = vm.state_key();
    seen.insert(key0);
    on_path.insert(key0);
    dfs(
        vm,
        0,
        config,
        &mut seen,
        &mut on_path,
        &mut result,
        &mut observer,
    );
    result
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    vm: Vm,
    depth: usize,
    config: &ExploreConfig,
    seen: &mut HashSet<u64>,
    on_path: &mut HashSet<u64>,
    result: &mut ExploreResult,
    observer: &mut impl FnMut(&Vm),
) {
    if let Some(verdict) = vm.current_verdict() {
        observer(&vm);
        match &verdict {
            Verdict::Completed => result.completed_paths += 1,
            Verdict::Faulted { .. } => {
                result.fault_paths += 1;
                if result.fault_witness.is_none() {
                    result.fault_witness = Some(vm.into_outcome(verdict));
                }
            }
            Verdict::Deadlock { .. } => {
                result.deadlock_paths += 1;
                if result.deadlock_witness.is_none() {
                    result.deadlock_witness = Some(vm.into_outcome(verdict));
                }
            }
            Verdict::StepLimit => unreachable!("explorer does not use step budgets"),
        }
        return;
    }
    if depth >= config.max_depth {
        result.depth_limited_paths += 1;
        result.truncated = true;
        return;
    }
    for t in vm.runnable() {
        let mut next = vm.clone();
        next.step(t);
        result.transitions += 1;
        let key = next.state_key();
        if on_path.contains(&key) {
            // The path closed a loop on itself: it can repeat forever.
            result.cycle_paths += 1;
            let runnable = next.runnable();
            if runnable.len() == 1 {
                result.inescapable_cycles += 1;
            }
            observer(&next);
            if result.cycle_witness.is_none() {
                result.cycle_witness = Some(next.into_outcome(Verdict::StepLimit));
            }
            continue;
        }
        if !seen.insert(key) {
            // Reached a state first visited on another path: its subtree is
            // observed from there; report this path's prefix only.
            observer(&next);
            continue;
        }
        if result.states >= config.max_states {
            result.truncated = true;
            continue;
        }
        result.states += 1;
        on_path.insert(key);
        dfs(next, depth + 1, config, seen, on_path, result, observer);
        on_path.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::machine::{CallSpec, ThreadSpec};
    use crate::value::Value;
    use jcc_cofg::build_component_cofgs;
    use jcc_model::examples;

    fn pc_threads() -> Vec<ThreadSpec> {
        vec![
            ThreadSpec {
                name: "c".into(),
                calls: vec![CallSpec::new("receive", vec![])],
            },
            ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
            },
        ]
    }

    #[test]
    fn producer_consumer_never_fails() {
        let c = examples::producer_consumer();
        let vm = Vm::new(compile(&c).unwrap(), pc_threads());
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(!r.found_failure(), "{r:?}");
        assert!(r.completed_paths > 0);
        assert!(!r.truncated);
        assert!(r.states > 10);
    }

    #[test]
    fn lock_order_deadlock_found_by_exploration() {
        let c = examples::lock_order_deadlock();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "f".into(),
                    calls: vec![CallSpec::new("forward", vec![])],
                },
                ThreadSpec {
                    name: "b".into(),
                    calls: vec![CallSpec::new("backward", vec![])],
                },
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.deadlock_paths > 0);
        assert!(r.completed_paths > 0, "some schedules do complete");
        let witness = r.deadlock_witness.as_ref().unwrap();
        assert!(matches!(witness.verdict, Verdict::Deadlock { .. }));
    }

    #[test]
    fn skip_wait_mutant_spins_inescapably() {
        // The FF-T3 mutant turns receive's wait into `skip`: the consumer
        // busy-waits while *holding the monitor*, so the producer can never
        // enter — an inescapable cycle (the runtime picture of FF-T4 for
        // every other thread: FF-T2).
        let c = examples::producer_consumer();
        let m = jcc_model::mutate::enumerate_mutations(&c)
            .into_iter()
            .find(|m| {
                m.kind == jcc_model::mutate::MutationKind::SkipWait && m.method == "receive"
            })
            .unwrap();
        let mutant = jcc_model::mutate::apply_mutation(&c, &m).unwrap();
        let vm = Vm::new(compile(&mutant).unwrap(), pc_threads());
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.cycle_paths > 0, "{r:?}");
        assert!(r.inescapable_cycles > 0, "{r:?}");
        assert!(r.found_failure());
    }

    #[test]
    fn drop_notify_mutant_deadlocks_somewhere() {
        let c = examples::producer_consumer();
        let m = jcc_model::mutate::enumerate_mutations(&c)
            .into_iter()
            .find(|m| {
                m.kind == jcc_model::mutate::MutationKind::DropNotify && m.method == "send"
            })
            .unwrap();
        let mutant = jcc_model::mutate::apply_mutation(&c, &m).unwrap();
        let vm = Vm::new(compile(&mutant).unwrap(), pc_threads());
        let r = explore(vm, &ExploreConfig::default(), None);
        // Consumer-first schedules: consumer waits, send never notifies.
        assert!(r.deadlock_paths > 0, "{r:?}");
    }

    #[test]
    fn coverage_union_over_all_schedules() {
        let c = examples::producer_consumer();
        let vm = Vm::new(compile(&c).unwrap(), pc_threads());
        let mut tracker = CoverageTracker::new(build_component_cofgs(&c));
        let _ = explore(vm, &ExploreConfig::default(), Some(&mut tracker));
        // With one receive and one send of "a": receive can cover
        // start->wait, start->notifyAll, wait->notifyAll, notifyAll->end;
        // send can cover start->notifyAll, notifyAll->end. wait->wait needs
        // a second wakeup and send's wait arcs need a pre-filled buffer:
        // exactly 6 coverable arcs.
        assert_eq!(
            tracker.covered_arcs(),
            6,
            "uncovered: {:?}",
            tracker.uncovered()
        );
    }

    #[test]
    fn state_limit_truncates() {
        let c = examples::producer_consumer();
        let vm = Vm::new(compile(&c).unwrap(), pc_threads());
        let r = explore(
            vm,
            &ExploreConfig {
                max_states: 5,
                max_depth: 2_000,
            },
            None,
        );
        assert!(r.truncated);
        assert!(r.states <= 5);
    }

    #[test]
    fn depth_limit_counts_paths() {
        let c = examples::producer_consumer();
        let vm = Vm::new(compile(&c).unwrap(), pc_threads());
        let r = explore(
            vm,
            &ExploreConfig {
                max_states: 200_000,
                max_depth: 3,
            },
            None,
        );
        assert!(r.truncated);
        assert!(r.depth_limited_paths > 0);
    }
}
