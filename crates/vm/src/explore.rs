//! Exhaustive bounded exploration of every schedule — a small explicit-state
//! model checker over the VM.
//!
//! From each reachable VM state, every runnable thread is tried; states are
//! deduplicated by [`Vm::state_key`] (which includes per-thread coverage
//! context, so arc-coverage union over schedules is exact). The result
//! aggregates every distinct terminal outcome:
//!
//! * **completed** paths — all calls returned,
//! * **deadlock** paths — no thread can progress (FF-T2 / FF-T5 pictures),
//! * **fault** paths — a runtime error or IllegalMonitorState,
//! * **cycle** paths — the path revisited one of its own earlier states:
//!   the system can loop forever without any call completing (a spin with
//!   the lock held is the FF-T4 picture; a pure livelock otherwise).
//!
//! The paper's deterministic-testing premise — that a failure only shows up
//! under *some* schedules — is exactly what this module quantifies.

use fxhash::FxHashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use jcc_cofg::coverage::CoverageTracker;
use jcc_petri::parallel::Parallelism;

use crate::machine::{RunConfig, RunOutcome, Scheduler, Verdict, Vm};
use crate::trace::apply_trace;

/// Exploration limits.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum distinct states to visit.
    pub max_states: usize,
    /// Maximum scheduler decisions along one path (depth bound).
    pub max_depth: usize,
    /// Worker threads for [`explore_portfolio`]. The exhaustive DFS of
    /// [`explore`] is inherently order-dependent (path counts depend on
    /// which path reaches a shared state first), so it always runs on one
    /// thread; extra threads run seeded-random failure probes alongside it.
    pub parallelism: Parallelism,
    /// Quotient the state space by thread symmetry: states that differ
    /// only by a permutation of threads with identical `ThreadSpec`s
    /// (via [`Vm::symmetry_groups`]) are deduplicated through
    /// [`Vm::state_key_symmetric`]. Sound for the failure-class verdicts
    /// (permuting interchangeable threads is an automorphism), but path
    /// and state *counts* shrink, so leave it off when the exact census
    /// matters. Default off.
    pub symmetry: bool,
    /// Ample-set partial-order reduction: from a state where some
    /// runnable thread's next step is thread-local (commutes with every
    /// other thread's steps — see [`Vm::is_local_step`]), expand only that
    /// step instead of all runnable threads, unless doing so would close a
    /// cycle on the current path (the cycle proviso forces a full
    /// expansion there, so livelocks are never postponed forever).
    /// Preserves which failure classes exist, not path counts. Default
    /// off.
    pub ample: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 200_000,
            max_depth: 2_000,
            parallelism: Parallelism::default(),
            symmetry: false,
            ample: false,
        }
    }
}

/// Aggregated result of exploring all schedules.
#[derive(Debug)]
pub struct ExploreResult {
    /// Distinct states visited.
    pub states: usize,
    /// Scheduler transitions taken.
    pub transitions: usize,
    /// Terminal paths that completed normally.
    pub completed_paths: usize,
    /// Terminal paths ending in deadlock.
    pub deadlock_paths: usize,
    /// A witness run for the first deadlock found, if any.
    pub deadlock_witness: Option<RunOutcome>,
    /// Terminal paths ending in a fault.
    pub fault_paths: usize,
    /// A witness run for the first fault found, if any.
    pub fault_witness: Option<RunOutcome>,
    /// Paths that revisited one of their own earlier states (potential
    /// livelock / busy-wait loop).
    pub cycle_paths: usize,
    /// A cycle is *inescapable* when, in the revisited state, only the
    /// cycling threads are runnable — no other thread can break the loop
    /// (the SkipWait / HoldLockForever mutant picture).
    pub inescapable_cycles: usize,
    /// A witness for the first cycle found, if any.
    pub cycle_witness: Option<RunOutcome>,
    /// Paths cut off by the depth bound.
    pub depth_limited_paths: usize,
    /// True when the state or depth limits truncated the exploration.
    pub truncated: bool,
    /// Successor branches skipped by the ample-set reduction (runnable
    /// threads not expanded because a commuting local step stood in for
    /// them). Zero when [`ExploreConfig::ample`] is off. Excluded from
    /// [`tally`](Self::tally): it describes the search, not the verdict.
    pub ample_pruned: usize,
    /// States where the ample candidate would have closed a cycle on the
    /// current path and the cycle proviso forced a full expansion.
    pub full_expansions: usize,
}

impl ExploreResult {
    /// True when at least one schedule deadlocks, faults or can loop
    /// forever.
    pub fn found_failure(&self) -> bool {
        self.deadlock_paths > 0 || self.fault_paths > 0 || self.cycle_paths > 0
    }

    /// The preferred failure witness of an exhaustive exploration, in the
    /// stable severity order deadlock → fault → cycle. Deterministic for a
    /// given component and config (the DFS order fixes each witness), so
    /// its rendered timeline is too. `None` when no schedule fails.
    pub fn first_witness(&self) -> Option<&RunOutcome> {
        self.deadlock_witness
            .as_ref()
            .or(self.fault_witness.as_ref())
            .or(self.cycle_witness.as_ref())
    }

    /// The numeric outcome of the exploration, witnesses excluded — what
    /// the determinism suite compares across thread counts and runs.
    #[allow(clippy::type_complexity)]
    pub fn tally(&self) -> (usize, usize, usize, usize, usize, usize, usize, usize, bool) {
        (
            self.states,
            self.transitions,
            self.completed_paths,
            self.deadlock_paths,
            self.fault_paths,
            self.cycle_paths,
            self.inescapable_cycles,
            self.depth_limited_paths,
            self.truncated,
        )
    }
}

/// Explore every schedule of `vm` (consumed as the initial state). When
/// `coverage` is provided, the union of CoFG coverage over all explored
/// paths is accumulated into it.
pub fn explore(
    vm: Vm,
    config: &ExploreConfig,
    coverage: Option<&mut CoverageTracker>,
) -> ExploreResult {
    match coverage {
        Some(tracker) => explore_observed(vm, config, |vm| {
            tracker.reset_threads();
            apply_trace(vm.trace(), tracker);
        }),
        None => explore_observed(vm, config, |_| {}),
    }
}

/// Like [`explore`], but calls `observer` with the VM at the end of every
/// maximal path prefix (terminal states, cycle closures and first revisits
/// of shared states) — the points where a path's trace is complete enough
/// to measure path properties such as coverage or waiter profiles.
pub fn explore_observed(
    vm: Vm,
    config: &ExploreConfig,
    observer: impl FnMut(&Vm),
) -> ExploreResult {
    explore_stoppable(vm, config, observer, None).0
}

/// [`explore_observed`] with an optional cooperative stop flag: when the
/// flag flips, the DFS abandons the remaining frontier and returns its
/// partial result marked truncated. The second return value is true iff
/// the stop flag (not a state/depth limit) cut the search short. Used by
/// the portfolio's early-exit.
fn explore_stoppable(
    vm: Vm,
    config: &ExploreConfig,
    mut observer: impl FnMut(&Vm),
    stop: Option<&AtomicBool>,
) -> (ExploreResult, bool) {
    let _span = jcc_obs::span!("vm.explore");
    // Live progress is publish-only (a mailbox watcher threads read);
    // portfolio probes share the cell, so the heartbeat tracks whichever
    // exploration reported most recently.
    if jcc_obs::progress_enabled() {
        jcc_obs::explore_progress().begin(config.max_states as u64);
    }
    let mut result = ExploreResult {
        states: 1,
        transitions: 0,
        completed_paths: 0,
        deadlock_paths: 0,
        deadlock_witness: None,
        fault_paths: 0,
        fault_witness: None,
        cycle_paths: 0,
        inescapable_cycles: 0,
        cycle_witness: None,
        depth_limited_paths: 0,
        truncated: false,
        ample_pruned: 0,
        full_expansions: 0,
    };
    let groups = if config.symmetry {
        vm.symmetry_groups()
    } else {
        Vec::new()
    };
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut on_path: FxHashSet<u64> = FxHashSet::default();
    let key0 = key_of(&vm, &groups);
    seen.insert(key0);
    on_path.insert(key0);
    let mut stopped = false;
    dfs(
        vm,
        0,
        config,
        &groups,
        &mut seen,
        &mut on_path,
        &mut result,
        &mut observer,
        stop,
        &mut stopped,
    );
    if jcc_obs::enabled() {
        flush_explore_stats(&result);
    }
    if jcc_obs::progress_enabled() {
        jcc_obs::explore_progress().finish(result.states as u64);
    }
    (result, stopped)
}

/// Publish one exploration's census into the global obs registry. Counters
/// accumulate across explorations (the mutation matrix runs hundreds), so
/// totals are sums over every `explore` call since the last registry reset.
/// All values come from the finished deterministic result — observation
/// never feeds back into the search.
fn flush_explore_stats(result: &ExploreResult) {
    let reg = jcc_obs::global();
    reg.counter("vm.explore.runs").inc();
    reg.counter("vm.explore.states").add(result.states as u64);
    reg.counter("vm.explore.transitions")
        .add(result.transitions as u64);
    reg.counter("vm.explore.completed_paths")
        .add(result.completed_paths as u64);
    reg.counter("vm.explore.deadlock_paths")
        .add(result.deadlock_paths as u64);
    reg.counter("vm.explore.fault_paths")
        .add(result.fault_paths as u64);
    reg.counter("vm.explore.cycle_paths")
        .add(result.cycle_paths as u64);
    reg.counter("vm.explore.inescapable_cycles")
        .add(result.inescapable_cycles as u64);
    reg.counter("vm.explore.depth_limited_paths")
        .add(result.depth_limited_paths as u64);
    if result.truncated {
        reg.counter("vm.explore.truncated").inc();
    }
    if result.ample_pruned > 0 {
        reg.counter("vm.explore.ample_pruned")
            .add(result.ample_pruned as u64);
    }
    if result.full_expansions > 0 {
        reg.counter("vm.explore.full_expansions")
            .add(result.full_expansions as u64);
    }
}

/// The dedup key of a state: the plain [`Vm::state_key`], or the
/// symmetry-quotiented key when thread-symmetry groups are in play.
fn key_of(vm: &Vm, groups: &[Vec<usize>]) -> u64 {
    if groups.is_empty() {
        vm.state_key()
    } else {
        vm.state_key_symmetric(groups)
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    vm: Vm,
    depth: usize,
    config: &ExploreConfig,
    groups: &[Vec<usize>],
    seen: &mut FxHashSet<u64>,
    on_path: &mut FxHashSet<u64>,
    result: &mut ExploreResult,
    observer: &mut impl FnMut(&Vm),
    stop: Option<&AtomicBool>,
    stopped: &mut bool,
) {
    if let Some(stop) = stop {
        if *stopped || stop.load(Ordering::Relaxed) {
            *stopped = true;
            result.truncated = true;
            return;
        }
    }
    if let Some(verdict) = vm.current_verdict() {
        observer(&vm);
        match &verdict {
            Verdict::Completed => result.completed_paths += 1,
            Verdict::Faulted { .. } => {
                result.fault_paths += 1;
                if result.fault_witness.is_none() {
                    result.fault_witness = Some(vm.into_outcome(verdict));
                }
            }
            Verdict::Deadlock { .. } => {
                result.deadlock_paths += 1;
                if result.deadlock_witness.is_none() {
                    result.deadlock_witness = Some(vm.into_outcome(verdict));
                }
            }
            Verdict::StepLimit => unreachable!("explorer does not use step budgets"),
        }
        return;
    }
    if depth >= config.max_depth {
        result.depth_limited_paths += 1;
        result.truncated = true;
        return;
    }
    let runnable = vm.runnable();
    if config.ample && runnable.len() > 1 {
        // Ample-set reduction: when some runnable thread's next step is
        // thread-local, that step commutes with every other thread's
        // steps, so expanding it *alone* reaches the same failure classes
        // as the full expansion — unless the step closes a cycle on the
        // current path, where postponing the other threads forever could
        // hide them behind a local loop (the cycle proviso).
        if let Some(&cand) = runnable.iter().find(|&&i| vm.is_local_step(i)) {
            let mut next = vm.clone();
            next.step(cand);
            let key = key_of(&next, groups);
            if on_path.contains(&key) {
                result.full_expansions += 1;
            } else {
                result.ample_pruned += runnable.len() - 1;
                visit(
                    next, key, depth, config, groups, seen, on_path, result, observer, stop,
                    stopped,
                );
                return;
            }
        }
    }
    for t in runnable {
        let mut next = vm.clone();
        next.step(t);
        let key = key_of(&next, groups);
        visit(
            next, key, depth, config, groups, seen, on_path, result, observer, stop, stopped,
        );
    }
}

/// Process one successor state of the DFS (shared by the full expansion
/// and the ample singleton): count the transition, classify cycle /
/// already-seen / fresh, and recurse on fresh states.
#[allow(clippy::too_many_arguments)]
fn visit(
    next: Vm,
    key: u64,
    depth: usize,
    config: &ExploreConfig,
    groups: &[Vec<usize>],
    seen: &mut FxHashSet<u64>,
    on_path: &mut FxHashSet<u64>,
    result: &mut ExploreResult,
    observer: &mut impl FnMut(&Vm),
    stop: Option<&AtomicBool>,
    stopped: &mut bool,
) {
    result.transitions += 1;
    if on_path.contains(&key) {
        // The path closed a loop on itself: it can repeat forever.
        result.cycle_paths += 1;
        let runnable = next.runnable();
        if runnable.len() == 1 {
            result.inescapable_cycles += 1;
        }
        observer(&next);
        if result.cycle_witness.is_none() {
            result.cycle_witness = Some(next.into_outcome(Verdict::StepLimit));
        }
        return;
    }
    if !seen.insert(key) {
        // Reached a state first visited on another path: its subtree is
        // observed from there; report this path's prefix only.
        observer(&next);
        return;
    }
    if result.states >= config.max_states {
        result.truncated = true;
        return;
    }
    result.states += 1;
    if result.states & 1023 == 0 && jcc_obs::progress_enabled() {
        // The DFS has no frontier width; publish the on-path set size
        // (current schedule prefix length) and the recursion depth.
        jcc_obs::explore_progress().publish(
            result.states as u64,
            on_path.len() as u64,
            depth as u64,
        );
    }
    on_path.insert(key);
    dfs(
        next,
        depth + 1,
        config,
        groups,
        seen,
        on_path,
        result,
        observer,
        stop,
        stopped,
    );
    on_path.remove(&key);
}

/// Which portfolio strategy produced the first failure witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoundBy {
    /// The exhaustive bounded-DFS worker.
    Exhaustive,
    /// A seeded-random probe; the seed reproduces the schedule.
    RandomProbe {
        /// Scheduler seed of the failing probe run.
        seed: u64,
    },
}

/// Configuration of the parallel exploration portfolio.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// Limits for the exhaustive worker; `explore.parallelism` sets the
    /// total worker count (1 = plain sequential [`explore`]).
    pub explore: ExploreConfig,
    /// Seeded-random probe schedules each probe worker attempts.
    pub probes_per_worker: usize,
    /// Base seed; probe `k` of worker `w` runs seed
    /// `probe_seed + w * probes_per_worker + k`, so the probe set is
    /// identical for every run and any worker count.
    pub probe_seed: u64,
    /// Step budget of one probe run.
    pub probe_max_steps: usize,
    /// Stop every worker as soon as any strategy finds a failure. The
    /// exhaustive result is then partial (`result: None`); leave this off
    /// when the full schedule census is required.
    pub early_exit: bool,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            explore: ExploreConfig::default(),
            probes_per_worker: 64,
            probe_seed: 0x5EED,
            probe_max_steps: 20_000,
            early_exit: false,
        }
    }
}

/// Result of a portfolio exploration.
#[derive(Debug)]
pub struct PortfolioResult {
    /// The exhaustive census. `None` only when `early_exit` abandoned the
    /// DFS after another strategy found a failure first.
    pub result: Option<ExploreResult>,
    /// A failing run, if any strategy found one.
    pub first_failure: Option<RunOutcome>,
    /// Which strategy produced `first_failure`.
    pub found_by: Option<FoundBy>,
    /// Seeded-random probe runs executed.
    pub probes_run: usize,
}

impl PortfolioResult {
    /// True when any strategy found a deadlock, fault or livelock.
    pub fn found_failure(&self) -> bool {
        self.first_failure.is_some()
            || self.result.as_ref().is_some_and(|r| r.found_failure())
    }
}

/// Extract a deterministic failure witness from an exhaustive result
/// (preference order: deadlock, fault, cycle — fixed so reruns agree).
fn exhaustive_witness(result: &ExploreResult) -> Option<&RunOutcome> {
    result.first_witness()
}

/// Parallel portfolio exploration: one worker runs the exhaustive bounded
/// DFS of [`explore`]; the remaining `threads - 1` workers race seeded
/// pseudo-random schedules as failure probes. With `early_exit` set, the
/// first failure found by *any* strategy stops the whole portfolio — the
/// fast path for "does any schedule fail?". Without it, the exhaustive
/// census always completes, so the portfolio's `result` is identical to a
/// sequential [`explore`] regardless of thread count; the probes only
/// contribute an (often earlier) failure witness.
pub fn explore_portfolio(vm: Vm, config: &PortfolioConfig) -> PortfolioResult {
    let _span = jcc_obs::span!("vm.portfolio");
    let threads = config.explore.parallelism.threads;
    if threads <= 1 {
        // Sequential path: the portfolio degenerates to plain exploration.
        let result = explore(vm, &config.explore, None);
        let first_failure = exhaustive_witness(&result).cloned();
        let found_by = first_failure.as_ref().map(|_| FoundBy::Exhaustive);
        return PortfolioResult {
            result: Some(result),
            first_failure,
            found_by,
            probes_run: 0,
        };
    }

    let stop = AtomicBool::new(false);
    let exhaustive_slot: Mutex<Option<(ExploreResult, bool)>> = Mutex::new(None);
    // (seed, outcome) of each probe failure; min-seed wins deterministically.
    let probe_failures: Mutex<Vec<(u64, RunOutcome)>> = Mutex::new(Vec::new());
    let probes_run = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        let exhaustive_vm = vm.clone();
        let stop_ref = &stop;
        let slot_ref = &exhaustive_slot;
        let explore_config = &config.explore;
        let early_exit = config.early_exit;
        scope.spawn(move || {
            let stop = early_exit.then_some(stop_ref);
            let outcome = explore_stoppable(exhaustive_vm, explore_config, |_| {}, stop);
            if early_exit && outcome.0.found_failure() {
                stop_ref.store(true, Ordering::Relaxed);
            }
            *slot_ref.lock().expect("slot lock") = Some(outcome);
        });

        for w in 0..threads - 1 {
            let probe_vm = &vm;
            let stop_ref = &stop;
            let failures_ref = &probe_failures;
            let probes_ref = &probes_run;
            let config = &*config;
            scope.spawn(move || {
                for k in 0..config.probes_per_worker {
                    if config.early_exit && stop_ref.load(Ordering::Relaxed) {
                        return;
                    }
                    let seed = config
                        .probe_seed
                        .wrapping_add((w * config.probes_per_worker + k) as u64);
                    let mut run = probe_vm.clone();
                    let started = jcc_obs::enabled().then(std::time::Instant::now);
                    let outcome = run.run(&RunConfig {
                        scheduler: Scheduler::Random(seed),
                        max_steps: config.probe_max_steps,
                    });
                    if let Some(t0) = started {
                        jcc_obs::global()
                            .histogram("vm.portfolio.probe_nanos")
                            .record(t0.elapsed().as_nanos() as u64);
                    }
                    probes_ref.fetch_add(1, Ordering::Relaxed);
                    if outcome.verdict.is_failure() {
                        jcc_obs::event!("vm.portfolio.probe_failure";
                            "seed" => seed, "worker" => w);
                        failures_ref
                            .lock()
                            .expect("failure lock")
                            .push((seed, outcome));
                        if config.early_exit {
                            stop_ref.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });

    let (exhaustive, aborted) = exhaustive_slot
        .into_inner()
        .expect("slot lock")
        .expect("exhaustive worker always reports");
    let mut failures = probe_failures.into_inner().expect("failure lock");
    failures.sort_by_key(|(seed, _)| *seed);
    if jcc_obs::enabled() {
        let reg = jcc_obs::global();
        reg.counter("vm.portfolio.probes")
            .add(probes_run.load(Ordering::Relaxed) as u64);
        reg.counter("vm.portfolio.probe_failures")
            .add(failures.len() as u64);
    }

    // Witness preference: the exhaustive census when it completed (its
    // witness is deterministic), otherwise the lowest-seed probe failure.
    let (first_failure, found_by) = match exhaustive_witness(&exhaustive) {
        Some(w) if !aborted => (Some(w.clone()), Some(FoundBy::Exhaustive)),
        _ => match failures.into_iter().next() {
            Some((seed, outcome)) => (Some(outcome), Some(FoundBy::RandomProbe { seed })),
            None if !aborted => (
                exhaustive_witness(&exhaustive).cloned(),
                exhaustive_witness(&exhaustive).map(|_| FoundBy::Exhaustive),
            ),
            None => (None, None),
        },
    };

    PortfolioResult {
        result: (!aborted).then_some(exhaustive),
        first_failure,
        found_by,
        probes_run: probes_run.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::machine::{CallSpec, ThreadSpec};
    use crate::value::Value;
    use jcc_cofg::build_component_cofgs;
    use jcc_model::examples;

    fn pc_threads() -> Vec<ThreadSpec> {
        vec![
            ThreadSpec {
                name: "c".into(),
                calls: vec![CallSpec::new("receive", vec![])],
            },
            ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
            },
        ]
    }

    #[test]
    fn producer_consumer_never_fails() {
        let c = examples::producer_consumer();
        let vm = Vm::new(compile(&c).unwrap(), pc_threads());
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(!r.found_failure(), "{r:?}");
        assert!(r.completed_paths > 0);
        assert!(!r.truncated);
        assert!(r.states > 10);
    }

    #[test]
    fn lock_order_deadlock_found_by_exploration() {
        let c = examples::lock_order_deadlock();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "f".into(),
                    calls: vec![CallSpec::new("forward", vec![])],
                },
                ThreadSpec {
                    name: "b".into(),
                    calls: vec![CallSpec::new("backward", vec![])],
                },
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.deadlock_paths > 0);
        assert!(r.completed_paths > 0, "some schedules do complete");
        let witness = r.deadlock_witness.as_ref().unwrap();
        assert!(matches!(witness.verdict, Verdict::Deadlock { .. }));
    }

    #[test]
    fn skip_wait_mutant_spins_inescapably() {
        // The FF-T3 mutant turns receive's wait into `skip`: the consumer
        // busy-waits while *holding the monitor*, so the producer can never
        // enter — an inescapable cycle (the runtime picture of FF-T4 for
        // every other thread: FF-T2).
        let c = examples::producer_consumer();
        let m = jcc_model::mutate::enumerate_mutations(&c)
            .into_iter()
            .find(|m| {
                m.kind == jcc_model::mutate::MutationKind::SkipWait && m.method == "receive"
            })
            .unwrap();
        let mutant = jcc_model::mutate::apply_mutation(&c, &m).unwrap();
        let vm = Vm::new(compile(&mutant).unwrap(), pc_threads());
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.cycle_paths > 0, "{r:?}");
        assert!(r.inescapable_cycles > 0, "{r:?}");
        assert!(r.found_failure());
    }

    #[test]
    fn drop_notify_mutant_deadlocks_somewhere() {
        let c = examples::producer_consumer();
        let m = jcc_model::mutate::enumerate_mutations(&c)
            .into_iter()
            .find(|m| {
                m.kind == jcc_model::mutate::MutationKind::DropNotify && m.method == "send"
            })
            .unwrap();
        let mutant = jcc_model::mutate::apply_mutation(&c, &m).unwrap();
        let vm = Vm::new(compile(&mutant).unwrap(), pc_threads());
        let r = explore(vm, &ExploreConfig::default(), None);
        // Consumer-first schedules: consumer waits, send never notifies.
        assert!(r.deadlock_paths > 0, "{r:?}");
    }

    #[test]
    fn coverage_union_over_all_schedules() {
        let c = examples::producer_consumer();
        let vm = Vm::new(compile(&c).unwrap(), pc_threads());
        let mut tracker = CoverageTracker::new(build_component_cofgs(&c));
        let _ = explore(vm, &ExploreConfig::default(), Some(&mut tracker));
        // With one receive and one send of "a": receive can cover
        // start->wait, start->notifyAll, wait->notifyAll, notifyAll->end;
        // send can cover start->notifyAll, notifyAll->end. wait->wait needs
        // a second wakeup and send's wait arcs need a pre-filled buffer:
        // exactly 6 coverable arcs.
        assert_eq!(
            tracker.covered_arcs(),
            6,
            "uncovered: {:?}",
            tracker.uncovered()
        );
    }

    #[test]
    fn state_limit_truncates() {
        let c = examples::producer_consumer();
        let vm = Vm::new(compile(&c).unwrap(), pc_threads());
        let r = explore(
            vm,
            &ExploreConfig {
                max_states: 5,
                max_depth: 2_000,
                ..ExploreConfig::default()
            },
            None,
        );
        assert!(r.truncated);
        assert!(r.states <= 5);
    }

    #[test]
    fn depth_limit_counts_paths() {
        let c = examples::producer_consumer();
        let vm = Vm::new(compile(&c).unwrap(), pc_threads());
        let r = explore(
            vm,
            &ExploreConfig {
                max_states: 200_000,
                max_depth: 3,
                ..ExploreConfig::default()
            },
            None,
        );
        assert!(r.truncated);
        assert!(r.depth_limited_paths > 0);
    }

    /// The failure-class existence booleans a sound reduction must
    /// preserve (counts are allowed to differ).
    fn classes(r: &ExploreResult) -> (bool, bool, bool, bool, bool) {
        (
            r.completed_paths > 0,
            r.deadlock_paths > 0,
            r.fault_paths > 0,
            r.cycle_paths > 0,
            r.inescapable_cycles > 0,
        )
    }

    #[test]
    fn symmetry_quotient_preserves_classes_and_shrinks_states() {
        // Two *identical* consumers (same name, same calls) are
        // interchangeable; the producer sends twice so both receives can
        // complete.
        let c = examples::producer_consumer();
        let make_vm = |symmetric: bool| {
            Vm::new(
                compile(&c).unwrap(),
                vec![
                    ThreadSpec {
                        name: "c".into(),
                        calls: vec![CallSpec::new("receive", vec![])],
                    },
                    ThreadSpec {
                        name: if symmetric { "c" } else { "c2" }.into(),
                        calls: vec![CallSpec::new("receive", vec![])],
                    },
                    ThreadSpec {
                        name: "p".into(),
                        calls: vec![
                            CallSpec::new("send", vec![Value::Str("a".into())]),
                            CallSpec::new("send", vec![Value::Str("a".into())]),
                        ],
                    },
                ],
            )
        };
        let full = explore(make_vm(true), &ExploreConfig::default(), None);
        let reduced = explore(
            make_vm(true),
            &ExploreConfig {
                symmetry: true,
                ..ExploreConfig::default()
            },
            None,
        );
        assert!(!full.truncated && !reduced.truncated);
        assert_eq!(classes(&full), classes(&reduced));
        assert!(
            reduced.states < full.states,
            "quotient must shrink: {} vs {}",
            reduced.states,
            full.states
        );
        // Distinct names ⇒ no symmetry group ⇒ the knob is a no-op.
        let asym = explore(
            make_vm(false),
            &ExploreConfig {
                symmetry: true,
                ..ExploreConfig::default()
            },
            None,
        );
        assert_eq!(asym.tally(), full.tally());
    }

    #[test]
    fn ample_reduction_preserves_deadlock_and_completion() {
        let c = examples::lock_order_deadlock();
        let make_vm = || {
            Vm::new(
                compile(&c).unwrap(),
                vec![
                    ThreadSpec {
                        name: "f".into(),
                        calls: vec![CallSpec::new("forward", vec![])],
                    },
                    ThreadSpec {
                        name: "b".into(),
                        calls: vec![CallSpec::new("backward", vec![])],
                    },
                ],
            )
        };
        let full = explore(make_vm(), &ExploreConfig::default(), None);
        let reduced = explore(
            make_vm(),
            &ExploreConfig {
                ample: true,
                ..ExploreConfig::default()
            },
            None,
        );
        assert_eq!(classes(&full), classes(&reduced));
        assert!(reduced.deadlock_paths > 0);
        assert!(reduced.ample_pruned > 0, "{reduced:?}");
        assert!(reduced.states <= full.states);
    }

    #[test]
    fn ample_cycle_proviso_keeps_livelocks_detectable() {
        // SkipWait turns receive's wait into a busy loop holding the
        // monitor: without the cycle proviso, the looping thread's local
        // jumps could be the ample pick forever and the cycle verdicts
        // could be distorted. Class booleans must match the full search.
        let c = examples::producer_consumer();
        let m = jcc_model::mutate::enumerate_mutations(&c)
            .into_iter()
            .find(|m| {
                m.kind == jcc_model::mutate::MutationKind::SkipWait && m.method == "receive"
            })
            .unwrap();
        let mutant = jcc_model::mutate::apply_mutation(&c, &m).unwrap();
        let full = explore(
            Vm::new(compile(&mutant).unwrap(), pc_threads()),
            &ExploreConfig::default(),
            None,
        );
        let reduced = explore(
            Vm::new(compile(&mutant).unwrap(), pc_threads()),
            &ExploreConfig {
                ample: true,
                symmetry: true,
                ..ExploreConfig::default()
            },
            None,
        );
        assert_eq!(classes(&full), classes(&reduced));
        assert!(reduced.cycle_paths > 0 && reduced.inescapable_cycles > 0);
    }

    fn portfolio_config(threads: usize, early_exit: bool) -> PortfolioConfig {
        PortfolioConfig {
            explore: ExploreConfig {
                parallelism: Parallelism::with_threads(threads),
                ..ExploreConfig::default()
            },
            probes_per_worker: 8,
            early_exit,
            ..PortfolioConfig::default()
        }
    }

    #[test]
    fn portfolio_census_matches_sequential_explore() {
        let c = examples::producer_consumer();
        let make_vm = || Vm::new(compile(&c).unwrap(), pc_threads());
        let seq = explore(make_vm(), &ExploreConfig::default(), None);
        for threads in [1, 2, 4] {
            let p = explore_portfolio(make_vm(), &portfolio_config(threads, false));
            assert!(!p.found_failure());
            let census = p.result.expect("census completes without early_exit");
            assert_eq!(census.tally(), seq.tally(), "threads={threads}");
        }
    }

    #[test]
    fn portfolio_finds_deadlock_with_early_exit() {
        let c = examples::lock_order_deadlock();
        let threads = vec![
            ThreadSpec {
                name: "f".into(),
                calls: vec![CallSpec::new("forward", vec![])],
            },
            ThreadSpec {
                name: "b".into(),
                calls: vec![CallSpec::new("backward", vec![])],
            },
        ];
        for workers in [1, 2, 4] {
            let vm = Vm::new(compile(&c).unwrap(), threads.clone());
            let p = explore_portfolio(vm, &portfolio_config(workers, true));
            assert!(p.found_failure(), "workers={workers}: {p:?}");
            let witness = p.first_failure.as_ref().unwrap();
            assert!(witness.verdict.is_failure(), "workers={workers}");
            assert!(p.found_by.is_some());
        }
    }

    #[test]
    fn portfolio_witness_is_deterministic_without_early_exit() {
        // With early_exit off the exhaustive census always completes, so the
        // witness comes from the same deterministic DFS on every run.
        let c = examples::lock_order_deadlock();
        let make_vm = || {
            Vm::new(
                compile(&c).unwrap(),
                vec![
                    ThreadSpec {
                        name: "f".into(),
                        calls: vec![CallSpec::new("forward", vec![])],
                    },
                    ThreadSpec {
                        name: "b".into(),
                        calls: vec![CallSpec::new("backward", vec![])],
                    },
                ],
            )
        };
        let baseline = explore_portfolio(make_vm(), &portfolio_config(3, false));
        let baseline_trace = &baseline.first_failure.as_ref().unwrap().trace;
        for _ in 0..3 {
            let p = explore_portfolio(make_vm(), &portfolio_config(3, false));
            assert_eq!(p.found_by, Some(FoundBy::Exhaustive));
            assert_eq!(
                &p.first_failure.as_ref().unwrap().trace,
                baseline_trace,
                "witness must not depend on probe timing"
            );
        }
    }
}
