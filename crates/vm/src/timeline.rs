//! Building causal schedule timelines from VM run traces.
//!
//! [`timeline_of_outcome`] replays a [`RunOutcome`]'s step-stamped event
//! trace through an [`jcc_obs::timeline::TimelineBuilder`]: one lane per
//! logical thread, intervals keyed by the Figure-1 transitions each event
//! fires (T1 → requesting-lock, T2 → critical-section, T3 → waiting,
//! T5 → re-acquiring), causality edges for notify→wake and
//! release→acquire, and — when the component's CoFGs are supplied — each
//! interval stamped with the CoFG arc the thread traversed during it.
//!
//! The timeline is a pure post-hoc function of the recorded trace (the
//! clock is the VM's logical step counter, never wall time), so it
//! inherits the determinism of the trace: the exhaustive explorer's
//! witness for a component is byte-identical at any parallelism, and so is
//! its rendered timeline. Building a timeline can never change an
//! exploration result — it only reads what the run already recorded.

use jcc_cofg::{Cofg, NodeId};
use jcc_model::ast::StmtPath;
use jcc_obs::timeline::{Timeline, TimelineBuilder};
use jcc_petri::Transition;

use crate::machine::RunOutcome;
use crate::trace::TraceEventKind;

/// Label the CoFG arc `from -> to` of `cofg`, or `None` when no such arc
/// exists (the traversal would be a coverage stray).
fn arc_label(cofg: &Cofg, from: NodeId, to: NodeId) -> Option<String> {
    cofg.arc_between(from, to)?;
    Some(format!(
        "{}: {} -> {}",
        cofg.method,
        cofg.label(from),
        cofg.label(to)
    ))
}

/// Build the causal timeline of one explored schedule. Pass the
/// component's CoFGs to stamp intervals and notify edges with the arcs
/// they traverse; pass `None` to skip arc attribution.
pub fn timeline_of_outcome(outcome: &RunOutcome, cofgs: Option<&[Cofg]>) -> Timeline {
    let mut b = TimelineBuilder::new("steps");
    for name in &outcome.thread_names {
        b.lane(name);
    }
    let lock_name = |lock: usize| -> &str {
        outcome
            .lock_names
            .get(lock)
            .map(String::as_str)
            .unwrap_or("?")
    };
    let cofg_of = |method: &str| -> Option<&Cofg> {
        cofgs?.iter().find(|g| g.method == method)
    };
    // Per-thread arc walk, mirroring CoverageTracker: the last CoFG node
    // of the active invocation.
    let mut walk: Vec<Option<(String, NodeId)>> = vec![None; outcome.thread_names.len()];

    for e in &outcome.trace {
        let at = e.step as u64;
        let i = e.thread;
        match &e.kind {
            TraceEventKind::MethodStart { method } => {
                b.begins(i, at);
                if let Some(g) = cofg_of(method) {
                    walk[i] = Some((method.clone(), g.start()));
                }
            }
            TraceEventKind::MethodEnd { method } => {
                if let Some((m, prev)) = walk[i].take() {
                    if &m == method {
                        if let Some(label) =
                            cofg_of(method).and_then(|g| arc_label(g, prev, g.end()))
                        {
                            b.stamp_arc(i, &label);
                        }
                    }
                }
                b.idles(i, at);
            }
            TraceEventKind::Site { method, path, exit } => {
                if let Some(g) = cofg_of(method) {
                    let path = StmtPath(path.clone());
                    let node = if *exit {
                        g.sync_exit_by_path(&path)
                    } else {
                        g.node_by_path(&path)
                    };
                    if let Some(node) = node {
                        if let Some((m, prev)) = walk[i].clone() {
                            if &m == method {
                                if let Some(label) = arc_label(g, prev, node) {
                                    b.stamp_arc(i, &label);
                                }
                            }
                        }
                        walk[i] = Some((method.clone(), node));
                    }
                }
            }
            TraceEventKind::Transition { t, lock } => {
                let l = lock_name(*lock);
                match t {
                    Transition::T1 => b.requests(i, at, l),
                    Transition::T2 => b.acquires(i, at, l),
                    Transition::T3 => b.waits(i, at, l),
                    Transition::T4 => b.releases(i, at, l),
                    Transition::T5 => b.woken(i, at, l),
                }
            }
            TraceEventKind::NotifyIssued { lock, all, waiters } => {
                b.notify(i, at, lock_name(*lock), *all, *waiters);
            }
            TraceEventKind::FieldRead { .. } | TraceEventKind::FieldWrite { .. } => {}
            TraceEventKind::Fault { message } => b.faults(i, at, message),
        }
    }
    b.finish(outcome.steps as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::machine::{CallSpec, RunConfig, ThreadSpec, Vm};
    use crate::value::Value;
    use jcc_cofg::build_component_cofgs;
    use jcc_model::examples;
    use jcc_obs::timeline::{EdgeKind, IntervalKind};

    fn pc_outcome() -> (RunOutcome, Vec<Cofg>) {
        let c = examples::producer_consumer();
        let cofgs = build_component_cofgs(&c);
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "consumer".into(),
                    calls: vec![CallSpec::new("receive", vec![])],
                },
                ThreadSpec {
                    name: "producer".into(),
                    calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
                },
            ],
        );
        (vm.run(&RunConfig::default()), cofgs)
    }

    #[test]
    fn round_robin_pc_schedule_has_wait_wake_and_handoff() {
        let (out, cofgs) = pc_outcome();
        let t = timeline_of_outcome(&out, Some(&cofgs));
        assert_eq!(t.lanes.len(), 2);
        assert_eq!(t.lanes[0].name, "consumer");
        // Round-robin: the consumer waits first, the producer's notifyAll
        // wakes it — a T5 edge must exist.
        let wake = t
            .edges
            .iter()
            .find(|e| e.kind == EdgeKind::NotifyWake)
            .expect("wake edge");
        assert_eq!(wake.to_lane, 0, "consumer is woken");
        assert_eq!(wake.transition, 5);
        let consumer_kinds: Vec<IntervalKind> =
            t.lanes[0].intervals.iter().map(|iv| iv.kind).collect();
        assert!(consumer_kinds.contains(&IntervalKind::Waiting), "{t:?}");
        assert!(consumer_kinds.contains(&IntervalKind::InCriticalSection));
        // Lanes are gap-free to the horizon.
        for lane in &t.lanes {
            assert_eq!(lane.intervals.last().unwrap().end, t.horizon);
        }
    }

    #[test]
    fn intervals_carry_cofg_arcs_when_supplied() {
        let (out, cofgs) = pc_outcome();
        let with = timeline_of_outcome(&out, Some(&cofgs));
        let stamped = with
            .lanes
            .iter()
            .flat_map(|l| &l.intervals)
            .filter(|iv| iv.arc.is_some())
            .count();
        assert!(stamped > 0, "{with:?}");
        let arc_text: Vec<&str> = with
            .lanes
            .iter()
            .flat_map(|l| &l.intervals)
            .filter_map(|iv| iv.arc.as_deref())
            .collect();
        assert!(
            arc_text.iter().any(|a| a.contains("receive:")),
            "{arc_text:?}"
        );
        let without = timeline_of_outcome(&out, None);
        assert!(without
            .lanes
            .iter()
            .flat_map(|l| &l.intervals)
            .all(|iv| iv.arc.is_none()));
    }

    #[test]
    fn timeline_is_deterministic_for_a_fixed_outcome() {
        let (out, cofgs) = pc_outcome();
        let a = timeline_of_outcome(&out, Some(&cofgs));
        let b = timeline_of_outcome(&out, Some(&cofgs));
        assert_eq!(a.render_ascii(), b.render_ascii());
        assert_eq!(a.to_chrome_string(), b.to_chrome_string());
    }

    #[test]
    fn lost_notification_is_annotated() {
        // Producer runs alone: its notifyAll finds an empty wait set.
        let c = examples::producer_consumer();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![ThreadSpec {
                name: "producer".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
            }],
        );
        let out = vm.run(&RunConfig::default());
        let t = timeline_of_outcome(&out, None);
        assert_eq!(t.notes.len(), 1, "{t:?}");
        assert!(t.notes[0].text.contains("no thread in place D"));
        assert!(t.render_ascii().contains("lost notification"));
    }
}
