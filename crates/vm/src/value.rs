//! Runtime values and expression evaluation.

use std::collections::BTreeMap;
use std::fmt;

use jcc_model::ast::{BinOp, Builtin, Expr, Type, UnOp};

/// A runtime value of the Monitor IR.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Immutable string.
    Str(String),
}

impl Value {
    /// The IR type of this value.
    pub fn ty(&self) -> Type {
        match self {
            Value::Int(_) => Type::Int,
            Value::Bool(_) => Type::Bool,
            Value::Str(_) => Type::Str,
        }
    }

    /// The default value of a type (used by fault-injected early returns).
    pub fn default_of(ty: Type) -> Value {
        match ty {
            Type::Int => Value::Int(0),
            Type::Bool => Value::Bool(false),
            Type::Str => Value::Str(String::new()),
        }
    }

    /// Extract an integer, or a runtime error.
    pub fn as_int(&self) -> Result<i64, EvalError> {
        match self {
            Value::Int(n) => Ok(*n),
            other => Err(EvalError::new(format!("expected int, got {other}"))),
        }
    }

    /// Extract a boolean, or a runtime error.
    pub fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EvalError::new(format!("expected bool, got {other}"))),
        }
    }

    /// Extract a string slice, or a runtime error.
    pub fn as_str(&self) -> Result<&str, EvalError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(EvalError::new(format!("expected str, got {other}"))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// A runtime evaluation error (division by zero, index out of bounds, …) —
/// the VM marks the executing thread as faulted, mirroring a Java runtime
/// exception propagating out of the component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable description.
    pub message: String,
}

impl EvalError {
    /// Construct an error.
    pub fn new(message: impl Into<String>) -> Self {
        EvalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EvalError {}

/// The variable environment an expression is evaluated in.
#[derive(Debug)]
pub struct Env<'a> {
    /// Component fields (shared state).
    pub fields: &'a BTreeMap<String, Value>,
    /// Locals and parameters of the executing frame.
    pub locals: &'a BTreeMap<String, Value>,
}

/// Evaluate `expr` in `env`.
pub fn eval(expr: &Expr, env: &Env<'_>) -> Result<Value, EvalError> {
    match expr {
        Expr::Int(n) => Ok(Value::Int(*n)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::Var(name) => env
            .locals
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::new(format!("undefined local `{name}`"))),
        Expr::Field(name) => env
            .fields
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::new(format!("undefined field `{name}`"))),
        Expr::Unary(op, e) => {
            let v = eval(e, env)?;
            match op {
                UnOp::Neg => Ok(Value::Int(
                    v.as_int()?
                        .checked_neg()
                        .ok_or_else(|| EvalError::new("integer overflow in negation"))?,
                )),
                UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
            }
        }
        Expr::Binary(op, a, b) => eval_binary(*op, a, b, env),
        Expr::Call(builtin, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, env)?);
            }
            eval_builtin(*builtin, &vals)
        }
    }
}

fn eval_binary(op: BinOp, a: &Expr, b: &Expr, env: &Env<'_>) -> Result<Value, EvalError> {
    // Short-circuit operators first.
    match op {
        BinOp::And => {
            return Ok(Value::Bool(
                eval(a, env)?.as_bool()? && eval(b, env)?.as_bool()?,
            ))
        }
        BinOp::Or => {
            return Ok(Value::Bool(
                eval(a, env)?.as_bool()? || eval(b, env)?.as_bool()?,
            ))
        }
        _ => {}
    }
    let va = eval(a, env)?;
    let vb = eval(b, env)?;
    let int_op = |f: fn(i64, i64) -> Option<i64>| -> Result<Value, EvalError> {
        let x = va.as_int()?;
        let y = vb.as_int()?;
        f(x, y)
            .map(Value::Int)
            .ok_or_else(|| EvalError::new(format!("arithmetic fault in {x} {} {y}", op.symbol())))
    };
    let cmp_op = |f: fn(&i64, &i64) -> bool| -> Result<Value, EvalError> {
        Ok(Value::Bool(f(&va.as_int()?, &vb.as_int()?)))
    };
    match op {
        BinOp::Add => int_op(i64::checked_add),
        BinOp::Sub => int_op(i64::checked_sub),
        BinOp::Mul => int_op(i64::checked_mul),
        BinOp::Div => int_op(|x, y| if y == 0 { None } else { x.checked_div(y) }),
        BinOp::Mod => int_op(|x, y| if y == 0 { None } else { x.checked_rem(y) }),
        BinOp::Lt => cmp_op(|x, y| x < y),
        BinOp::Le => cmp_op(|x, y| x <= y),
        BinOp::Gt => cmp_op(|x, y| x > y),
        BinOp::Ge => cmp_op(|x, y| x >= y),
        BinOp::Eq => {
            if va.ty() != vb.ty() {
                return Err(EvalError::new("== on mismatched types"));
            }
            Ok(Value::Bool(va == vb))
        }
        BinOp::Ne => {
            if va.ty() != vb.ty() {
                return Err(EvalError::new("!= on mismatched types"));
            }
            Ok(Value::Bool(va != vb))
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn eval_builtin(builtin: Builtin, args: &[Value]) -> Result<Value, EvalError> {
    match builtin {
        Builtin::Len => Ok(Value::Int(args[0].as_str()?.chars().count() as i64)),
        Builtin::CharAt => {
            let s = args[0].as_str()?;
            let i = args[1].as_int()?;
            let ch = usize::try_from(i)
                .ok()
                .and_then(|i| s.chars().nth(i))
                .ok_or_else(|| {
                    EvalError::new(format!("string index {i} out of bounds for {s:?}"))
                })?;
            Ok(Value::Str(ch.to_string()))
        }
        Builtin::Concat => {
            let mut s = args[0].as_str()?.to_string();
            s.push_str(args[1].as_str()?);
            Ok(Value::Str(s))
        }
        Builtin::ToStr => Ok(Value::Str(args[0].as_int()?.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_model::ast::Builtin;

    fn env_empty() -> (BTreeMap<String, Value>, BTreeMap<String, Value>) {
        (BTreeMap::new(), BTreeMap::new())
    }

    fn ev(expr: &Expr) -> Result<Value, EvalError> {
        let (f, l) = env_empty();
        eval(expr, &Env { fields: &f, locals: &l })
    }

    #[test]
    fn literals() {
        assert_eq!(ev(&Expr::Int(3)).unwrap(), Value::Int(3));
        assert_eq!(ev(&Expr::Bool(true)).unwrap(), Value::Bool(true));
        assert_eq!(
            ev(&Expr::Str("x".into())).unwrap(),
            Value::Str("x".into())
        );
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Int(2)),
            Box::new(Expr::Binary(BinOp::Mul, Box::new(Expr::Int(3)), Box::new(Expr::Int(4)))),
        );
        assert_eq!(ev(&e).unwrap(), Value::Int(14));
        let lt = Expr::Binary(BinOp::Lt, Box::new(Expr::Int(1)), Box::new(Expr::Int(2)));
        assert_eq!(ev(&lt).unwrap(), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_faults() {
        let e = Expr::Binary(BinOp::Div, Box::new(Expr::Int(1)), Box::new(Expr::Int(0)));
        assert!(ev(&e).is_err());
        let e = Expr::Binary(BinOp::Mod, Box::new(Expr::Int(1)), Box::new(Expr::Int(0)));
        assert!(ev(&e).is_err());
    }

    #[test]
    fn overflow_faults() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Int(i64::MAX)),
            Box::new(Expr::Int(1)),
        );
        assert!(ev(&e).is_err());
    }

    #[test]
    fn short_circuit_and() {
        // false && (1/0 == 0) must not fault.
        let e = Expr::Binary(
            BinOp::And,
            Box::new(Expr::Bool(false)),
            Box::new(Expr::Binary(
                BinOp::Eq,
                Box::new(Expr::Binary(
                    BinOp::Div,
                    Box::new(Expr::Int(1)),
                    Box::new(Expr::Int(0)),
                )),
                Box::new(Expr::Int(0)),
            )),
        );
        assert_eq!(ev(&e).unwrap(), Value::Bool(false));
    }

    #[test]
    fn fields_and_locals_resolve() {
        let mut fields = BTreeMap::new();
        fields.insert("f".to_string(), Value::Int(10));
        let mut locals = BTreeMap::new();
        locals.insert("x".to_string(), Value::Int(32));
        let env = Env {
            fields: &fields,
            locals: &locals,
        };
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Field("f".into())),
            Box::new(Expr::Var("x".into())),
        );
        assert_eq!(eval(&e, &env).unwrap(), Value::Int(42));
        assert!(eval(&Expr::Var("ghost".into()), &env).is_err());
        assert!(eval(&Expr::Field("ghost".into()), &env).is_err());
    }

    #[test]
    fn builtins() {
        let len = Expr::Call(Builtin::Len, vec![Expr::Str("abc".into())]);
        assert_eq!(ev(&len).unwrap(), Value::Int(3));
        let at = Expr::Call(
            Builtin::CharAt,
            vec![Expr::Str("abc".into()), Expr::Int(1)],
        );
        assert_eq!(ev(&at).unwrap(), Value::Str("b".into()));
        let oob = Expr::Call(
            Builtin::CharAt,
            vec![Expr::Str("abc".into()), Expr::Int(5)],
        );
        assert!(ev(&oob).is_err());
        let neg = Expr::Call(
            Builtin::CharAt,
            vec![Expr::Str("abc".into()), Expr::Int(-1)],
        );
        assert!(ev(&neg).is_err());
        let cc = Expr::Call(
            Builtin::Concat,
            vec![Expr::Str("ab".into()), Expr::Str("cd".into())],
        );
        assert_eq!(ev(&cc).unwrap(), Value::Str("abcd".into()));
        let ts = Expr::Call(Builtin::ToStr, vec![Expr::Int(-7)]);
        assert_eq!(ev(&ts).unwrap(), Value::Str("-7".into()));
    }

    #[test]
    fn value_helpers() {
        assert_eq!(Value::default_of(Type::Int), Value::Int(0));
        assert_eq!(Value::default_of(Type::Bool), Value::Bool(false));
        assert_eq!(Value::default_of(Type::Str), Value::Str(String::new()));
        assert_eq!(Value::Int(1).ty(), Type::Int);
        assert!(Value::Bool(true).as_int().is_err());
        assert!(Value::Int(1).as_bool().is_err());
        assert!(Value::Int(1).as_str().is_err());
        assert_eq!(Value::Str("q".into()).to_string(), "\"q\"");
    }

    #[test]
    fn eq_requires_same_type() {
        let e = Expr::Binary(
            BinOp::Eq,
            Box::new(Expr::Int(1)),
            Box::new(Expr::Bool(true)),
        );
        assert!(ev(&e).is_err());
    }
}
