//! Compilation of Monitor IR methods to a flat instruction list.
//!
//! The VM needs resumable execution (a thread suspends mid-method at `wait`
//! and at lock acquisition), so each method is compiled to straight-line
//! instructions with explicit jumps; a thread's whole continuation is then
//! just a program counter.

use std::collections::HashMap;

use jcc_model::ast::{Block, Component, Expr, LValue, LockRef, Method, Stmt, Type};

use crate::value::Value;

/// Index of a lock within a compiled component. Lock 0 is always `this`.
pub type LockIdx = usize;

/// One VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Acquire `lock` (blocking). Fires T1/T2. `path` is `Some` for explicit
    /// `synchronized` blocks (coverage site), `None` for the implicit
    /// acquisition of a synchronized method.
    EnterSync {
        /// Which lock.
        lock: LockIdx,
        /// Site path for explicit blocks.
        path: Option<Vec<usize>>,
    },
    /// Release `lock`. Fires T4 on final release.
    ExitSync {
        /// Which lock.
        lock: LockIdx,
        /// Site path for explicit blocks.
        path: Option<Vec<usize>>,
    },
    /// Java `wait` on `lock`: fires T3, suspends; wake-up fires T5 then T2.
    Wait {
        /// Which lock.
        lock: LockIdx,
        /// Site path (always present; `wait` is a statement).
        path: Vec<usize>,
    },
    /// Java `notify`/`notifyAll` on `lock`.
    Notify {
        /// Which lock.
        lock: LockIdx,
        /// Wake all waiters?
        all: bool,
        /// Site path.
        path: Vec<usize>,
    },
    /// Assign the value of an expression to a field.
    StoreField {
        /// Field name.
        name: String,
        /// Right-hand side.
        value: Expr,
    },
    /// Assign the value of an expression to a local.
    StoreLocal {
        /// Local name.
        name: String,
        /// Right-hand side.
        value: Expr,
    },
    /// Evaluate `cond`; jump to `target` when it is false.
    JumpIfFalse {
        /// The condition.
        cond: Expr,
        /// Instruction index to jump to.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Instruction index to jump to.
        target: usize,
    },
    /// Evaluate the return value (before any lock releases) into the
    /// thread's return register.
    EvalRet {
        /// The value expression, if the method returns one.
        value: Option<Expr>,
    },
    /// Finish the method call. The return register holds the result.
    Ret,
}

/// True when `e` is a literal the evaluator cannot fail on and that reads
/// no shared fields.
fn is_literal(e: &Expr) -> bool {
    matches!(e, Expr::Int(_) | Expr::Bool(_) | Expr::Str(_))
}

impl Instr {
    /// True when executing this instruction touches only the running
    /// thread's own frame — no lock, wait set, or shared field is read or
    /// written, and the instruction cannot fault. Such a step commutes
    /// with every step of every other thread, which is what the
    /// explorer's ample-set reduction relies on: expanding only this step
    /// from a state cannot hide a deadlock, fault or livelock that some
    /// interleaving would otherwise reach.
    pub fn is_thread_local(&self) -> bool {
        match self {
            Instr::Jump { .. } | Instr::Ret | Instr::EvalRet { value: None } => true,
            Instr::EvalRet { value: Some(e) } | Instr::StoreLocal { value: e, .. } => {
                is_literal(e)
            }
            // Only a literal-`bool` condition: any other expression may
            // read fields or fault on a type error, both of which are
            // visible to other threads or to the verdict.
            Instr::JumpIfFalse {
                cond: Expr::Bool(_),
                ..
            } => true,
            _ => false,
        }
    }
}

/// A compiled method.
#[derive(Debug, Clone)]
pub struct CompiledMethod {
    /// Method name.
    pub name: String,
    /// Parameter names in order (values supplied per call).
    pub params: Vec<String>,
    /// Parameter types in order.
    pub param_types: Vec<Type>,
    /// Declared return type.
    pub ret: Option<Type>,
    /// Whether the receiver's monitor wraps the whole body.
    pub synchronized: bool,
    /// The instruction stream.
    pub code: Vec<Instr>,
}

/// A compiled component: initial field values, lock table and methods.
#[derive(Debug, Clone)]
pub struct CompiledComponent {
    /// Component name.
    pub name: String,
    /// Initial field values (field name → value).
    pub fields: Vec<(String, Value)>,
    /// Lock names; index 0 is `this`.
    pub locks: Vec<String>,
    /// Compiled methods in declaration order.
    pub methods: Vec<CompiledMethod>,
}

impl CompiledComponent {
    /// Find a compiled method by name.
    pub fn method(&self, name: &str) -> Option<&CompiledMethod> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Index of a method by name.
    pub fn method_index(&self, name: &str) -> Option<usize> {
        self.methods.iter().position(|m| m.name == name)
    }
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A field initializer was not a constant expression.
    NonConstantInitializer {
        /// The field.
        field: String,
    },
    /// A lock reference did not resolve.
    UnknownLock {
        /// The lock name.
        name: String,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::NonConstantInitializer { field } => {
                write!(f, "field `{field}` initializer is not constant")
            }
            CompileError::UnknownLock { name } => write!(f, "unknown lock `{name}`"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile a component. The component should already pass
/// [`jcc_model::validate`] (except for deliberately seeded mutants, which
/// are still compilable).
pub fn compile(component: &Component) -> Result<CompiledComponent, CompileError> {
    let mut locks = vec!["this".to_string()];
    locks.extend(component.locks.iter().cloned());
    let lock_index: HashMap<&str, usize> = locks
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    let mut fields = Vec::with_capacity(component.fields.len());
    for f in &component.fields {
        let value = const_eval(&f.init).ok_or_else(|| CompileError::NonConstantInitializer {
            field: f.name.clone(),
        })?;
        fields.push((f.name.clone(), value));
    }

    let mut methods = Vec::with_capacity(component.methods.len());
    for m in &component.methods {
        methods.push(compile_method(m, &lock_index)?);
    }
    Ok(CompiledComponent {
        name: component.name.clone(),
        fields,
        locks,
        methods,
    })
}

fn const_eval(e: &Expr) -> Option<Value> {
    match e {
        Expr::Int(n) => Some(Value::Int(*n)),
        Expr::Bool(b) => Some(Value::Bool(*b)),
        Expr::Str(s) => Some(Value::Str(s.clone())),
        Expr::Unary(jcc_model::ast::UnOp::Neg, inner) => match const_eval(inner)? {
            Value::Int(n) => Some(Value::Int(-n)),
            _ => None,
        },
        _ => None,
    }
}

struct MethodCompiler<'a> {
    code: Vec<Instr>,
    lock_index: &'a HashMap<&'a str, usize>,
    /// Explicit sync blocks currently open (for compiling `return`).
    sync_stack: Vec<(LockIdx, Vec<usize>)>,
    synchronized: bool,
}

impl MethodCompiler<'_> {
    fn resolve(&self, lock: &LockRef) -> Result<LockIdx, CompileError> {
        match lock {
            LockRef::This => Ok(0),
            LockRef::Named(n) => self
                .lock_index
                .get(n.as_str())
                .copied()
                .ok_or_else(|| CompileError::UnknownLock { name: n.clone() }),
        }
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn compile_block(&mut self, block: &Block, path: &mut Vec<usize>) -> Result<(), CompileError> {
        for (i, stmt) in block.iter().enumerate() {
            path.push(i);
            self.compile_stmt(stmt, path)?;
            path.pop();
        }
        Ok(())
    }

    fn compile_stmt(&mut self, stmt: &Stmt, path: &mut Vec<usize>) -> Result<(), CompileError> {
        match stmt {
            Stmt::Wait { lock } => {
                let lock = self.resolve(lock)?;
                self.emit(Instr::Wait {
                    lock,
                    path: path.clone(),
                });
            }
            Stmt::Notify { lock } => {
                let lock = self.resolve(lock)?;
                self.emit(Instr::Notify {
                    lock,
                    all: false,
                    path: path.clone(),
                });
            }
            Stmt::NotifyAll { lock } => {
                let lock = self.resolve(lock)?;
                self.emit(Instr::Notify {
                    lock,
                    all: true,
                    path: path.clone(),
                });
            }
            Stmt::Assign { target, value } => match target {
                LValue::Field(name) => {
                    self.emit(Instr::StoreField {
                        name: name.clone(),
                        value: value.clone(),
                    });
                }
                LValue::Local(name) => {
                    self.emit(Instr::StoreLocal {
                        name: name.clone(),
                        value: value.clone(),
                    });
                }
            },
            Stmt::Local { name, init, .. } => {
                self.emit(Instr::StoreLocal {
                    name: name.clone(),
                    value: init.clone(),
                });
            }
            Stmt::Skip => {}
            Stmt::While { cond, body } => {
                let header = self.code.len();
                let jif = self.emit(Instr::JumpIfFalse {
                    cond: cond.clone(),
                    target: usize::MAX,
                });
                self.compile_block(body, path)?;
                self.emit(Instr::Jump { target: header });
                let after = self.code.len();
                if let Instr::JumpIfFalse { target, .. } = &mut self.code[jif] {
                    *target = after;
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let jif = self.emit(Instr::JumpIfFalse {
                    cond: cond.clone(),
                    target: usize::MAX,
                });
                self.compile_block(then_branch, path)?;
                if else_branch.is_empty() {
                    let after = self.code.len();
                    if let Instr::JumpIfFalse { target, .. } = &mut self.code[jif] {
                        *target = after;
                    }
                } else {
                    let jend = self.emit(Instr::Jump { target: usize::MAX });
                    let else_start = self.code.len();
                    if let Instr::JumpIfFalse { target, .. } = &mut self.code[jif] {
                        *target = else_start;
                    }
                    // Else-branch paths use the offset convention.
                    for (j, s) in else_branch.iter().enumerate() {
                        path.push(jcc_model::ast::ELSE_OFFSET + j);
                        self.compile_stmt(s, path)?;
                        path.pop();
                    }
                    let after = self.code.len();
                    if let Instr::Jump { target } = &mut self.code[jend] {
                        *target = after;
                    }
                }
            }
            Stmt::Synchronized { lock, body } => {
                let lock_idx = self.resolve(lock)?;
                let site = path.clone();
                self.emit(Instr::EnterSync {
                    lock: lock_idx,
                    path: Some(site.clone()),
                });
                self.sync_stack.push((lock_idx, site.clone()));
                self.compile_block(body, path)?;
                self.sync_stack.pop();
                self.emit(Instr::ExitSync {
                    lock: lock_idx,
                    path: Some(site),
                });
            }
            Stmt::Return(value) => {
                self.emit(Instr::EvalRet {
                    value: value.clone(),
                });
                // Release explicit blocks inner → outer, then the method
                // monitor, then finish.
                let exits: Vec<(LockIdx, Vec<usize>)> =
                    self.sync_stack.iter().rev().cloned().collect();
                for (lock, site) in exits {
                    self.emit(Instr::ExitSync {
                        lock,
                        path: Some(site),
                    });
                }
                if self.synchronized {
                    self.emit(Instr::ExitSync { lock: 0, path: None });
                }
                self.emit(Instr::Ret);
            }
        }
        Ok(())
    }
}

fn compile_method(
    method: &Method,
    lock_index: &HashMap<&str, usize>,
) -> Result<CompiledMethod, CompileError> {
    let mut mc = MethodCompiler {
        code: Vec::new(),
        lock_index,
        sync_stack: Vec::new(),
        synchronized: method.synchronized,
    };
    if method.synchronized {
        mc.emit(Instr::EnterSync { lock: 0, path: None });
    }
    let mut path = Vec::new();
    mc.compile_block(&method.body, &mut path)?;
    // Implicit return at the end of the body.
    mc.emit(Instr::EvalRet { value: None });
    if method.synchronized {
        mc.emit(Instr::ExitSync { lock: 0, path: None });
    }
    mc.emit(Instr::Ret);
    Ok(CompiledMethod {
        name: method.name.clone(),
        params: method.params.iter().map(|p| p.name.clone()).collect(),
        param_types: method.params.iter().map(|p| p.ty).collect(),
        ret: method.ret,
        synchronized: method.synchronized,
        code: mc.code,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_model::examples;

    #[test]
    fn producer_consumer_compiles() {
        let c = examples::producer_consumer();
        let cc = compile(&c).unwrap();
        assert_eq!(cc.name, "ProducerConsumer");
        assert_eq!(cc.locks, vec!["this"]);
        assert_eq!(cc.fields.len(), 3);
        assert_eq!(cc.fields[0], ("contents".to_string(), Value::Str(String::new())));
        let receive = cc.method("receive").unwrap();
        assert!(receive.synchronized);
        // Starts by entering the monitor, ends with Ret.
        assert!(matches!(receive.code[0], Instr::EnterSync { lock: 0, .. }));
        assert!(matches!(receive.code.last(), Some(Instr::Ret)));
        // Contains exactly one Wait and one Notify(all).
        let waits = receive
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Wait { .. }))
            .count();
        assert_eq!(waits, 1);
        let notifies = receive
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Notify { all: true, .. }))
            .count();
        assert_eq!(notifies, 1);
    }

    #[test]
    fn while_compiles_to_backward_jump() {
        let c = examples::producer_consumer();
        let cc = compile(&c).unwrap();
        let receive = cc.method("receive").unwrap();
        // Find the JumpIfFalse of the wait loop and the Jump back.
        let jif_pos = receive
            .code
            .iter()
            .position(|i| matches!(i, Instr::JumpIfFalse { .. }))
            .unwrap();
        let jump = receive
            .code
            .iter()
            .find_map(|i| match i {
                Instr::Jump { target } => Some(*target),
                _ => None,
            })
            .unwrap();
        assert_eq!(jump, jif_pos, "loop jumps back to its header");
        // JumpIfFalse target is past the Jump.
        if let Instr::JumpIfFalse { target, .. } = &receive.code[jif_pos] {
            assert!(*target > jif_pos);
        }
    }

    #[test]
    fn return_releases_locks_in_order() {
        let src = r#"
            class R {
              lock a;
              var n: int = 0;
              synchronized fn m() -> int {
                synchronized (a) {
                  return n;
                }
              }
            }
        "#;
        let c = jcc_model::parse_component(src).unwrap();
        let cc = compile(&c).unwrap();
        let code = &cc.method("m").unwrap().code;
        // …EvalRet, ExitSync(a), ExitSync(this), Ret…
        let evalret = code
            .iter()
            .position(|i| matches!(i, Instr::EvalRet { value: Some(_) }))
            .unwrap();
        assert!(matches!(code[evalret + 1], Instr::ExitSync { lock: 1, .. }));
        assert!(
            matches!(code[evalret + 2], Instr::ExitSync { lock: 0, path: None })
        );
        assert!(matches!(code[evalret + 3], Instr::Ret));
    }

    #[test]
    fn named_locks_indexed_after_this() {
        let c = examples::lock_order_deadlock();
        let cc = compile(&c).unwrap();
        assert_eq!(cc.locks, vec!["this", "a", "b"]);
        let fwd = cc.method("forward").unwrap();
        let enters: Vec<usize> = fwd
            .code
            .iter()
            .filter_map(|i| match i {
                Instr::EnterSync { lock, .. } => Some(*lock),
                _ => None,
            })
            .collect();
        assert_eq!(enters, vec![1, 2]);
        let bwd = cc.method("backward").unwrap();
        let enters: Vec<usize> = bwd
            .code
            .iter()
            .filter_map(|i| match i {
                Instr::EnterSync { lock, .. } => Some(*lock),
                _ => None,
            })
            .collect();
        assert_eq!(enters, vec![2, 1]);
    }

    #[test]
    fn if_else_paths_use_offset_convention() {
        let src = r#"
            class B {
              var ready: bool = false;
              synchronized fn m() {
                if (ready) { notify; } else { notifyAll; }
              }
            }
        "#;
        let c = jcc_model::parse_component(src).unwrap();
        let cc = compile(&c).unwrap();
        let code = &cc.method("m").unwrap().code;
        let notify_paths: Vec<(bool, Vec<usize>)> = code
            .iter()
            .filter_map(|i| match i {
                Instr::Notify { all, path, .. } => Some((*all, path.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(notify_paths.len(), 2);
        assert_eq!(notify_paths[0], (false, vec![0, 0]));
        assert_eq!(
            notify_paths[1],
            (true, vec![0, jcc_model::ast::ELSE_OFFSET])
        );
    }

    #[test]
    fn nonconstant_initializer_rejected() {
        // Hand-build a component whose field initializer is a call.
        let mut c = examples::producer_consumer();
        c.fields[0].init = jcc_model::ast::Expr::Call(
            jcc_model::ast::Builtin::Len,
            vec![jcc_model::ast::Expr::Str("x".into())],
        );
        assert!(matches!(
            compile(&c),
            Err(CompileError::NonConstantInitializer { .. })
        ));
    }

    #[test]
    fn all_corpus_and_mutants_compile() {
        for (_name, c) in examples::corpus() {
            compile(&c).unwrap();
            for (_m, mutant) in jcc_model::mutate::all_mutants(&c) {
                compile(&mutant).unwrap();
            }
        }
    }
}
