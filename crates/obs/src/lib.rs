//! # jcc-obs — structured tracing, metrics and machine-readable run reports
//!
//! A dependency-free observability layer for the exploration pipeline:
//!
//! * [`level`] — the global recording level ([`ObsLevel`]): `off` (the
//!   default; every hook is a near-free atomic load), `summary` (metrics
//!   only) or `trace` (metrics plus a structured event stream),
//! * [`metrics`] — a registry of named [`Counter`]s, [`Gauge`]s and
//!   log2-bucketed [`Histogram`]s; the [`global`] registry is what the
//!   engines write to, but registries are plain values and can be local,
//! * [`span`] — timed, nested spans ([`span_enter`] / the [`span!`] macro):
//!   each span records its wall-clock into the `span.<name>` histogram and,
//!   at `trace` level, emits enter/exit events,
//! * [`trace`] — the structured event stream and its JSONL rendering,
//! * [`json`] — a minimal JSON value type with writer and parser (the crate
//!   registry is unreachable, so no serde),
//! * [`report`] — the stable [`RunReport`] schema (`jcc-obs/v1`): a
//!   snapshot of every metric plus per-phase wall-clock (with p50/p90/p99
//!   estimates) and derived rates, renderable as a human summary or a JSON
//!   file,
//! * [`timeline`] — causal schedule timelines: one lane per thread, typed
//!   intervals stamped with Table-1 transitions and CoFG arcs, cross-lane
//!   causality edges (notify→wake, release→acquire), an ASCII renderer and
//!   a Chrome Trace Event Format (Perfetto-loadable) exporter,
//! * [`ledger`] — the cross-run regression ledger (`jcc-ledger/v1`):
//!   pairwise diffs of [`RunReport`]s with throughput and arc-coverage
//!   regression flags,
//! * [`live`] — live introspection: the hierarchical [`SpanTree`], a
//!   sampling [`Profiler`] over registered engine threads, and the
//!   [`ProgressCell`]/[`Heartbeat`] pair that turns engine progress into
//!   EWMA rates, ETAs and heartbeat events while a run is in flight,
//! * [`expose`] — Prometheus text exposition of a registry
//!   ([`render_prometheus`]) plus the minimal [`ExposeServer`] TCP
//!   listener behind `--expose=PORT`,
//! * [`bench`] — [`BenchReporter`], the front door for the `jcc-bench`
//!   binaries: parses the shared `--quiet` / `JCC_OBS=off|summary|trace`
//!   knob, times the run, and writes `BENCH_<bin>.json`.
//!
//! Determinism contract: observation never feeds back into exploration.
//! Enabling any level changes no engine result — only what is recorded
//! about it (asserted by `tests/obs_determinism.rs`).
//!
//! # Example
//!
//! ```
//! use jcc_obs::{ObsLevel, Registry};
//!
//! // Engines use the global registry; tests can use a local one.
//! let reg = Registry::new();
//! let states = reg.counter("demo.states");
//! for _ in 0..128 {
//!     states.inc();
//! }
//! reg.histogram("demo.latency_ns").record(4_096);
//! let report = jcc_obs::report::RunReport::from_registry("demo", ObsLevel::Summary, 0.5, &reg);
//! assert_eq!(report.counters["demo.states"], 128);
//! let json = report.to_json_string();
//! let back = jcc_obs::report::RunReport::from_json_str(&json).unwrap();
//! assert_eq!(back.counters["demo.states"], 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod expose;
pub mod json;
pub mod ledger;
pub mod level;
pub mod live;
pub mod metrics;
pub mod report;
pub mod span;
pub mod timeline;
pub mod trace;

pub use bench::{parse_knobs, BenchReporter};
pub use expose::{fetch_metrics, render_prometheus, ExposeServer};
pub use ledger::Ledger;
pub use level::{enabled, level, set_level, trace_enabled, ObsLevel};
pub use live::{
    explore_progress, progress_enabled, reach_progress, register_thread, set_progress,
    set_span_tree, Heartbeat, HeartbeatStats, ProfileReport, Profiler, ProgressCell,
    ProgressSnapshot, SpanTree, SpanTreeSnapshot,
};
pub use metrics::{global, Counter, Gauge, Histogram, Registry};
pub use report::{PhaseReport, RunReport};
pub use timeline::{Timeline, TimelineBuilder};
pub use span::{span_enter, SpanGuard};
pub use trace::{drain_trace, trace_event, TraceRecord};

/// Open a timed span: `let _g = jcc_obs::span!("petri.reach");`.
///
/// The guard records the span's wall-clock into the `span.<name>` histogram
/// of the global registry when it drops; at `trace` level it also emits
/// enter/exit events. When the level is `off` the macro costs one relaxed
/// atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_enter($name)
    };
}

/// Emit a structured trace event (recorded only at `trace` level):
/// `jcc_obs::event!("probe.failure"; "seed" => seed, "verdict" => v)`.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::trace_event($name, Vec::new())
    };
    ($name:expr; $($key:expr => $value:expr),+ $(,)?) => {
        if $crate::trace_enabled() {
            $crate::trace_event(
                $name,
                vec![$(($key.to_string(), format!("{}", $value))),+],
            );
        }
    };
}
