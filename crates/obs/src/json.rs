//! A minimal JSON value type with writer and recursive-descent parser.
//!
//! The build environment has no registry access, so there is no serde;
//! this covers exactly what [`crate::report`] and [`crate::trace`] need:
//! objects with ordered keys, arrays, strings, finite numbers, booleans
//! and null. Numbers are `f64` (every metric this crate emits fits well
//! inside the 2^53 exact-integer range).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so rendering is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// The value at `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * depth),
                " ".repeat(w * (depth + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the whole input must be one value).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this crate's
                            // own output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = Json::obj([
            ("name".to_string(), Json::Str("e8 \"quoted\"\n".into())),
            ("states".to_string(), Json::Num(23_122.0)),
            ("rate".to_string(), Json::Num(1234.5)),
            ("ok".to_string(), Json::Bool(true)),
            ("nothing".to_string(), Json::Null),
            (
                "buckets".to_string(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]),
            ),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\tbA\n"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\tbA\n"));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "a": [1], "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
