//! Causal schedule timelines: one lane per thread, typed intervals, and
//! cross-lane causality edges.
//!
//! The paper's diagnostic story is *which transition fired (or failed to
//! fire) when*: Table 1 classifies failures by deviations of the Figure-1
//! transitions T1–T5. A [`Timeline`] is that story made visible for one
//! explored schedule — each thread is a lane of typed intervals (running,
//! requesting-lock, in-critical-section, waiting), and the cross-lane
//! [`CausalEdge`]s record who woke whom (notify → wake-up, T5) and whose
//! release enabled whose acquire (T4 → T2). Intervals and edges carry the
//! Table-1 transition that opened them and, when the producer knows it, the
//! CoFG arc being traversed.
//!
//! This crate is dependency-free, so the timeline model speaks in plain
//! strings and numbers; the `jcc-vm` and `jcc-runtime` crates build
//! timelines from their own event streams via [`TimelineBuilder`]. The
//! clock is abstract (VM steps or event sequence numbers, never wall
//! time), so a timeline is a pure function of the schedule: the same
//! component and seed render byte-identically at any worker count.
//!
//! Two renderings:
//! * [`Timeline::render_ascii`] — the terminal view printed next to every
//!   counterexample,
//! * [`Timeline::to_chrome_json`] — the Chrome Trace Event Format document
//!   (loadable in Perfetto / `chrome://tracing`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;

/// What a thread is doing during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalKind {
    /// Between calls (or before the first / after the last).
    Idle,
    /// Executing outside any monitor.
    Running,
    /// Blocked requesting a lock (model place B; opened by T1, or by T5 for
    /// the re-acquisition after a wake-up).
    RequestingLock,
    /// Inside a monitor (holding at least one lock; opened by T2).
    InCriticalSection,
    /// Suspended in a wait set (model place D; opened by T3).
    Waiting,
    /// Dead after a runtime fault.
    Faulted,
}

impl IntervalKind {
    /// Stable machine name (used in the Chrome export).
    pub fn name(self) -> &'static str {
        match self {
            IntervalKind::Idle => "idle",
            IntervalKind::Running => "running",
            IntervalKind::RequestingLock => "requesting-lock",
            IntervalKind::InCriticalSection => "critical-section",
            IntervalKind::Waiting => "waiting",
            IntervalKind::Faulted => "faulted",
        }
    }

    /// One-character glyph for the ASCII chart.
    pub fn glyph(self) -> char {
        match self {
            IntervalKind::Idle => '.',
            IntervalKind::Running => 'R',
            IntervalKind::RequestingLock => 'q',
            IntervalKind::InCriticalSection => 'C',
            IntervalKind::Waiting => 'W',
            IntervalKind::Faulted => 'X',
        }
    }
}

/// One typed interval of a lane. `start..end` on the abstract clock
/// (half-open; zero-length intervals are kept — they still carry their
/// transition stamp).
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    /// Clock value the interval opened at.
    pub start: u64,
    /// Clock value it closed at (exclusive; `>= start`).
    pub end: u64,
    /// What the thread was doing.
    pub kind: IntervalKind,
    /// The lock involved, for lock-related kinds.
    pub lock: Option<String>,
    /// The Table-1 transition (1–5 for T1–T5) that opened this interval.
    pub transition: Option<u8>,
    /// The CoFG arc traversed during this interval, when known.
    pub arc: Option<String>,
}

/// The kind of a cross-lane causality edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// A notification woke a waiting thread (T5).
    NotifyWake,
    /// A lock release enabled a blocked thread's acquisition (T4 → T2).
    ReleaseAcquire,
}

impl EdgeKind {
    /// Stable machine name (used in the Chrome export).
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::NotifyWake => "notify-wake",
            EdgeKind::ReleaseAcquire => "release-acquire",
        }
    }
}

/// A cross-lane causality edge.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalEdge {
    /// What kind of causality.
    pub kind: EdgeKind,
    /// Source lane (the notifier / releaser).
    pub from_lane: usize,
    /// Clock value of the cause.
    pub from_time: u64,
    /// Destination lane (the woken / acquiring thread).
    pub to_lane: usize,
    /// Clock value of the effect.
    pub to_time: u64,
    /// The lock the edge travels through.
    pub lock: String,
    /// The Table-1 transition fired at the destination (5 for a wake-up,
    /// 2 for an enabled acquisition).
    pub transition: u8,
    /// The CoFG arc that fired the cause, when known (e.g. the arc ending
    /// at the notify node).
    pub arc: Option<String>,
}

/// A point annotation on a lane (lost notifications, faults).
#[derive(Debug, Clone, PartialEq)]
pub struct Note {
    /// The lane the note belongs to.
    pub lane: usize,
    /// Clock value.
    pub at: u64,
    /// Free text.
    pub text: String,
}

/// One thread's lane: a name and its intervals in clock order.
#[derive(Debug, Clone, PartialEq)]
pub struct Lane {
    /// Display name of the thread.
    pub name: String,
    /// Intervals in increasing `start` order, gap-free from 0 to the
    /// timeline horizon.
    pub intervals: Vec<Interval>,
}

/// A causal schedule timeline. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// What the clock counts (`"steps"` for VM schedules, `"events"` for
    /// runtime event logs).
    pub clock: String,
    /// One lane per thread, in thread order.
    pub lanes: Vec<Lane>,
    /// Cross-lane causality edges, in discovery order.
    pub edges: Vec<CausalEdge>,
    /// Point annotations, in discovery order.
    pub notes: Vec<Note>,
    /// Exclusive end of the clock (every interval ends at or before it).
    pub horizon: u64,
}

/// Widest ASCII chart rendered before the tail is elided.
const ASCII_MAX_COLS: u64 = 240;

impl Timeline {
    /// Render the timeline as the terminal chart printed next to every
    /// counterexample: one row per lane (one column per clock tick), then
    /// the causality edges and notes.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let cols = self.horizon.min(ASCII_MAX_COLS);
        let _ = writeln!(
            out,
            "causal timeline (clock: {}, 1 column = 1 {}, horizon {})",
            self.clock,
            self.clock.trim_end_matches('s'),
            self.horizon
        );
        let _ = writeln!(
            out,
            "legend: . idle  R running  q requesting-lock  C critical-section  W waiting  X faulted"
        );
        let name_w = self
            .lanes
            .iter()
            .map(|l| l.name.chars().count())
            .max()
            .unwrap_or(0)
            .max(4);
        for lane in &self.lanes {
            let mut row = vec!['.'; cols as usize];
            for iv in &lane.intervals {
                let hi = iv.end.min(cols);
                for slot in row
                    .iter_mut()
                    .take(hi as usize)
                    .skip(iv.start.min(cols) as usize)
                {
                    *slot = iv.kind.glyph();
                }
            }
            let chart: String = row.into_iter().collect();
            let _ = writeln!(out, "  {:<name_w$} |{chart}|", lane.name);
        }
        if self.horizon > ASCII_MAX_COLS {
            let _ = writeln!(
                out,
                "  (chart truncated at {ASCII_MAX_COLS} of {} columns)",
                self.horizon
            );
        }
        if !self.edges.is_empty() {
            let _ = writeln!(out, "causality:");
            for e in &self.edges {
                let from = self.lane_name(e.from_lane);
                let to = self.lane_name(e.to_lane);
                let arc = match &e.arc {
                    Some(a) => format!("; arc {a}"),
                    None => String::new(),
                };
                let line = match e.kind {
                    EdgeKind::NotifyWake => format!(
                        "{from} ~notify~> {to} wakes on `{}` (T{}{arc})",
                        e.lock, e.transition
                    ),
                    EdgeKind::ReleaseAcquire => format!(
                        "{from} -release-> {to} acquires `{}` (T{}{arc})",
                        e.lock, e.transition
                    ),
                };
                let _ = writeln!(out, "  [{:>4}->{:>4}] {line}", e.from_time, e.to_time);
            }
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "notes:");
            for n in &self.notes {
                let _ = writeln!(
                    out,
                    "  [{:>4}] {}: {}",
                    n.at,
                    self.lane_name(n.lane),
                    n.text
                );
            }
        }
        out
    }

    fn lane_name(&self, i: usize) -> &str {
        self.lanes.get(i).map(|l| l.name.as_str()).unwrap_or("?")
    }

    /// Export as a Chrome Trace Event Format document (the JSON object
    /// form, with a `traceEvents` array), loadable in Perfetto and
    /// `chrome://tracing`. One abstract clock tick maps to one microsecond
    /// of trace time. Intervals become complete (`X`) slices, causality
    /// edges become flow event pairs (`s`/`f`), notes become thread-scoped
    /// instants (`i`).
    pub fn to_chrome_json(&self) -> Json {
        let str_pair = |k: &str, v: &str| (k.to_string(), Json::Str(v.to_string()));
        let num_pair = |k: &str, v: f64| (k.to_string(), Json::Num(v));
        let mut events: Vec<Json> = Vec::new();
        events.push(Json::obj([
            str_pair("ph", "M"),
            str_pair("name", "process_name"),
            num_pair("pid", 0.0),
            num_pair("ts", 0.0),
            (
                "args".to_string(),
                Json::obj([str_pair("name", "jcc schedule")]),
            ),
        ]));
        for (i, lane) in self.lanes.iter().enumerate() {
            events.push(Json::obj([
                str_pair("ph", "M"),
                str_pair("name", "thread_name"),
                num_pair("pid", 0.0),
                num_pair("tid", i as f64),
                num_pair("ts", 0.0),
                (
                    "args".to_string(),
                    Json::obj([str_pair("name", &lane.name)]),
                ),
            ]));
        }
        for (i, lane) in self.lanes.iter().enumerate() {
            for iv in &lane.intervals {
                if iv.kind == IntervalKind::Idle {
                    continue;
                }
                let name = match &iv.lock {
                    Some(lock) => format!("{} `{lock}`", iv.kind.name()),
                    None => iv.kind.name().to_string(),
                };
                let mut args: BTreeMap<String, Json> = BTreeMap::new();
                args.insert("kind".into(), Json::Str(iv.kind.name().into()));
                if let Some(lock) = &iv.lock {
                    args.insert("lock".into(), Json::Str(lock.clone()));
                }
                if let Some(t) = iv.transition {
                    args.insert("transition".into(), Json::Str(format!("T{t}")));
                }
                if let Some(arc) = &iv.arc {
                    args.insert("cofg_arc".into(), Json::Str(arc.clone()));
                }
                events.push(Json::obj([
                    str_pair("ph", "X"),
                    str_pair("cat", "schedule"),
                    (
                        "name".to_string(),
                        Json::Str(name),
                    ),
                    num_pair("pid", 0.0),
                    num_pair("tid", i as f64),
                    num_pair("ts", iv.start as f64),
                    num_pair("dur", (iv.end - iv.start) as f64),
                    ("args".to_string(), Json::Obj(args)),
                ]));
            }
        }
        for (id, e) in self.edges.iter().enumerate() {
            let mut args: BTreeMap<String, Json> = BTreeMap::new();
            args.insert("lock".into(), Json::Str(e.lock.clone()));
            args.insert("transition".into(), Json::Str(format!("T{}", e.transition)));
            if let Some(arc) = &e.arc {
                args.insert("cofg_arc".into(), Json::Str(arc.clone()));
            }
            for (ph, lane, ts) in [("s", e.from_lane, e.from_time), ("f", e.to_lane, e.to_time)] {
                let mut fields = vec![
                    str_pair("ph", ph),
                    str_pair("cat", "causality"),
                    str_pair("name", e.kind.name()),
                    num_pair("id", id as f64),
                    num_pair("pid", 0.0),
                    num_pair("tid", lane as f64),
                    num_pair("ts", ts as f64),
                    ("args".to_string(), Json::Obj(args.clone())),
                ];
                if ph == "f" {
                    fields.push(str_pair("bp", "e"));
                }
                events.push(Json::obj(fields));
            }
        }
        for n in &self.notes {
            events.push(Json::obj([
                str_pair("ph", "i"),
                str_pair("s", "t"),
                str_pair("cat", "note"),
                str_pair("name", &n.text),
                num_pair("pid", 0.0),
                num_pair("tid", n.lane as f64),
                num_pair("ts", n.at as f64),
            ]));
        }
        Json::obj([
            ("traceEvents".to_string(), Json::Arr(events)),
            (
                "displayTimeUnit".to_string(),
                Json::Str("ms".to_string()),
            ),
            (
                "otherData".to_string(),
                Json::obj([
                    ("clock".to_string(), Json::Str(self.clock.clone())),
                    ("horizon".to_string(), Json::Num(self.horizon as f64)),
                ]),
            ),
        ])
    }

    /// [`Timeline::to_chrome_json`] as compact JSON text (one trailing
    /// newline) — the Chrome-trace artifact file format.
    pub fn to_chrome_string(&self) -> String {
        let mut s = self.to_chrome_json().to_string_compact();
        s.push('\n');
        s
    }
}

#[derive(Debug)]
struct LaneState {
    name: String,
    intervals: Vec<Interval>,
    open: Interval,
    /// Locks currently held (display names).
    holds: Vec<String>,
    /// The most recently completed CoFG arc, for stamping edges.
    last_arc: Option<String>,
}

/// Builds a [`Timeline`] from a stream of monitor events in clock order.
///
/// The builder owns the cross-lane bookkeeping — who last released each
/// lock, who last notified on it — so producers ([`jcc-vm`'s trace walker,
/// the runtime event log) only translate their own event vocabulary:
///
/// ```
/// use jcc_obs::timeline::TimelineBuilder;
///
/// let mut b = TimelineBuilder::new("steps");
/// let p = b.lane("producer");
/// let c = b.lane("consumer");
/// b.begins(c, 0);
/// b.requests(c, 1, "this");
/// b.acquires(c, 2, "this");
/// b.waits(c, 3, "this");
/// b.begins(p, 4);
/// b.requests(p, 5, "this");
/// b.acquires(p, 6, "this");
/// b.notify(p, 7, "this", true, 1);
/// b.woken(c, 7, "this");
/// b.releases(p, 8, "this");
/// b.acquires(c, 9, "this");
/// let timeline = b.finish(12);
/// assert_eq!(timeline.lanes.len(), 2);
/// assert_eq!(timeline.edges.len(), 2, "one wake edge, one handoff edge");
/// ```
#[derive(Debug)]
pub struct TimelineBuilder {
    clock: String,
    lanes: Vec<LaneState>,
    edges: Vec<CausalEdge>,
    notes: Vec<Note>,
    /// Per lock: (lane, time) of the most recent release (T4 or the
    /// implicit release of T3).
    last_release: BTreeMap<String, (usize, u64)>,
    /// Per lock: (lane, time, arc) of the most recent notification.
    last_notify: BTreeMap<String, (usize, u64, Option<String>)>,
}

impl TimelineBuilder {
    /// A fresh builder; `clock` names what the timeline counts.
    pub fn new(clock: &str) -> Self {
        TimelineBuilder {
            clock: clock.to_string(),
            lanes: Vec::new(),
            edges: Vec::new(),
            notes: Vec::new(),
            last_release: BTreeMap::new(),
            last_notify: BTreeMap::new(),
        }
    }

    /// Add a lane, returning its index. Every lane starts idle at clock 0.
    pub fn lane(&mut self, name: &str) -> usize {
        self.lanes.push(LaneState {
            name: name.to_string(),
            intervals: Vec::new(),
            open: Interval {
                start: 0,
                end: 0,
                kind: IntervalKind::Idle,
                lock: None,
                transition: None,
                arc: None,
            },
            holds: Vec::new(),
            last_arc: None,
        });
        self.lanes.len() - 1
    }

    fn set_kind(
        &mut self,
        lane: usize,
        at: u64,
        kind: IntervalKind,
        lock: Option<&str>,
        transition: Option<u8>,
    ) {
        let l = &mut self.lanes[lane];
        if l.open.kind == kind && l.open.lock.as_deref() == lock {
            return;
        }
        let mut closed = l.open.clone();
        closed.end = at.max(closed.start);
        l.intervals.push(closed);
        l.open = Interval {
            start: at,
            end: at,
            kind,
            lock: lock.map(str::to_string),
            transition,
            arc: None,
        };
    }

    /// The lane began executing a call (method entry).
    pub fn begins(&mut self, lane: usize, at: u64) {
        self.set_kind(lane, at, IntervalKind::Running, None, None);
    }

    /// The lane finished its call and is idle between calls.
    pub fn idles(&mut self, lane: usize, at: u64) {
        self.set_kind(lane, at, IntervalKind::Idle, None, None);
    }

    /// T1: the lane requested `lock` (entered model place B).
    pub fn requests(&mut self, lane: usize, at: u64, lock: &str) {
        self.set_kind(lane, at, IntervalKind::RequestingLock, Some(lock), Some(1));
    }

    /// T2: the lane acquired `lock`. When another lane's release let this
    /// request through, a [`EdgeKind::ReleaseAcquire`] edge is recorded.
    pub fn acquires(&mut self, lane: usize, at: u64, lock: &str) {
        if let Some(&(from_lane, from_time)) = self.last_release.get(lock) {
            let waiting_since = self.lanes[lane].open.start;
            if from_lane != lane
                && self.lanes[lane].open.kind == IntervalKind::RequestingLock
                && from_time >= waiting_since
            {
                self.edges.push(CausalEdge {
                    kind: EdgeKind::ReleaseAcquire,
                    from_lane,
                    from_time,
                    to_lane: lane,
                    to_time: at,
                    lock: lock.to_string(),
                    transition: 2,
                    arc: None,
                });
            }
        }
        if !self.lanes[lane].holds.iter().any(|l| l == lock) {
            self.lanes[lane].holds.push(lock.to_string());
        }
        self.set_kind(
            lane,
            at,
            IntervalKind::InCriticalSection,
            Some(lock),
            Some(2),
        );
    }

    /// T3: the lane suspended into `lock`'s wait set (model place D),
    /// releasing the lock.
    pub fn waits(&mut self, lane: usize, at: u64, lock: &str) {
        self.lanes[lane].holds.retain(|l| l != lock);
        self.last_release.insert(lock.to_string(), (lane, at));
        self.set_kind(lane, at, IntervalKind::Waiting, Some(lock), Some(3));
    }

    /// T4: the lane released `lock`.
    pub fn releases(&mut self, lane: usize, at: u64, lock: &str) {
        self.lanes[lane].holds.retain(|l| l != lock);
        self.last_release.insert(lock.to_string(), (lane, at));
        if self.lanes[lane].holds.is_empty() {
            self.set_kind(lane, at, IntervalKind::Running, None, Some(4));
        } else {
            let inner = self.lanes[lane].holds.last().cloned();
            self.set_kind(
                lane,
                at,
                IntervalKind::InCriticalSection,
                inner.as_deref(),
                Some(4),
            );
        }
    }

    /// T5: the lane was woken from `lock`'s wait set and is re-acquiring
    /// (back in place B). Records the [`EdgeKind::NotifyWake`] edge from
    /// the notifier.
    pub fn woken(&mut self, lane: usize, at: u64, lock: &str) {
        if let Some((from_lane, from_time, arc)) = self.last_notify.get(lock).cloned() {
            if from_lane != lane {
                self.edges.push(CausalEdge {
                    kind: EdgeKind::NotifyWake,
                    from_lane,
                    from_time,
                    to_lane: lane,
                    to_time: at,
                    lock: lock.to_string(),
                    transition: 5,
                    arc,
                });
            }
        }
        self.set_kind(lane, at, IntervalKind::RequestingLock, Some(lock), Some(5));
    }

    /// The lane issued a notification on `lock` (`all` = `notifyAll`) with
    /// `waiters` threads in place D. A zero-waiter notification is the lost
    /// notification shape and earns a note.
    pub fn notify(&mut self, lane: usize, at: u64, lock: &str, all: bool, waiters: usize) {
        let arc = self.lanes[lane].last_arc.clone();
        self.last_notify.insert(lock.to_string(), (lane, at, arc));
        if waiters == 0 {
            let what = if all { "notifyAll" } else { "notify" };
            self.notes.push(Note {
                lane,
                at,
                text: format!(
                    "{what} on `{lock}` fired with no thread in place D (lost notification)"
                ),
            });
        }
    }

    /// The lane faulted; it stays dead to the horizon.
    pub fn faults(&mut self, lane: usize, at: u64, message: &str) {
        self.notes.push(Note {
            lane,
            at,
            text: format!("FAULT: {message}"),
        });
        self.set_kind(lane, at, IntervalKind::Faulted, None, None);
    }

    /// Stamp the CoFG arc the lane just finished traversing onto its open
    /// interval (and remember it for the next notification edge).
    pub fn stamp_arc(&mut self, lane: usize, arc: &str) {
        self.lanes[lane].open.arc = Some(arc.to_string());
        self.lanes[lane].last_arc = Some(arc.to_string());
    }

    /// Attach a free-text note to a lane.
    pub fn note(&mut self, lane: usize, at: u64, text: &str) {
        self.notes.push(Note {
            lane,
            at,
            text: text.to_string(),
        });
    }

    /// Close every lane at `horizon` and return the finished timeline.
    pub fn finish(self, horizon: u64) -> Timeline {
        let TimelineBuilder {
            clock,
            lanes,
            edges,
            notes,
            ..
        } = self;
        let lanes = lanes
            .into_iter()
            .map(|mut l| {
                let mut open = l.open;
                open.end = horizon.max(open.start);
                l.intervals.push(open);
                Lane {
                    name: l.name,
                    intervals: l.intervals,
                }
            })
            .collect();
        Timeline {
            clock,
            lanes,
            edges,
            notes,
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handoff_timeline() -> Timeline {
        let mut b = TimelineBuilder::new("steps");
        let p = b.lane("producer");
        let c = b.lane("consumer");
        b.begins(c, 0);
        b.requests(c, 1, "this");
        b.acquires(c, 2, "this");
        b.waits(c, 3, "this");
        b.begins(p, 4);
        b.requests(p, 5, "this");
        b.acquires(p, 6, "this");
        b.stamp_arc(p, "send: start -> notifyAll");
        b.notify(p, 7, "this", true, 1);
        b.woken(c, 7, "this");
        b.releases(p, 8, "this");
        b.idles(p, 9);
        b.acquires(c, 9, "this");
        b.releases(c, 10, "this");
        b.idles(c, 11);
        b.finish(12)
    }

    #[test]
    fn builder_produces_gap_free_lanes() {
        let t = handoff_timeline();
        assert_eq!(t.lanes.len(), 2);
        for lane in &t.lanes {
            let mut clock = 0;
            for iv in &lane.intervals {
                assert_eq!(iv.start, clock, "{}: gap before {iv:?}", lane.name);
                assert!(iv.end >= iv.start);
                clock = iv.end;
            }
            assert_eq!(clock, t.horizon, "{}: lane must reach horizon", lane.name);
        }
    }

    #[test]
    fn causality_edges_recorded() {
        let t = handoff_timeline();
        assert_eq!(t.edges.len(), 2);
        let wake = &t.edges[0];
        assert_eq!(wake.kind, EdgeKind::NotifyWake);
        assert_eq!((wake.from_lane, wake.to_lane), (0, 1));
        assert_eq!(wake.transition, 5);
        assert_eq!(wake.arc.as_deref(), Some("send: start -> notifyAll"));
        let handoff = &t.edges[1];
        assert_eq!(handoff.kind, EdgeKind::ReleaseAcquire);
        assert_eq!((handoff.from_time, handoff.to_time), (8, 9));
    }

    #[test]
    fn lost_notification_earns_note() {
        let mut b = TimelineBuilder::new("steps");
        let p = b.lane("opener");
        b.begins(p, 0);
        b.acquires(p, 1, "this");
        b.notify(p, 2, "this", false, 0);
        let t = b.finish(3);
        assert_eq!(t.notes.len(), 1);
        assert!(t.notes[0].text.contains("no thread in place D"), "{t:?}");
    }

    #[test]
    fn ascii_chart_shows_lanes_and_edges() {
        let text = handoff_timeline().render_ascii();
        assert!(text.contains("causal timeline"), "{text}");
        assert!(text.contains("producer"), "{text}");
        assert!(text.contains("consumer"), "{text}");
        assert!(text.contains("~notify~>"), "{text}");
        assert!(text.contains("-release->"), "{text}");
        // The consumer waits (W) before its wake-up and re-acquisition.
        let consumer_row = text
            .lines()
            .find(|l| l.trim_start().starts_with("consumer"))
            .unwrap();
        assert!(consumer_row.contains('W'), "{consumer_row}");
        assert!(consumer_row.contains('q'), "{consumer_row}");
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let t = handoff_timeline();
        let text = t.to_chrome_string();
        let parsed = Json::parse(&text).expect("chrome export parses");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // Process + 2 thread metadata, slices, 2 flow pairs, no notes.
        assert!(events.len() > 7, "{}", events.len());
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phases.contains(&"M"));
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"s"));
        assert!(phases.contains(&"f"));
        // Slices carry transition stamps.
        let stamped = events.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("transition"))
                .and_then(Json::as_str)
                == Some("T2")
        });
        assert!(stamped, "no T2-stamped slice");
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = handoff_timeline();
        let b = handoff_timeline();
        assert_eq!(a.render_ascii(), b.render_ascii());
        assert_eq!(a.to_chrome_string(), b.to_chrome_string());
    }
}
