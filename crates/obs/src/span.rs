//! Timed, nested spans.
//!
//! A span brackets a phase of work on one thread. Opening is a relaxed
//! atomic load when the level is `off`; when recording, the guard notes the
//! start instant and a thread-local depth, and on drop folds the span's
//! wall-clock into the global `span.<name>` histogram (nanoseconds) and the
//! `span.<name>.count` counter. At `trace` level it also emits
//! `span_enter` / `span_exit` records.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use crate::level::{enabled, trace_enabled};
use crate::live;
use crate::metrics::global;
use crate::trace::push_record;

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// The stack of open span names on this thread, outermost first. Fed
    /// to the live span tree and (for registered threads) mirrored for
    /// the sampling profiler.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn current_depth() -> u32 {
    DEPTH.with(|d| d.get())
}

/// The guard returned by [`span_enter`]; closes the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: &'static str,
    start: Instant,
    depth: u32,
}

/// Open a span named `name`. Prefer the [`crate::span!`] macro.
pub fn span_enter(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.push(name);
        if live::stack_mirror_enabled() {
            live::mirror_stack(&stack);
        }
    });
    if trace_enabled() {
        push_record("span_enter", depth, vec![("span".into(), name.into())]);
    }
    SpanGuard {
        inner: Some(SpanInner {
            name,
            start: Instant::now(),
            depth,
        }),
    }
}

impl SpanGuard {
    /// The span's elapsed time so far (zero when recording is off).
    pub fn elapsed_nanos(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|s| s.start.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let nanos = inner.start.elapsed().as_nanos() as u64;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // A level flip between enter and drop can desync the stack;
            // only pop our own frame.
            if stack.last().copied() == Some(inner.name) {
                if live::span_tree_enabled() {
                    live::record_tree(&stack, nanos);
                }
                stack.pop();
                if live::stack_mirror_enabled() {
                    live::mirror_stack(&stack);
                }
            }
        });
        let reg = global();
        reg.histogram(&format!("span.{}", inner.name)).record(nanos);
        if trace_enabled() {
            push_record(
                "span_exit",
                inner.depth,
                vec![
                    ("span".into(), inner.name.into()),
                    ("nanos".into(), nanos.to_string()),
                ],
            );
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::level::{set_level, ObsLevel};
    use std::sync::{Mutex, OnceLock};

    /// Tests in this binary share the global level; serialize the ones that
    /// flip it.
    pub(crate) fn level_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = level_lock().lock().unwrap();
        set_level(ObsLevel::Off);
        let before = global().histogram("span.off_test").snapshot().count;
        {
            let _s = span_enter("off_test");
        }
        assert_eq!(global().histogram("span.off_test").snapshot().count, before);
    }

    #[test]
    fn nested_spans_time_monotonically() {
        let _guard = level_lock().lock().unwrap();
        set_level(ObsLevel::Summary);
        {
            let _outer = span_enter("mono_outer");
            {
                let _inner = span_enter("mono_inner");
                assert_eq!(current_depth(), 2);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        set_level(ObsLevel::Off);
        let outer = global().histogram("span.mono_outer").snapshot();
        let inner = global().histogram("span.mono_inner").snapshot();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(inner.sum > 0, "inner span saw the sleep");
        assert!(
            outer.sum >= inner.sum,
            "outer wall-clock ({}) contains inner ({})",
            outer.sum,
            inner.sum
        );
    }

    #[test]
    fn trace_level_emits_enter_exit_pairs() {
        let _guard = level_lock().lock().unwrap();
        set_level(ObsLevel::Trace);
        crate::trace::drain_trace();
        {
            let _s = span_enter("traced");
            crate::trace_event("inside", vec![("k".into(), "v".into())]);
        }
        set_level(ObsLevel::Off);
        let (records, dropped) = crate::trace::drain_trace();
        assert_eq!(dropped, 0);
        let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["span_enter", "inside", "span_exit"]);
        assert_eq!(records[1].depth, 1, "event sees the enclosing span");
        // Timestamps never go backwards within one thread's stream.
        assert!(records.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    }
}
