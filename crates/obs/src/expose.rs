//! Metrics exposition: a Prometheus-text-format snapshot of a registry,
//! and a minimal blocking-thread-per-connection HTTP listener serving it
//! (the `--expose=PORT` flag; the groundwork for `jcc-serve`).
//!
//! The format targets Prometheus text exposition 0.0.4: `# TYPE` comments,
//! one sample per line, histograms as cumulative `_bucket{le="…"}` series
//! plus `_sum`/`_count`. Everything is integers (the registry is `u64`
//! all the way down), so rendering is exact and deterministic.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::{global, Registry};

/// Map a registry metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixed with the `jcc_` namespace:
/// `petri.reach.states` → `jcc_petri_reach_states`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("jcc_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Inclusive upper bound of log2 bucket `i` (the Prometheus `le` label):
/// bucket `i` covers `[2^(i-1), 2^i)`, so its `le` is `2^i - 1`.
fn bucket_le(i: u32) -> u64 {
    if i >= 64 {
        u64::MAX
    } else if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// Render every counter, gauge and histogram of `reg` in Prometheus text
/// exposition format. Name-sorted per kind, deterministic for a given
/// registry state.
pub fn render_prometheus(reg: &Registry) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in reg.counter_values() {
        let n = sanitize_metric_name(&name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in reg.gauge_values() {
        let n = sanitize_metric_name(&name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, snap) in reg.histogram_values() {
        let n = sanitize_metric_name(&name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for &(bucket, count) in &snap.buckets {
            cumulative += count;
            let _ = writeln!(
                out,
                "{n}_bucket{{le=\"{}\"}} {cumulative}",
                bucket_le(bucket)
            );
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(out, "{n}_sum {}", snap.sum);
        let _ = writeln!(out, "{n}_count {}", snap.count);
    }
    out
}

/// A minimal metrics endpoint: a `TcpListener` accept loop that answers
/// every connection with one `HTTP/1.0 200` response carrying
/// [`render_prometheus`] of the global registry, one blocking thread per
/// connection. No routing, no keep-alive — exactly enough for
/// `curl localhost:PORT/metrics` and a Prometheus scrape.
#[derive(Debug)]
pub struct ExposeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

fn serve_conn(mut stream: TcpStream) {
    // Drain (a prefix of) the request so well-behaved clients aren't cut
    // off mid-send; the response is the same whatever they asked for.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let body = render_prometheus(global());
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
}

impl ExposeServer {
    /// Bind `127.0.0.1:port` (0 picks an ephemeral port — see
    /// [`local_addr`](ExposeServer::local_addr)) and start the accept
    /// loop.
    pub fn start(port: u16) -> std::io::Result<ExposeServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("jcc-obs-expose".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let _ = std::thread::Builder::new()
                        .name("jcc-obs-expose-conn".to_string())
                        .spawn(move || serve_conn(stream));
                }
            })?;
        Ok(ExposeServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept call with one last connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for ExposeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A `curl`-shaped client for tests and benches: fetch the metrics page
/// from an [`ExposeServer`] and return the response body.
pub fn fetch_metrics(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((headers, body)) if headers.starts_with("HTTP/1.0 200") => Ok(body.to_string()),
        _ => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed metrics response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized_into_the_prometheus_grammar() {
        assert_eq!(
            sanitize_metric_name("petri.reach.states"),
            "jcc_petri_reach_states"
        );
        assert_eq!(
            sanitize_metric_name("span.vm-explore"),
            "jcc_span_vm_explore"
        );
    }

    #[test]
    fn render_covers_every_metric_kind() {
        let reg = Registry::new();
        reg.counter("demo.states").add(128);
        reg.gauge("demo.frontier").set(7);
        reg.histogram("demo.latency_ns").record(5);
        reg.histogram("demo.latency_ns").record(900);
        let text = render_prometheus(&reg);
        assert!(text.contains("# TYPE jcc_demo_states counter"), "{text}");
        assert!(text.contains("jcc_demo_states 128"), "{text}");
        assert!(text.contains("# TYPE jcc_demo_frontier gauge"), "{text}");
        assert!(text.contains("jcc_demo_frontier 7"), "{text}");
        assert!(
            text.contains("# TYPE jcc_demo_latency_ns histogram"),
            "{text}"
        );
        // 5 lands in bucket 3 ([4,8), le=7); 900 in bucket 10 ([512,1024),
        // le=1023). Buckets are cumulative.
        assert!(text.contains("jcc_demo_latency_ns_bucket{le=\"7\"} 1"), "{text}");
        assert!(
            text.contains("jcc_demo_latency_ns_bucket{le=\"1023\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("jcc_demo_latency_ns_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("jcc_demo_latency_ns_sum 905"), "{text}");
        assert!(text.contains("jcc_demo_latency_ns_count 2"), "{text}");
    }

    #[test]
    fn render_is_deterministic() {
        let reg = Registry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").inc();
        reg.histogram("h").record(1);
        assert_eq!(render_prometheus(&reg), render_prometheus(&reg));
        let text = render_prometheus(&reg);
        let a = text.find("jcc_a_first").unwrap();
        let z = text.find("jcc_z_last").unwrap();
        assert!(a < z, "name-sorted output");
    }

    #[test]
    fn server_answers_a_curl_style_fetch() {
        // The global registry is shared across the test binary; only
        // assert on metrics this test owns.
        global().counter("expose.test.hits").add(3);
        let server = ExposeServer::start(0).expect("bind ephemeral port");
        let addr = server.local_addr();
        let body = fetch_metrics(addr).expect("fetch metrics");
        assert!(body.contains("jcc_expose_test_hits 3"), "{body}");
        // Two fetches: thread-per-conn keeps serving.
        let again = fetch_metrics(addr).expect("second fetch");
        assert!(again.contains("jcc_expose_test_hits"), "{again}");
        server.stop();
    }
}
