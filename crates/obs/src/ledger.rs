//! The cross-run regression ledger (`jcc-ledger/v1`).
//!
//! Every bench binary writes a `BENCH_<bin>.json` [`RunReport`]; until now
//! nothing consumed those files *across* runs. A [`Ledger`] diffs a
//! sequence of reports pairwise — raw counters, derived rates, and
//! arc-coverage percentages — flags regressions against the same floors
//! the CI perf guard enforces, and serializes to a stable `jcc-ledger/v1`
//! JSON document plus a human table. Diffing a report against itself
//! always yields zero regressions (the CI self-diff smoke).
//!
//! Regression rules:
//! * a derived key ending in `_per_sec` regresses when the current value
//!   falls below [`THROUGHPUT_FLOOR`] × base (the perf-guard floor);
//! * a derived key ending in `_pct` whose name contains `coverage`
//!   regresses when it drops more than [`COVERAGE_EPSILON`] percentage
//!   points, or disappears entirely;
//! * a derived key ending in `_pct` whose name contains `drop` (the E12
//!   live-monitor drop rates) regresses in the *opposite* direction: it
//!   flags when the value **rises** more than [`DROP_EPSILON`] percentage
//!   points above base, or newly appears above [`DROP_EPSILON`].

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::json::Json;
use crate::report::RunReport;

/// The schema identifier written into every ledger document.
pub const SCHEMA: &str = "jcc-ledger/v1";

/// Throughput keys may lose at most 20% before flagging (matches the CI
/// perf guard).
pub const THROUGHPUT_FLOOR: f64 = 0.8;

/// Coverage keys may lose at most this many percentage points.
pub const COVERAGE_EPSILON: f64 = 0.5;

/// Drop-rate keys may rise at most this many percentage points before the
/// monitor is considered to be shedding events it used to keep.
pub const DROP_EPSILON: f64 = 0.5;

/// One counter whose value differs between two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Value in the base run (0 when absent there).
    pub base: u64,
    /// Value in the current run (0 when absent there).
    pub current: u64,
}

impl CounterDelta {
    /// Signed change, current − base.
    pub fn delta(&self) -> i64 {
        self.current as i64 - self.base as i64
    }
}

/// One derived value compared between two runs. A side is `None` when the
/// key is absent in that run.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedDelta {
    /// Derived key (e.g. `states_per_sec`, `arc_coverage_pct`).
    pub name: String,
    /// Base-run value.
    pub base: Option<f64>,
    /// Current-run value.
    pub current: Option<f64>,
}

impl DerivedDelta {
    /// Percentage change relative to base; `None` when either side is
    /// missing or base is zero.
    pub fn pct_change(&self) -> Option<f64> {
        match (self.base, self.current) {
            (Some(b), Some(c)) if b != 0.0 => Some((c - b) / b * 100.0),
            _ => None,
        }
    }
}

/// The pairwise diff of two [`RunReport`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Producing binary of the base run.
    pub base_bin: String,
    /// Producing binary of the current run.
    pub current_bin: String,
    /// Base run wall-clock, seconds.
    pub base_wall_seconds: f64,
    /// Current run wall-clock, seconds.
    pub current_wall_seconds: f64,
    /// Counters whose values differ, name-sorted (absent = 0).
    pub counters_changed: Vec<CounterDelta>,
    /// How many counters (union of both runs) were identical.
    pub counters_unchanged: u64,
    /// Every derived key from either run, name-sorted.
    pub derived: Vec<DerivedDelta>,
    /// Human descriptions of each regression the rules flagged.
    pub regressions: Vec<String>,
}

fn is_throughput_key(name: &str) -> bool {
    name.ends_with("_per_sec")
}

fn is_coverage_key(name: &str) -> bool {
    name.ends_with("_pct") && name.contains("coverage")
}

fn is_drop_rate_key(name: &str) -> bool {
    name.ends_with("_pct") && name.contains("drop")
}

/// Diff `current` against `base` and flag regressions.
pub fn diff_reports(base: &RunReport, current: &RunReport) -> LedgerEntry {
    let counter_names: BTreeSet<&String> =
        base.counters.keys().chain(current.counters.keys()).collect();
    let mut counters_changed = Vec::new();
    let mut counters_unchanged = 0u64;
    for name in counter_names {
        let b = base.counter(name);
        let c = current.counter(name);
        if b == c {
            counters_unchanged += 1;
        } else {
            counters_changed.push(CounterDelta {
                name: name.clone(),
                base: b,
                current: c,
            });
        }
    }

    let derived_names: BTreeSet<&String> =
        base.derived.keys().chain(current.derived.keys()).collect();
    let mut derived = Vec::new();
    let mut regressions = Vec::new();
    for name in derived_names {
        let d = DerivedDelta {
            name: name.clone(),
            base: base.derived.get(name).copied(),
            current: current.derived.get(name).copied(),
        };
        match (d.base, d.current) {
            (Some(b), Some(c)) if is_throughput_key(name) && b > 0.0 && c < b * THROUGHPUT_FLOOR => {
                regressions.push(format!(
                    "{name} fell {b:.1} -> {c:.1} (below {:.0}% floor)",
                    THROUGHPUT_FLOOR * 100.0
                ));
            }
            (Some(b), Some(c)) if is_coverage_key(name) && c < b - COVERAGE_EPSILON => {
                regressions.push(format!(
                    "{name} dropped {b:.1} -> {c:.1} (more than {COVERAGE_EPSILON} points)"
                ));
            }
            (Some(b), None) if is_coverage_key(name) => {
                regressions.push(format!("{name} disappeared (was {b:.1})"));
            }
            (Some(b), Some(c)) if is_drop_rate_key(name) && c > b + DROP_EPSILON => {
                regressions.push(format!(
                    "{name} rose {b:.1} -> {c:.1} (more than {DROP_EPSILON} points)"
                ));
            }
            (None, Some(c)) if is_drop_rate_key(name) && c > DROP_EPSILON => {
                regressions.push(format!("{name} appeared at {c:.1} (above {DROP_EPSILON})"));
            }
            _ => {}
        }
        derived.push(d);
    }

    LedgerEntry {
        base_bin: base.bin.clone(),
        current_bin: current.bin.clone(),
        base_wall_seconds: base.wall_seconds,
        current_wall_seconds: current.wall_seconds,
        counters_changed,
        counters_unchanged,
        derived,
        regressions,
    }
}

/// A sequence of pairwise run diffs. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Ledger {
    /// One entry per consecutive report pair, in input order.
    pub entries: Vec<LedgerEntry>,
}

impl Ledger {
    /// Diff each consecutive pair of `reports` (n reports → n−1 entries).
    pub fn from_reports(reports: &[RunReport]) -> Ledger {
        Ledger {
            entries: reports
                .windows(2)
                .map(|w| diff_reports(&w[0], &w[1]))
                .collect(),
        }
    }

    /// Total regressions flagged across all entries.
    pub fn regression_count(&self) -> usize {
        self.entries.iter().map(|e| e.regressions.len()).sum()
    }

    /// Serialize to the `jcc-ledger/v1` JSON value.
    pub fn to_json(&self) -> Json {
        let opt_num = |v: Option<f64>| match v {
            Some(n) => Json::Num(n),
            None => Json::Null,
        };
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Json::obj([
                    ("base_bin".to_string(), Json::Str(e.base_bin.clone())),
                    ("current_bin".to_string(), Json::Str(e.current_bin.clone())),
                    (
                        "base_wall_seconds".to_string(),
                        Json::Num(e.base_wall_seconds),
                    ),
                    (
                        "current_wall_seconds".to_string(),
                        Json::Num(e.current_wall_seconds),
                    ),
                    (
                        "counters_changed".to_string(),
                        Json::Arr(
                            e.counters_changed
                                .iter()
                                .map(|c| {
                                    Json::obj([
                                        ("name".to_string(), Json::Str(c.name.clone())),
                                        ("base".to_string(), Json::Num(c.base as f64)),
                                        ("current".to_string(), Json::Num(c.current as f64)),
                                        ("delta".to_string(), Json::Num(c.delta() as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "counters_unchanged".to_string(),
                        Json::Num(e.counters_unchanged as f64),
                    ),
                    (
                        "derived".to_string(),
                        Json::Arr(
                            e.derived
                                .iter()
                                .map(|d| {
                                    Json::obj([
                                        ("name".to_string(), Json::Str(d.name.clone())),
                                        ("base".to_string(), opt_num(d.base)),
                                        ("current".to_string(), opt_num(d.current)),
                                        ("pct_change".to_string(), opt_num(d.pct_change())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "regressions".to_string(),
                        Json::Arr(
                            e.regressions
                                .iter()
                                .map(|r| Json::Str(r.clone()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            (
                "comparisons".to_string(),
                Json::Num(self.entries.len() as f64),
            ),
            (
                "regression_count".to_string(),
                Json::Num(self.regression_count() as f64),
            ),
            ("entries".to_string(), Json::Arr(entries)),
        ])
    }

    /// Serialize to pretty JSON text (one trailing newline) — the
    /// `jcc-ledger.json` file format.
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_pretty();
        s.push('\n');
        s
    }

    /// The human table `jcc-report` prints.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "jcc-report — cross-run ledger ({} comparison{}, {} regression{})",
            self.entries.len(),
            if self.entries.len() == 1 { "" } else { "s" },
            self.regression_count(),
            if self.regression_count() == 1 { "" } else { "s" },
        );
        for (i, e) in self.entries.iter().enumerate() {
            let _ = writeln!(
                out,
                "-- [{i}] {} ({:.3}s) -> {} ({:.3}s) --",
                e.base_bin, e.base_wall_seconds, e.current_bin, e.current_wall_seconds
            );
            let _ = writeln!(
                out,
                "  counters: {} unchanged, {} changed",
                e.counters_unchanged,
                e.counters_changed.len()
            );
            for c in &e.counters_changed {
                let _ = writeln!(
                    out,
                    "    {:<40} {:>12} -> {:<12} ({:+})",
                    c.name,
                    c.base,
                    c.current,
                    c.delta()
                );
            }
            if !e.derived.is_empty() {
                let _ = writeln!(out, "  derived:");
                for d in &e.derived {
                    let fmt_side = |v: Option<f64>| match v {
                        Some(n) => format!("{n:.1}"),
                        None => "absent".to_string(),
                    };
                    let pct = match d.pct_change() {
                        Some(p) => format!(" ({p:+.1}%)"),
                        None => String::new(),
                    };
                    let _ = writeln!(
                        out,
                        "    {:<40} {:>12} -> {:<12}{pct}",
                        d.name,
                        fmt_side(d.base),
                        fmt_side(d.current)
                    );
                }
            }
            match e.regressions.len() {
                0 => {
                    let _ = writeln!(out, "  regressions: none");
                }
                _ => {
                    let _ = writeln!(out, "  regressions:");
                    for r in &e.regressions {
                        let _ = writeln!(out, "    REGRESSION: {r}");
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::ObsLevel;
    use crate::metrics::Registry;

    fn report(states: u64, rate: f64, coverage: Option<f64>) -> RunReport {
        let reg = Registry::new();
        reg.counter("vm.explore.states").add(states);
        reg.counter("transition.T1").add(17);
        let mut r = RunReport::from_registry("e8_statespace", ObsLevel::Summary, 1.0, &reg);
        r.set_derived("states_per_sec", rate);
        if let Some(c) = coverage {
            r.set_derived("arc_coverage_pct", c);
        }
        r
    }

    #[test]
    fn self_diff_has_zero_regressions() {
        let r = report(1000, 450_000.0, Some(60.0));
        let ledger = Ledger::from_reports(&[r.clone(), r]);
        assert_eq!(ledger.entries.len(), 1);
        assert_eq!(ledger.regression_count(), 0);
        assert!(ledger.entries[0].counters_changed.is_empty());
        assert_eq!(ledger.entries[0].counters_unchanged, 2);
    }

    #[test]
    fn counter_deltas_are_reported() {
        let a = report(1000, 450_000.0, None);
        let b = report(1016, 450_000.0, None);
        let e = diff_reports(&a, &b);
        assert_eq!(e.counters_changed.len(), 1);
        assert_eq!(e.counters_changed[0].name, "vm.explore.states");
        assert_eq!(e.counters_changed[0].delta(), 16);
        assert_eq!(e.counters_unchanged, 1);
    }

    #[test]
    fn throughput_floor_flags_regression() {
        let a = report(1000, 450_000.0, None);
        let ok = report(1000, 380_000.0, None);
        assert_eq!(diff_reports(&a, &ok).regressions.len(), 0, "within floor");
        let bad = report(1000, 300_000.0, None);
        let e = diff_reports(&a, &bad);
        assert_eq!(e.regressions.len(), 1, "{:?}", e.regressions);
        assert!(e.regressions[0].contains("states_per_sec"));
    }

    #[test]
    fn coverage_drop_and_disappearance_flag_regressions() {
        let a = report(1000, 450_000.0, Some(60.0));
        let small_drift = report(1000, 450_000.0, Some(59.8));
        assert_eq!(diff_reports(&a, &small_drift).regressions.len(), 0);
        let dropped = report(1000, 450_000.0, Some(50.0));
        assert_eq!(diff_reports(&a, &dropped).regressions.len(), 1);
        let gone = report(1000, 450_000.0, None);
        let e = diff_reports(&a, &gone);
        assert_eq!(e.regressions.len(), 1, "{:?}", e.regressions);
        assert!(e.regressions[0].contains("disappeared"));
    }

    /// A report shaped like the E11 corpus sweep writes it: per-size
    /// census and throughput keys, the ladder length, and the curve
    /// fingerprint — but no coverage key.
    fn e11_report(scale: f64) -> RunReport {
        let reg = Registry::new();
        reg.counter("vm.explore.states").add(162_159);
        let mut r = RunReport::from_registry("e11_corpus_sweep", ObsLevel::Summary, 2.5, &reg);
        for (n, states) in [(1u32, 339.0), (2, 12_032.0), (3, 48_415.0), (4, 101_373.0)] {
            r.set_derived(&format!("size{n}_states"), states);
            r.set_derived(&format!("size{n}_states_per_sec"), states / 0.4 * scale);
            r.set_derived(&format!("size{n}_diag_count"), 2.0 * n as f64);
        }
        r.set_derived("sweep_sizes", 4.0);
        r.set_derived("curve_fnv1a", 1.234e15);
        r.set_derived("states_per_sec", 63_000.0 * scale);
        r
    }

    #[test]
    fn e11_sweep_report_roundtrips_and_self_diffs_clean() {
        let r = e11_report(1.0);
        let back = RunReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r, "BENCH_e11.json round-trips losslessly");
        let ledger = Ledger::from_reports(&[back, r]);
        assert_eq!(ledger.regression_count(), 0, "self-diff is the CI smoke");
        let derived_names: Vec<&str> = ledger.entries[0]
            .derived
            .iter()
            .map(|d| d.name.as_str())
            .collect();
        for key in ["size1_states", "size4_states_per_sec", "sweep_sizes", "curve_fnv1a"] {
            assert!(derived_names.contains(&key), "missing {key} in {derived_names:?}");
        }
    }

    #[test]
    fn e11_throughput_drop_fires_the_per_sec_rule() {
        let base = e11_report(1.0);
        let slowed = e11_report(0.7);
        let e = diff_reports(&base, &slowed);
        // Every *_per_sec key fell to 0.7x (< the 0.8 floor): the aggregate
        // plus one per ladder size. The census and diag-count keys are not
        // throughput keys and must stay quiet.
        assert_eq!(e.regressions.len(), 5, "{:?}", e.regressions);
        assert!(e.regressions.iter().any(|r| r.contains("states_per_sec")));
        assert!(e
            .regressions
            .iter()
            .all(|r| !r.contains("_states ") && !r.contains("diag_count")));
    }

    #[test]
    fn older_e11_reports_without_per_size_keys_still_diff() {
        // An old-format BENCH_e11.json (before the per-size curve keys)
        // must still parse leniently and diff against a new report without
        // phantom regressions: a *_per_sec key present on only one side is
        // not a throughput regression (only coverage keys flag absence).
        let old_text: String = {
            let mut r = e11_report(1.0);
            r.derived.retain(|k, _| !k.starts_with("size"));
            r.to_json_string()
        };
        let old = RunReport::from_json_str(&old_text).expect("old-format report parses");
        let e = diff_reports(&old, &e11_report(1.0));
        assert_eq!(e.regressions.len(), 0, "{:?}", e.regressions);
        let appeared = e
            .derived
            .iter()
            .filter(|d| d.base.is_none() && d.current.is_some())
            .count();
        assert_eq!(appeared, 12, "4 sizes x (states, states_per_sec, diag_count)");
    }

    /// A report shaped like the E12 live-monitor bench writes it: capture
    /// throughput, overhead, drop rate, and latency percentiles.
    fn e12_report(drop_rate: f64, events_per_sec: f64) -> RunReport {
        let reg = Registry::new();
        reg.counter("runtime.events").add(2_000_000);
        reg.counter("runtime.capture.dropped").add((drop_rate * 20_000.0) as u64);
        let mut r = RunReport::from_registry("e12_live_monitor", ObsLevel::Summary, 3.0, &reg);
        r.set_derived("events_per_sec", events_per_sec);
        r.set_derived("capture_overhead_pct", 2.4);
        r.set_derived("drop_rate_pct", drop_rate);
        r.set_derived("capture_latency_p50_ns", 64.0);
        r.set_derived("capture_latency_p99_ns", 512.0);
        r
    }

    #[test]
    fn e12_report_self_diffs_clean_and_roundtrips() {
        let r = e12_report(0.0, 4_000_000.0);
        let back = RunReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r, "BENCH_e12.json round-trips losslessly");
        let ledger = Ledger::from_reports(&[back, r]);
        assert_eq!(ledger.regression_count(), 0, "self-diff is the CI smoke");
        let derived_names: Vec<&str> = ledger.entries[0]
            .derived
            .iter()
            .map(|d| d.name.as_str())
            .collect();
        for key in ["events_per_sec", "capture_overhead_pct", "drop_rate_pct"] {
            assert!(derived_names.contains(&key), "missing {key} in {derived_names:?}");
        }
    }

    #[test]
    fn drop_rate_rise_fires_a_regression() {
        let base = e12_report(0.0, 4_000_000.0);
        let drift = e12_report(0.3, 4_000_000.0);
        assert_eq!(
            diff_reports(&base, &drift).regressions.len(),
            0,
            "rises within DROP_EPSILON stay quiet"
        );
        let shedding = e12_report(4.2, 4_000_000.0);
        let e = diff_reports(&base, &shedding);
        assert_eq!(e.regressions.len(), 1, "{:?}", e.regressions);
        assert!(e.regressions[0].contains("drop_rate_pct"), "{:?}", e.regressions);
        assert!(e.regressions[0].contains("rose"), "{:?}", e.regressions);
    }

    #[test]
    fn drop_rate_improvement_and_disappearance_stay_quiet() {
        let base = e12_report(4.2, 4_000_000.0);
        let better = e12_report(0.0, 4_000_000.0);
        assert_eq!(diff_reports(&base, &better).regressions.len(), 0);
        // Unlike coverage keys, a drop-rate key vanishing is not a
        // regression — an uninstrumented comparison run just lacks it.
        let mut gone = e12_report(0.0, 4_000_000.0);
        gone.derived.retain(|k, _| k != "drop_rate_pct");
        assert_eq!(diff_reports(&base, &gone).regressions.len(), 0);
    }

    #[test]
    fn drop_rate_appearing_above_epsilon_fires() {
        let mut base = e12_report(0.0, 4_000_000.0);
        base.derived.retain(|k, _| k != "drop_rate_pct");
        let appeared = e12_report(2.0, 4_000_000.0);
        let e = diff_reports(&base, &appeared);
        assert_eq!(e.regressions.len(), 1, "{:?}", e.regressions);
        assert!(e.regressions[0].contains("appeared"), "{:?}", e.regressions);
        let tiny = e12_report(0.2, 4_000_000.0);
        assert_eq!(diff_reports(&base, &tiny).regressions.len(), 0);
    }

    /// A report shaped like the E13 Java-frontend bench writes it:
    /// corpus census keys plus the `java_loc_per_sec` full-pipeline
    /// throughput figure (and the always-present `states_per_sec`, 0 for
    /// a bench that explores nothing).
    fn e13_report(loc_per_sec: f64) -> RunReport {
        let reg = Registry::new();
        reg.counter("analyze.components").add(720);
        reg.counter("analyze.diagnostics").add(630);
        let mut r = RunReport::from_registry("e13_java_frontend", ObsLevel::Summary, 0.02, &reg);
        r.set_derived("java_loc_per_sec", loc_per_sec);
        r.set_derived("java_files", 16.0);
        r.set_derived("java_loc", 305.0);
        r.set_derived("java_findings_total", 14.0);
        r.set_derived("java_high_findings_clean", 0.0);
        r.set_derived("states_per_sec", 0.0);
        r
    }

    #[test]
    fn e13_report_self_diffs_clean_and_roundtrips() {
        let r = e13_report(800_000.0);
        let back = RunReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r, "BENCH_e13.json round-trips losslessly");
        let ledger = Ledger::from_reports(&[back, r]);
        assert_eq!(ledger.regression_count(), 0, "self-diff is the CI smoke");
        let derived_names: Vec<&str> = ledger.entries[0]
            .derived
            .iter()
            .map(|d| d.name.as_str())
            .collect();
        for key in ["java_loc_per_sec", "java_files", "java_loc", "java_findings_total"] {
            assert!(derived_names.contains(&key), "missing {key} in {derived_names:?}");
        }
    }

    #[test]
    fn e13_loc_throughput_drop_fires_the_per_sec_rule() {
        // `java_loc_per_sec` ends in `_per_sec`, so the generic throughput
        // floor covers the Java frontend with no ledger changes — the same
        // 0.8x rule the CI perf guard applies against the e13 baseline.
        let base = e13_report(800_000.0);
        let ok = diff_reports(&base, &e13_report(700_000.0));
        assert_eq!(ok.regressions.len(), 0, "within floor: {:?}", ok.regressions);
        let e = diff_reports(&base, &e13_report(500_000.0));
        assert_eq!(e.regressions.len(), 1, "{:?}", e.regressions);
        assert!(e.regressions[0].contains("java_loc_per_sec"), "{:?}", e.regressions);
        // The census keys are not throughput keys and must stay quiet even
        // when they move.
        let mut fewer = e13_report(800_000.0);
        fewer.derived.insert("java_findings_total".into(), 9.0);
        fewer.derived.insert("java_loc".into(), 250.0);
        assert_eq!(diff_reports(&base, &fewer).regressions.len(), 0);
    }

    /// A report shaped like the E14 live-introspection bench writes it:
    /// exploration throughput with the full live stack on, the
    /// introspection overhead subtraction, and the heartbeat / profiler
    /// activity rates.
    fn e14_report(overhead_pct: f64, heartbeats_per_sec: f64) -> RunReport {
        let reg = Registry::new();
        reg.counter("petri.reach.states").add(2187);
        reg.counter("live.heartbeat.count").add(12);
        reg.counter("live.profiler.samples").add(40);
        let mut r =
            RunReport::from_registry("e14_live_introspection", ObsLevel::Summary, 1.5, &reg);
        r.set_derived("states_per_sec", 80_000.0);
        r.set_derived("introspection_overhead_pct", overhead_pct);
        r.set_derived("introspection_noise_floor_pct", 0.1);
        r.set_derived("heartbeats_per_sec", heartbeats_per_sec);
        r.set_derived("profiler_samples_per_sec", 180.0);
        r
    }

    #[test]
    fn e14_report_self_diffs_clean_and_roundtrips() {
        let r = e14_report(1.8, 8.0);
        let back = RunReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r, "BENCH_e14.json round-trips losslessly");
        let ledger = Ledger::from_reports(&[back, r]);
        assert_eq!(ledger.regression_count(), 0, "self-diff is the CI smoke");
        let derived_names: Vec<&str> = ledger.entries[0]
            .derived
            .iter()
            .map(|d| d.name.as_str())
            .collect();
        for key in [
            "introspection_overhead_pct",
            "heartbeats_per_sec",
            "profiler_samples_per_sec",
        ] {
            assert!(derived_names.contains(&key), "missing {key} in {derived_names:?}");
        }
    }

    #[test]
    fn e14_heartbeat_rate_drop_fires_the_per_sec_rule() {
        // `heartbeats_per_sec` and `profiler_samples_per_sec` end in
        // `_per_sec`, so the generic throughput floor covers the live
        // stack's activity rates with no ledger changes.
        let base = e14_report(1.8, 8.0);
        let ok = diff_reports(&base, &e14_report(1.8, 7.0));
        assert_eq!(ok.regressions.len(), 0, "within floor: {:?}", ok.regressions);
        let e = diff_reports(&base, &e14_report(1.8, 2.0));
        assert_eq!(e.regressions.len(), 1, "{:?}", e.regressions);
        assert!(e.regressions[0].contains("heartbeats_per_sec"), "{:?}", e.regressions);
    }

    #[test]
    fn e14_overhead_is_budgeted_by_perf_guard_not_the_ledger() {
        // `introspection_overhead_pct` is neither a coverage nor a drop
        // key: the ledger records the movement but never flags it — the
        // absolute 5% budget lives in the CI perf guard
        // (`max_introspection_overhead_pct`), where a cap belongs.
        let base = e14_report(0.5, 8.0);
        let worse = e14_report(4.9, 8.0);
        let e = diff_reports(&base, &worse);
        assert_eq!(e.regressions.len(), 0, "{:?}", e.regressions);
        assert!(e
            .derived
            .iter()
            .any(|d| d.name == "introspection_overhead_pct" && d.current == Some(4.9)));
    }

    #[test]
    fn older_reports_without_e14_keys_still_diff() {
        // A pre-E14 report (no live-introspection keys) parses leniently
        // and diffs against a new one without phantom regressions: the
        // `_per_sec` rule only fires when both sides carry the key.
        let old_text = {
            let mut r = e14_report(1.8, 8.0);
            r.derived.retain(|k, _| k == "states_per_sec");
            r.to_json_string()
        };
        let old = RunReport::from_json_str(&old_text).expect("old-format report parses");
        let e = diff_reports(&old, &e14_report(1.8, 8.0));
        assert_eq!(e.regressions.len(), 0, "{:?}", e.regressions);
        let appeared = e
            .derived
            .iter()
            .filter(|d| d.base.is_none() && d.current.is_some())
            .count();
        assert_eq!(appeared, 4, "the four live-introspection keys appeared");
    }

    #[test]
    fn ledger_json_is_deterministic_and_tagged() {
        let a = report(1000, 450_000.0, Some(60.0));
        let b = report(1016, 440_000.0, Some(60.0));
        let l1 = Ledger::from_reports(&[a.clone(), b.clone()]);
        let l2 = Ledger::from_reports(&[a, b]);
        assert_eq!(l1.to_json_string(), l2.to_json_string());
        let parsed = Json::parse(&l1.to_json_string()).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(parsed.get("comparisons").unwrap().as_u64(), Some(1));
        let table = l1.render_table();
        assert!(table.contains("vm.explore.states"), "{table}");
        assert!(table.contains("regressions: none"), "{table}");
    }
}
