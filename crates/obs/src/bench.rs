//! [`BenchReporter`] — the front door for the `jcc-bench` binaries.
//!
//! Every binary starts with `BenchReporter::init("e8_statespace")` and ends
//! with `reporter.finish()`. `init` resolves the shared knob — the
//! `JCC_OBS=off|summary|trace` environment variable (default `summary`) and
//! the `--quiet` flag (suppress human output; the JSON report is still
//! written) — resets the global registry so the report covers exactly this
//! run, and starts the wall clock. `finish` snapshots everything into a
//! [`RunReport`], derives `states_per_sec`, writes `BENCH_<prefix>.json`
//! (prefix = bin name up to the first `_`, e.g. `BENCH_e8.json`), appends
//! the JSONL trace at `trace` level, and prints the summary unless quiet.

use std::path::PathBuf;
use std::time::Instant;

use crate::level::{set_level, ObsLevel};
use crate::metrics::global;
use crate::report::RunReport;
use crate::trace::{drain_trace, to_jsonl};

/// Per-binary run reporter; see the module docs.
#[derive(Debug)]
pub struct BenchReporter {
    bin: String,
    level: ObsLevel,
    quiet: bool,
    start: Instant,
    derived: Vec<(String, f64)>,
}

/// Resolve the level and quiet flag from an explicit argument list
/// (`--quiet`/`-q`, `--obs=LEVEL`) and the `JCC_OBS` variable. Flags win
/// over the environment; the default level is `summary`.
pub fn parse_knobs(args: impl IntoIterator<Item = String>) -> (ObsLevel, bool) {
    let mut level = crate::level::level_from_env();
    let mut quiet = false;
    for arg in args {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            other => {
                if let Some(v) = other.strip_prefix("--obs=") {
                    level = ObsLevel::parse(v);
                }
            }
        }
    }
    (level, quiet)
}

impl BenchReporter {
    /// Initialize reporting for `bin`: parse the process's knobs, set the
    /// global level, zero the global registry and trace buffer, and start
    /// the wall clock.
    pub fn init(bin: &str) -> BenchReporter {
        let (level, quiet) = parse_knobs(std::env::args().skip(1));
        Self::init_with(bin, level, quiet)
    }

    /// [`BenchReporter::init`] with explicit knobs (used by tests and by
    /// binaries that re-run themselves at a different level).
    pub fn init_with(bin: &str, level: ObsLevel, quiet: bool) -> BenchReporter {
        set_level(level);
        global().reset();
        drain_trace();
        BenchReporter {
            bin: bin.to_string(),
            level,
            quiet,
            start: Instant::now(),
            derived: Vec::new(),
        }
    }

    /// True when `--quiet` was given: the binary should print nothing
    /// except hard errors.
    pub fn quiet(&self) -> bool {
        self.quiet
    }

    /// The level this run records at.
    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// Add a derived value to the final report.
    pub fn set_derived(&mut self, name: &str, value: f64) {
        self.derived.push((name.to_string(), value));
    }

    /// Where the report will be written: `$JCC_OBS_DIR` (or the working
    /// directory) + `BENCH_<prefix>.json`.
    pub fn report_path(&self) -> PathBuf {
        let prefix = self.bin.split('_').next().unwrap_or(&self.bin);
        let dir = std::env::var("JCC_OBS_DIR").unwrap_or_else(|_| ".".to_string());
        PathBuf::from(dir).join(format!("BENCH_{prefix}.json"))
    }

    /// Write a schedule timeline next to the run report as a Chrome Trace
    /// Event Format file (`BENCH_<prefix>.chrome_trace.json`), gated by
    /// the same knobs as everything else: a no-op returning `None` when
    /// the level is `off`. Returns the path written.
    pub fn write_chrome_trace(&self, timeline: &crate::timeline::Timeline) -> Option<PathBuf> {
        if self.level < ObsLevel::Summary {
            return None;
        }
        let path = self.report_path().with_extension("chrome_trace.json");
        match std::fs::write(&path, timeline.to_chrome_string()) {
            Ok(()) => {
                if !self.quiet {
                    println!("obs: chrome trace written to {}", path.display());
                }
                Some(path)
            }
            Err(e) => {
                eprintln!("obs: cannot write {}: {e}", path.display());
                None
            }
        }
    }

    /// Build the report, write the JSON file (and the JSONL trace at
    /// `trace` level), print the summary unless quiet, and return the
    /// report.
    pub fn finish(self) -> RunReport {
        let wall = self.start.elapsed().as_secs_f64();
        let reg = global();
        let mut report = RunReport::from_registry(&self.bin, self.level, wall, reg);
        // The canonical throughput figure: states discovered anywhere in
        // the run (petri reachability + VM exploration) per wall second.
        let states =
            report.counter("petri.reach.states") + report.counter("vm.explore.states");
        report.set_derived("states_per_sec", states as f64 / wall.max(1e-9));
        for (k, v) in &self.derived {
            report.set_derived(k, *v);
        }

        let path = self.report_path();
        if let Err(e) = report.write_to(&path) {
            eprintln!("obs: cannot write {}: {e}", path.display());
        }
        if self.level >= ObsLevel::Trace {
            let (records, dropped) = drain_trace();
            let trace_path = path.with_extension("trace.jsonl");
            if let Err(e) = std::fs::write(&trace_path, to_jsonl(&records)) {
                eprintln!("obs: cannot write {}: {e}", trace_path.display());
            } else if !self.quiet {
                println!(
                    "obs: wrote {} trace records to {}{}",
                    records.len(),
                    trace_path.display(),
                    if dropped > 0 {
                        format!(" ({dropped} dropped at capacity)")
                    } else {
                        String::new()
                    }
                );
            }
        }
        if !self.quiet {
            println!("{}", report.render_summary());
            println!("obs: report written to {}", path.display());
        }
        set_level(ObsLevel::Off);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // Flags win regardless of env (env default covered in level.rs).
        let (level, quiet) = parse_knobs(args(&["--quiet", "--obs=off"]));
        assert_eq!(level, ObsLevel::Off);
        assert!(quiet);
        let (level, quiet) = parse_knobs(args(&["-q", "--obs=trace"]));
        assert_eq!(level, ObsLevel::Trace);
        assert!(quiet);
        let (_, quiet) = parse_knobs(args(&["positional"]));
        assert!(!quiet);
    }

    #[test]
    fn report_path_uses_bin_prefix() {
        let r = BenchReporter {
            bin: "e8_statespace".into(),
            level: ObsLevel::Off,
            quiet: true,
            start: Instant::now(),
            derived: Vec::new(),
        };
        assert!(r
            .report_path()
            .to_string_lossy()
            .ends_with("BENCH_e8.json"));
    }
}
