//! The stable machine-readable run report (`jcc-obs/v1`).
//!
//! A [`RunReport`] is a complete snapshot of a run: every counter and
//! gauge, per-phase wall-clock (one [`PhaseReport`] per `span.*`
//! histogram), non-span histograms, and derived rates the producing binary
//! computed (e.g. `states_per_sec`). It renders as pretty JSON (the
//! `BENCH_<bin>.json` files), parses back losslessly, and has a
//! human-readable summary form.

use std::collections::BTreeMap;

use crate::json::{Json, ParseError};
use crate::level::ObsLevel;
use crate::metrics::{HistogramSnapshot, Registry};

/// The schema identifier written into every report.
pub const SCHEMA: &str = "jcc-obs/v1";

/// Wall-clock of one phase (span), aggregated over its occurrences.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Span name (without the `span.` prefix).
    pub name: String,
    /// Times the span ran.
    pub count: u64,
    /// Total wall-clock across occurrences, in seconds.
    pub total_seconds: f64,
    /// Shortest single occurrence, nanoseconds.
    pub min_nanos: u64,
    /// Longest single occurrence, nanoseconds.
    pub max_nanos: u64,
    /// Estimated median occurrence, nanoseconds
    /// (see [`HistogramSnapshot::percentile`]).
    pub p50_nanos: u64,
    /// Estimated 90th-percentile occurrence, nanoseconds.
    pub p90_nanos: u64,
    /// Estimated 99th-percentile occurrence, nanoseconds.
    pub p99_nanos: u64,
    /// Non-empty log2 latency buckets as `(bucket, count)`;
    /// [`crate::metrics::Histogram::bucket_floor`] gives a bucket's lower
    /// bound in ns.
    pub buckets: Vec<(u32, u64)>,
}

impl PhaseReport {
    fn from_snapshot(name: &str, snap: &HistogramSnapshot) -> PhaseReport {
        PhaseReport {
            name: name.to_string(),
            count: snap.count,
            total_seconds: snap.sum as f64 / 1e9,
            min_nanos: snap.min,
            max_nanos: snap.max,
            p50_nanos: snap.percentile(50.0).unwrap_or(0),
            p90_nanos: snap.percentile(90.0).unwrap_or(0),
            p99_nanos: snap.percentile(99.0).unwrap_or(0),
            buckets: snap.buckets.clone(),
        }
    }

    /// Reconstruct the bucket view this report was built from (sum is
    /// lossy: only `total_seconds` survives serialization).
    fn as_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: (self.total_seconds * 1e9) as u64,
            min: self.min_nanos,
            max: self.max_nanos,
            buckets: self.buckets.clone(),
        }
    }
}

/// A machine-readable report of one run. See the module docs for the
/// schema; field order below matches the rendered JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Always [`SCHEMA`] when produced by this crate version.
    pub schema: String,
    /// The producing binary (e.g. `e8_statespace`).
    pub bin: String,
    /// Recording level the run used.
    pub level: String,
    /// Total run wall-clock, seconds.
    pub wall_seconds: f64,
    /// Every counter, name-sorted.
    pub counters: BTreeMap<String, u64>,
    /// Every gauge, name-sorted.
    pub gauges: BTreeMap<String, u64>,
    /// Per-phase wall-clock (from `span.*` histograms), name-sorted.
    pub phases: Vec<PhaseReport>,
    /// Non-span histograms, name-sorted.
    pub histograms: Vec<PhaseReport>,
    /// Derived rates/ratios computed by the producing binary.
    pub derived: BTreeMap<String, f64>,
}

impl RunReport {
    /// Snapshot `registry` into a report.
    pub fn from_registry(
        bin: &str,
        level: ObsLevel,
        wall_seconds: f64,
        registry: &Registry,
    ) -> RunReport {
        let mut phases = Vec::new();
        let mut histograms = Vec::new();
        for (name, snap) in registry.histogram_values() {
            match name.strip_prefix("span.") {
                Some(span_name) => phases.push(PhaseReport::from_snapshot(span_name, &snap)),
                None => histograms.push(PhaseReport::from_snapshot(&name, &snap)),
            }
        }
        RunReport {
            schema: SCHEMA.to_string(),
            bin: bin.to_string(),
            level: level.name().to_string(),
            wall_seconds,
            counters: registry.counter_values().into_iter().collect(),
            gauges: registry.gauge_values().into_iter().collect(),
            phases,
            histograms,
            derived: BTreeMap::new(),
        }
    }

    /// Record a derived value (rate, ratio, percentage).
    pub fn set_derived(&mut self, name: &str, value: f64) {
        self.derived.insert(name.to_string(), value);
    }

    /// Convenience: the counter's value, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Serialize to the report's JSON value.
    pub fn to_json(&self) -> Json {
        let phase_arr = |items: &[PhaseReport]| {
            Json::Arr(
                items
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("name".to_string(), Json::Str(p.name.clone())),
                            ("count".to_string(), Json::Num(p.count as f64)),
                            (
                                "total_seconds".to_string(),
                                Json::Num(p.total_seconds),
                            ),
                            ("min_nanos".to_string(), Json::Num(p.min_nanos as f64)),
                            ("max_nanos".to_string(), Json::Num(p.max_nanos as f64)),
                            ("p50_nanos".to_string(), Json::Num(p.p50_nanos as f64)),
                            ("p90_nanos".to_string(), Json::Num(p.p90_nanos as f64)),
                            ("p99_nanos".to_string(), Json::Num(p.p99_nanos as f64)),
                            (
                                "buckets".to_string(),
                                Json::Arr(
                                    p.buckets
                                        .iter()
                                        .map(|&(i, n)| {
                                            Json::Arr(vec![
                                                Json::Num(i as f64),
                                                Json::Num(n as f64),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            )
        };
        let num_map = |m: &BTreeMap<String, u64>| {
            Json::obj(m.iter().map(|(k, &v)| (k.clone(), Json::Num(v as f64))))
        };
        Json::obj([
            ("schema".to_string(), Json::Str(self.schema.clone())),
            ("bin".to_string(), Json::Str(self.bin.clone())),
            ("level".to_string(), Json::Str(self.level.clone())),
            ("wall_seconds".to_string(), Json::Num(self.wall_seconds)),
            ("counters".to_string(), num_map(&self.counters)),
            ("gauges".to_string(), num_map(&self.gauges)),
            ("phases".to_string(), phase_arr(&self.phases)),
            ("histograms".to_string(), phase_arr(&self.histograms)),
            (
                "derived".to_string(),
                Json::obj(
                    self.derived
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Num(v))),
                ),
            ),
        ])
    }

    /// Serialize to pretty JSON — the `BENCH_<bin>.json` file format.
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_pretty();
        s.push('\n');
        s
    }

    /// Parse a report back from its JSON text, checking the schema tag.
    pub fn from_json_str(text: &str) -> Result<RunReport, ParseError> {
        let v = Json::parse(text)?;
        Self::from_json(&v).ok_or(ParseError {
            message: format!("not a {SCHEMA} report"),
            offset: 0,
        })
    }

    /// Parse a report from a JSON value. `None` when the shape or schema
    /// tag is wrong.
    pub fn from_json(v: &Json) -> Option<RunReport> {
        let schema = v.get("schema")?.as_str()?;
        if schema != SCHEMA {
            return None;
        }
        let num_map = |key: &str| -> Option<BTreeMap<String, u64>> {
            match v.get(key)? {
                Json::Obj(map) => map
                    .iter()
                    .map(|(k, val)| Some((k.clone(), val.as_u64()?)))
                    .collect(),
                _ => None,
            }
        };
        let phase_vec = |key: &str| -> Option<Vec<PhaseReport>> {
            v.get(key)?
                .as_arr()?
                .iter()
                .map(|p| {
                    let mut report = PhaseReport {
                        name: p.get("name")?.as_str()?.to_string(),
                        count: p.get("count")?.as_u64()?,
                        total_seconds: p.get("total_seconds")?.as_f64()?,
                        min_nanos: p.get("min_nanos")?.as_u64()?,
                        max_nanos: p.get("max_nanos")?.as_u64()?,
                        p50_nanos: 0,
                        p90_nanos: 0,
                        p99_nanos: 0,
                        buckets: p
                            .get("buckets")?
                            .as_arr()?
                            .iter()
                            .map(|b| {
                                let pair = b.as_arr()?;
                                Some((pair.first()?.as_u64()? as u32, pair.get(1)?.as_u64()?))
                            })
                            .collect::<Option<Vec<_>>>()?,
                    };
                    // Percentile fields are recomputable from the buckets,
                    // so reports written before they existed stay parseable.
                    let fallback = |key: &str, p_val: f64, snap: &HistogramSnapshot| {
                        p.get(key)
                            .and_then(Json::as_u64)
                            .or_else(|| snap.percentile(p_val))
                            .unwrap_or(0)
                    };
                    let snap = report.as_snapshot();
                    report.p50_nanos = fallback("p50_nanos", 50.0, &snap);
                    report.p90_nanos = fallback("p90_nanos", 90.0, &snap);
                    report.p99_nanos = fallback("p99_nanos", 99.0, &snap);
                    Some(report)
                })
                .collect()
        };
        Some(RunReport {
            schema: schema.to_string(),
            bin: v.get("bin")?.as_str()?.to_string(),
            level: v.get("level")?.as_str()?.to_string(),
            wall_seconds: v.get("wall_seconds")?.as_f64()?,
            counters: num_map("counters")?,
            gauges: num_map("gauges")?,
            phases: phase_vec("phases")?,
            histograms: phase_vec("histograms")?,
            derived: match v.get("derived")? {
                Json::Obj(map) => map
                    .iter()
                    .map(|(k, val)| Some((k.clone(), val.as_f64()?)))
                    .collect::<Option<BTreeMap<_, _>>>()?,
                _ => return None,
            },
        })
    }

    /// The human-readable summary the bench binaries print.
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "── obs summary: {} ({}, {:.3}s) ──",
            self.bin, self.level, self.wall_seconds
        );
        if !self.derived.is_empty() {
            let _ = writeln!(out, "derived:");
            for (k, v) in &self.derived {
                let _ = writeln!(out, "  {k:<40} {v:.1}");
            }
        }
        let nonzero: Vec<_> = self.counters.iter().filter(|(_, &v)| v != 0).collect();
        if !nonzero.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in nonzero {
                let _ = writeln!(out, "  {k:<40} {v}");
            }
        }
        let nonzero: Vec<_> = self.gauges.iter().filter(|(_, &v)| v != 0).collect();
        if !nonzero.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (k, v) in nonzero {
                let _ = writeln!(out, "  {k:<40} {v}");
            }
        }
        if !self.phases.is_empty() {
            let _ = writeln!(out, "phases (wall-clock):");
            for p in &self.phases {
                let _ = writeln!(
                    out,
                    "  {:<40} {:>4}x {:>10.3}s (p50 {:.3}ms p90 {:.3}ms p99 {:.3}ms max {:.3}ms)",
                    p.name,
                    p.count,
                    p.total_seconds,
                    p.p50_nanos as f64 / 1e6,
                    p.p90_nanos as f64 / 1e6,
                    p.p99_nanos as f64 / 1e6,
                    p.max_nanos as f64 / 1e6
                );
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<40} {:>4}x (p50 {} p90 {} p99 {} max {})",
                    h.name, h.count, h.p50_nanos, h.p90_nanos, h.p99_nanos, h.max_nanos
                );
            }
        }
        out
    }

    /// Write the report to `path` as pretty JSON.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }

    /// Approximate p-th percentile (0–100) of a phase's latency from its
    /// log2 buckets (see [`HistogramSnapshot::percentile`]); zero for an
    /// empty phase (the JSON schema keeps these fields as plain numbers).
    pub fn phase_percentile_nanos(phase: &PhaseReport, p: f64) -> u64 {
        phase.as_snapshot().percentile(p).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let reg = Registry::new();
        reg.counter("vm.explore.states").add(23_122);
        reg.counter("transition.T1").add(17);
        reg.gauge("petri.reach.frontier_peak").set_max(96);
        reg.histogram("span.explore").record(1_500_000);
        reg.histogram("span.explore").record(3_000_000);
        reg.histogram("probe.steps").record(42);
        let mut r = RunReport::from_registry("e8_statespace", ObsLevel::Summary, 1.25, &reg);
        r.set_derived("states_per_sec", 18_497.6);
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample_report();
        let text = r.to_json_string();
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn schema_tag_is_checked() {
        let text = sample_report()
            .to_json_string()
            .replace("jcc-obs/v1", "jcc-obs/v0");
        assert!(RunReport::from_json_str(&text).is_err());
    }

    #[test]
    fn spans_become_phases_and_keep_buckets() {
        let r = sample_report();
        assert_eq!(r.phases.len(), 1);
        let p = &r.phases[0];
        assert_eq!(p.name, "explore");
        assert_eq!(p.count, 2);
        assert!((p.total_seconds - 0.0045).abs() < 1e-9);
        assert!(!p.buckets.is_empty());
        assert_eq!(r.histograms.len(), 1, "non-span histogram kept separately");
        assert_eq!(r.histograms[0].name, "probe.steps");
    }

    #[test]
    fn counter_helpers() {
        let r = sample_report();
        assert_eq!(r.counter("vm.explore.states"), 23_122);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.counter_prefix_sum("transition."), 17);
    }

    #[test]
    fn summary_mentions_key_facts() {
        let r = sample_report();
        let text = r.render_summary();
        assert!(text.contains("e8_statespace"));
        assert!(text.contains("states_per_sec"));
        assert!(text.contains("vm.explore.states"));
        assert!(text.contains("explore"));
    }

    #[test]
    fn percentile_from_buckets() {
        let r = sample_report();
        let p = &r.phases[0];
        let p50 = RunReport::phase_percentile_nanos(p, 50.0);
        let p100 = RunReport::phase_percentile_nanos(p, 100.0);
        assert!(p50 <= p100);
        assert!(p100 <= p.max_nanos.max(1));
    }

    #[test]
    fn percentile_fields_surface_in_json_and_summary() {
        let r = sample_report();
        let p = &r.phases[0];
        assert!(p.p50_nanos >= p.min_nanos && p.p50_nanos <= p.max_nanos);
        assert!(p.p50_nanos <= p.p90_nanos && p.p90_nanos <= p.p99_nanos);
        let text = r.to_json_string();
        assert!(text.contains("\"p50_nanos\""), "{text}");
        assert!(text.contains("\"p99_nanos\""), "{text}");
        let summary = r.render_summary();
        assert!(summary.contains("p50"), "{summary}");
        assert!(summary.contains("p99"), "{summary}");
        assert!(summary.contains("histograms:"), "{summary}");
    }

    #[test]
    fn reports_without_percentile_fields_still_parse() {
        // Simulate a pre-percentile report by stripping the new fields
        // (they sit mid-object in the sorted key order, so dropping whole
        // lines keeps the JSON valid).
        let text: String = sample_report()
            .to_json_string()
            .lines()
            .filter(|l| !l.contains("p50_nanos") && !l.contains("p90_nanos") && !l.contains("p99_nanos"))
            .collect::<Vec<_>>()
            .join("\n");
        let back = RunReport::from_json_str(&text).expect("old-format report parses");
        let p = &back.phases[0];
        assert!(p.p50_nanos > 0, "recomputed from buckets");
        assert!(p.p50_nanos <= p.p99_nanos);
    }
}
