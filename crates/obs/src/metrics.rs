//! The metrics registry: named counters, gauges and log2-bucketed
//! histograms.
//!
//! Handles are `Arc`-shared atomics, so instrumented code resolves a name
//! once (outside its hot loop) and then increments lock-free. Concurrent
//! increments are exact: totals are deterministic for any interleaving.
//! [`Registry::reset`] zeroes values *in place* — existing handles stay
//! valid, which lets long-lived instrumentation cache them across runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge with a high-water helper.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is higher (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: values 0, 1, 2–3, 4–7, … up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// An HDR-style histogram with power-of-two buckets: bucket 0 holds the
/// value 0, bucket `i` (i ≥ 1) holds values whose highest set bit is
/// `i - 1`, i.e. the range `[2^(i-1), 2^i)`. Exact count/sum/min/max are
/// kept alongside, all lock-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// An immutable snapshot of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(bucket index, count)` pairs.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Approximate p-th percentile (0–100) of the recorded values: the
    /// lower bound of the log2 bucket holding that rank, clamped to the
    /// exact observed `[min, max]` range. `None` when the histogram is
    /// empty (there is no value to estimate — callers that need a number
    /// pick their own sentinel). Deterministic — a pure function of the
    /// snapshot.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (self.count as f64 * p / 100.0).ceil().max(1.0) as u64;
        let mut seen = 0;
        for &(bucket, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(Histogram::bucket_floor(bucket).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Lower bound of bucket `i` (inverse of the bucketing function).
    pub fn bucket_floor(i: u32) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Snapshot the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n != 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A named-metric registry. Cheap to clone (shared handle). The engines
/// write to [`global()`]; tests can use private instances.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("counter map");
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::default();
                map.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("gauge map");
        match map.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Gauge::default();
                map.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.histograms.lock().expect("histogram map");
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// All counters as `(name, value)`, name-sorted, zero values included.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .lock()
            .expect("counter map")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All gauges as `(name, value)`, name-sorted.
    pub fn gauge_values(&self) -> Vec<(String, u64)> {
        self.inner
            .gauges
            .lock()
            .expect("gauge map")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All histograms as `(name, snapshot)`, name-sorted.
    pub fn histogram_values(&self) -> Vec<(String, HistogramSnapshot)> {
        self.inner
            .histograms
            .lock()
            .expect("histogram map")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Zero every metric in place. Handles resolved before the reset keep
    /// working (they share the same atomics).
    pub fn reset(&self) {
        for (_, c) in self.inner.counters.lock().expect("counter map").iter() {
            c.0.store(0, Ordering::Relaxed);
        }
        for (_, g) in self.inner.gauges.lock().expect("gauge map").iter() {
            g.0.store(0, Ordering::Relaxed);
        }
        for (_, h) in self.inner.histograms.lock().expect("histogram map").iter() {
            h.reset();
        }
    }
}

/// The process-wide registry the engines write to.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_concurrent_increments_are_exact() {
        let reg = Registry::new();
        let c = reg.counter("t");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(reg.counter("t").get(), 80_000, "same name, same atomic");
    }

    #[test]
    fn histogram_concurrent_records_are_exact() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4_000);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 3_999);
        assert_eq!(snap.sum, (0..4_000u64).sum::<u64>());
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(bucket_total, 4_000, "every record lands in one bucket");
    }

    #[test]
    fn histogram_bucketing_is_log2() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        let snap = h.snapshot();
        // 0 -> b0; 1 -> b1; 2,3 -> b2; 4,7 -> b3; 8 -> b4; 1024 -> b11.
        assert_eq!(
            snap.buckets,
            vec![(0, 1), (1, 1), (2, 2), (3, 2), (4, 1), (11, 1)]
        );
        for (i, _) in snap.buckets {
            assert!(Histogram::bucket_floor(i) <= snap.max);
        }
        assert_eq!(Histogram::bucket_floor(11), 1024);
    }

    #[test]
    fn percentiles_from_snapshot() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        let p50 = snap.percentile(50.0).unwrap();
        let p90 = snap.percentile(90.0).unwrap();
        let p99 = snap.percentile(99.0).unwrap();
        // Log2 buckets: the estimate is the floor of the rank's bucket,
        // clamped to the observed range — monotone and within bounds.
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!((snap.min..=snap.max).contains(&p50));
        assert!((snap.min..=snap.max).contains(&p99));
        assert!(snap.percentile(100.0).unwrap() <= snap.max);

        let single = Histogram::default();
        single.record(42);
        assert_eq!(
            single.snapshot().percentile(50.0),
            Some(42),
            "clamped to min"
        );
        assert_eq!(
            Histogram::default().snapshot().percentile(50.0),
            None,
            "empty histogram has no percentile, not a garbage midpoint"
        );
    }

    #[test]
    fn gauge_set_and_high_water() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn reset_keeps_handles_valid() {
        let reg = Registry::new();
        let c = reg.counter("x");
        let h = reg.histogram("y");
        c.add(10);
        h.record(3);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.inc();
        h.record(1);
        assert_eq!(reg.counter("x").get(), 1, "old handle still wired in");
        assert_eq!(h.snapshot().min, 1, "min re-arms after reset");
    }

    #[test]
    fn values_are_name_sorted() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").inc();
        let names: Vec<String> = reg.counter_values().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
