//! The global recording level and its `JCC_OBS` / `--quiet` parsing.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much the observability layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsLevel {
    /// Record nothing; every instrumentation hook is a near-free check.
    Off,
    /// Record metrics (counters, gauges, histograms, span timings).
    Summary,
    /// Record metrics plus the structured trace-event stream.
    Trace,
}

impl ObsLevel {
    /// Parse the `JCC_OBS` value. Unknown strings fall back to `Summary`
    /// (the bench default), so a typo degrades loudly rather than silently
    /// disabling observation.
    pub fn parse(s: &str) -> ObsLevel {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => ObsLevel::Off,
            "trace" | "2" => ObsLevel::Trace,
            _ => ObsLevel::Summary,
        }
    }

    /// The level's canonical name (`off` / `summary` / `trace`).
    pub fn name(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Summary => "summary",
            ObsLevel::Trace => "trace",
        }
    }
}

/// 0 = off, 1 = summary, 2 = trace. Off by default: libraries and tests
/// pay nothing unless a binary opts in.
static LEVEL: AtomicU8 = AtomicU8::new(0);

/// Set the global recording level.
pub fn set_level(level: ObsLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global recording level.
pub fn level() -> ObsLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => ObsLevel::Off,
        1 => ObsLevel::Summary,
        _ => ObsLevel::Trace,
    }
}

/// True when any recording is on (`summary` or `trace`). The hot-path
/// guard: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) != 0
}

/// True when the structured trace-event stream is on.
#[inline]
pub fn trace_enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) >= 2
}

/// Resolve the level a bench binary should run at: `JCC_OBS` if set,
/// otherwise `Summary`. (`--quiet` controls printing, not the level; see
/// [`crate::bench::BenchReporter`].)
pub fn level_from_env() -> ObsLevel {
    match std::env::var("JCC_OBS") {
        Ok(v) => ObsLevel::parse(&v),
        Err(_) => ObsLevel::Summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_spellings() {
        assert_eq!(ObsLevel::parse("off"), ObsLevel::Off);
        assert_eq!(ObsLevel::parse("OFF"), ObsLevel::Off);
        assert_eq!(ObsLevel::parse("0"), ObsLevel::Off);
        assert_eq!(ObsLevel::parse("none"), ObsLevel::Off);
        assert_eq!(ObsLevel::parse("summary"), ObsLevel::Summary);
        assert_eq!(ObsLevel::parse("trace"), ObsLevel::Trace);
        assert_eq!(ObsLevel::parse(" Trace "), ObsLevel::Trace);
        // Unknown values degrade to the default, not to off.
        assert_eq!(ObsLevel::parse("verbose"), ObsLevel::Summary);
    }

    #[test]
    fn names_round_trip() {
        for l in [ObsLevel::Off, ObsLevel::Summary, ObsLevel::Trace] {
            assert_eq!(ObsLevel::parse(l.name()), l);
        }
    }
}
