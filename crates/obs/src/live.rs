//! Live introspection: hierarchical span trees, a sampling self-profiler,
//! and progress heartbeats over the exploration engines.
//!
//! Everything here is *pull-only*: the engines publish monotonically into
//! lock-free cells (or a thread-local span stack), and watcher threads
//! read. Nothing feeds back into exploration, so enabling any of it
//! changes no engine result — the same contract as the rest of the crate,
//! re-asserted by `tests/obs_determinism.rs`. Every hook is one relaxed
//! atomic load when the matching feature is off.
//!
//! Three independently-gated features:
//!
//! * **span tree** ([`set_span_tree`] / [`SpanTree`]) — every span drop
//!   folds its wall-clock into a global tree keyed by the full stack of
//!   enclosing span names, giving per-node total *and self* attribution,
//! * **stack mirroring + profiler** ([`register_thread`] / [`Profiler`]) —
//!   registered engine threads mirror their current span stack into a
//!   shared slot; a dependency-free sampling thread snapshots all slots at
//!   a seeded, jittered tick and aggregates an ASCII flame table (plus a
//!   Chrome-trace rendering),
//! * **progress cells** ([`set_progress`] / [`ProgressCell`]) —
//!   `petri::reach` and `vm::explore` publish states/frontier/steals into
//!   two global cells; a [`Heartbeat`] watcher drains them into EWMA
//!   states/sec, an ETA against the exploration budget, heartbeat metrics
//!   and a `jcc top`-style one-line rendering.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::metrics::global;

// ---------------------------------------------------------------------------
// Feature gates
// ---------------------------------------------------------------------------

const FLAG_TREE: u8 = 1;
const FLAG_MIRROR: u8 = 2;
const FLAG_PROGRESS: u8 = 4;

/// The one word every hook checks. Off (0) means every live-introspection
/// call site costs a single relaxed load.
static FLAGS: AtomicU8 = AtomicU8::new(0);

fn set_flag(bit: u8, on: bool) {
    if on {
        FLAGS.fetch_or(bit, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!bit, Ordering::Relaxed);
    }
}

/// True when span drops record into the global [`SpanTree`].
#[inline]
pub fn span_tree_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_TREE != 0
}

/// Turn [`SpanTree`] recording on or off (off by default).
pub fn set_span_tree(on: bool) {
    set_flag(FLAG_TREE, on);
}

/// True when registered threads mirror their span stack for the profiler.
#[inline]
pub fn stack_mirror_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_MIRROR != 0
}

pub(crate) fn set_stack_mirror(on: bool) {
    set_flag(FLAG_MIRROR, on);
}

/// True when the engines publish into the global [`ProgressCell`]s.
#[inline]
pub fn progress_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_PROGRESS != 0
}

/// Turn engine progress publication on or off (off by default).
pub fn set_progress(on: bool) {
    set_flag(FLAG_PROGRESS, on);
}

// ---------------------------------------------------------------------------
// Hierarchical span tree
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone, Copy)]
struct NodeStat {
    count: u64,
    total_nanos: u64,
}

fn tree() -> &'static Mutex<BTreeMap<Vec<&'static str>, NodeStat>> {
    static TREE: OnceLock<Mutex<BTreeMap<Vec<&'static str>, NodeStat>>> = OnceLock::new();
    TREE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Called by the span guard on drop with the full enclosing stack
/// (innermost last, including the closing span itself).
pub(crate) fn record_tree(path: &[&'static str], nanos: u64) {
    let mut t = tree().lock().expect("span tree");
    let stat = t.entry(path.to_vec()).or_default();
    stat.count += 1;
    stat.total_nanos += nanos;
}

/// One node of a [`SpanTreeSnapshot`]: a unique stack of span names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTreeNode {
    /// The stack of span names from the root, innermost last.
    pub path: Vec<String>,
    /// Completed occurrences of exactly this stack.
    pub count: u64,
    /// Wall-clock summed over occurrences, nanoseconds.
    pub total_nanos: u64,
    /// `total_nanos` minus the totals of direct children — time spent in
    /// this node itself. Clamped at zero (children recorded while a parent
    /// occurrence is still open can transiently exceed the parent).
    pub self_nanos: u64,
}

/// A consistent copy of the global span tree; see [`SpanTree::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanTreeSnapshot {
    /// Nodes in depth-first (path-lexicographic) order.
    pub nodes: Vec<SpanTreeNode>,
}

/// Namespace for the global hierarchical span tree, populated by span
/// drops while [`set_span_tree`] is on.
#[derive(Debug)]
pub struct SpanTree;

impl SpanTree {
    /// Clear the tree (typically paired with `Registry::reset`).
    pub fn reset() {
        tree().lock().expect("span tree").clear();
    }

    /// Copy the tree out, computing self-time per node.
    pub fn snapshot() -> SpanTreeSnapshot {
        let t = tree().lock().expect("span tree");
        let entries: Vec<(Vec<&'static str>, NodeStat)> =
            t.iter().map(|(k, v)| (k.clone(), *v)).collect();
        drop(t);
        let nodes = entries
            .iter()
            .map(|(path, stat)| {
                let child_total: u64 = entries
                    .iter()
                    .filter(|(p, _)| p.len() == path.len() + 1 && p.starts_with(path))
                    .map(|(_, s)| s.total_nanos)
                    .sum();
                SpanTreeNode {
                    path: path.iter().map(|s| s.to_string()).collect(),
                    count: stat.count,
                    total_nanos: stat.total_nanos,
                    self_nanos: stat.total_nanos.saturating_sub(child_total),
                }
            })
            .collect();
        SpanTreeSnapshot { nodes }
    }
}

impl SpanTreeSnapshot {
    /// Render as an indented ASCII table: count, total, self per node.
    pub fn render_ascii(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>12} {:>6}  span tree",
            "count", "total ms", "self ms", "self%"
        );
        for node in &self.nodes {
            let indent = "  ".repeat(node.path.len().saturating_sub(1));
            let name = node.path.last().map(String::as_str).unwrap_or("?");
            let self_pct = if node.total_nanos == 0 {
                0.0
            } else {
                node.self_nanos as f64 * 100.0 / node.total_nanos as f64
            };
            let _ = writeln!(
                out,
                "{:>8} {:>12.3} {:>12.3} {:>5.1}%  {indent}{name}",
                node.count,
                node.total_nanos as f64 / 1e6,
                node.self_nanos as f64 / 1e6,
                self_pct,
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Thread registration + span-stack mirroring
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ThreadSlot {
    name: String,
    stack: Mutex<Vec<&'static str>>,
    alive: AtomicBool,
}

fn slots() -> &'static Mutex<Vec<Arc<ThreadSlot>>> {
    static SLOTS: OnceLock<Mutex<Vec<Arc<ThreadSlot>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_SLOT: RefCell<Option<Arc<ThreadSlot>>> = const { RefCell::new(None) };
}

/// RAII handle from [`register_thread`]; deregisters on drop.
#[derive(Debug)]
pub struct ThreadRegistration {
    slot: Arc<ThreadSlot>,
}

/// Register the calling thread with the profiler under `name`. While a
/// [`Profiler`] is running, the thread's current span stack is mirrored
/// into a shared slot the sampler reads. Returns a guard; the thread is
/// forgotten when it drops.
pub fn register_thread(name: &str) -> ThreadRegistration {
    let slot = Arc::new(ThreadSlot {
        name: name.to_string(),
        stack: Mutex::new(Vec::new()),
        alive: AtomicBool::new(true),
    });
    slots().lock().expect("profiler slots").push(Arc::clone(&slot));
    MY_SLOT.with(|m| *m.borrow_mut() = Some(Arc::clone(&slot)));
    ThreadRegistration { slot }
}

impl Drop for ThreadRegistration {
    fn drop(&mut self) {
        self.slot.alive.store(false, Ordering::Relaxed);
        slots()
            .lock()
            .expect("profiler slots")
            .retain(|s| !Arc::ptr_eq(s, &self.slot));
        MY_SLOT.with(|m| {
            let clear = m
                .borrow()
                .as_ref()
                .is_some_and(|s| Arc::ptr_eq(s, &self.slot));
            if clear {
                *m.borrow_mut() = None;
            }
        });
    }
}

/// Called by the span guard after every stack change while mirroring is
/// on: copy the thread's current stack into its slot (if registered).
pub(crate) fn mirror_stack(stack: &[&'static str]) {
    MY_SLOT.with(|m| {
        if let Some(slot) = m.borrow().as_ref() {
            *slot.stack.lock().expect("slot stack") = stack.to_vec();
        }
    });
}

// ---------------------------------------------------------------------------
// Sampling profiler
// ---------------------------------------------------------------------------

/// Aggregated samples from one [`Profiler`] session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileReport {
    /// The nominal tick, microseconds (samples jitter around it).
    pub tick_micros: u64,
    /// Total non-idle samples taken across all registered threads.
    pub total_samples: u64,
    /// `(thread name, span stack) -> sample count`, sorted.
    pub samples: BTreeMap<(String, Vec<String>), u64>,
}

impl ProfileReport {
    /// Render the aggregated samples as an ASCII flame table, hottest
    /// stacks first (ties broken by key order for determinism).
    pub fn render_flame_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "live profiler: {} samples over {} stacks (tick ~{}us)",
            self.total_samples,
            self.samples.len(),
            self.tick_micros
        );
        let mut rows: Vec<(&(String, Vec<String>), &u64)> = self.samples.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        let _ = writeln!(out, "{:>8} {:>6}  {:<16} stack", "samples", "%", "thread");
        for ((thread, stack), count) in rows {
            let pct = *count as f64 * 100.0 / self.total_samples.max(1) as f64;
            let _ = writeln!(
                out,
                "{count:>8} {pct:>5.1}%  {thread:<16} {}",
                stack.join(" > ")
            );
        }
        out
    }

    /// Render as a Chrome Trace Event Format document: each aggregated
    /// stack becomes a run of nested `X` slices (one tick each) on its
    /// thread's lane, so Perfetto shows a flame chart of where samples
    /// landed.
    pub fn to_chrome_string(&self) -> String {
        use crate::json::Json;
        let mut threads: Vec<&str> = self
            .samples
            .keys()
            .map(|(t, _)| t.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        threads.sort_unstable();
        let tid_of = |name: &str| threads.iter().position(|t| *t == name).unwrap_or(0) + 1;
        let mut cursor: BTreeMap<&str, u64> = BTreeMap::new();
        let mut events = Vec::new();
        let tick = self.tick_micros.max(1);
        for ((thread, stack), count) in &self.samples {
            let start = *cursor.entry(thread.as_str()).or_insert(0);
            let dur = count * tick;
            for name in stack {
                events.push(Json::obj([
                    ("name".to_string(), Json::Str(name.clone())),
                    ("cat".to_string(), Json::Str("profile".to_string())),
                    ("ph".to_string(), Json::Str("X".to_string())),
                    ("ts".to_string(), Json::Num(start as f64)),
                    ("dur".to_string(), Json::Num(dur as f64)),
                    ("pid".to_string(), Json::Num(1.0)),
                    (
                        "tid".to_string(),
                        Json::Num(tid_of(thread.as_str()) as f64),
                    ),
                ]));
            }
            cursor.insert(thread.as_str(), start + dur);
        }
        Json::obj([("traceEvents".to_string(), Json::Arr(events))]).to_string_compact()
    }
}

/// A dependency-free sampling profiler: while running, snapshots the
/// mirrored span stack of every [registered](register_thread) thread at a
/// seeded, jittered tick and aggregates sample counts per stack.
#[derive(Debug)]
pub struct Profiler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<ProfileReport>,
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

impl Profiler {
    /// Start sampling every ~`tick` (uniformly jittered in
    /// `[tick/2, 3·tick/2)` from `seed`, so the sampler cannot phase-lock
    /// with periodic work). Turns stack mirroring on for its lifetime.
    pub fn start(tick: Duration, seed: u64) -> Profiler {
        set_stack_mirror(true);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let tick_nanos = tick.as_nanos().max(1) as u64;
        let handle = std::thread::Builder::new()
            .name("jcc-obs-profiler".to_string())
            .spawn(move || {
                let mut rng = seed | 1;
                let mut samples: BTreeMap<(String, Vec<String>), u64> = BTreeMap::new();
                let mut total = 0u64;
                while !stop2.load(Ordering::Relaxed) {
                    let jitter = tick_nanos / 2 + lcg(&mut rng) % tick_nanos;
                    std::thread::sleep(Duration::from_nanos(jitter));
                    let snapshot: Vec<Arc<ThreadSlot>> =
                        slots().lock().expect("profiler slots").clone();
                    for slot in snapshot {
                        if !slot.alive.load(Ordering::Relaxed) {
                            continue;
                        }
                        let stack = slot.stack.lock().expect("slot stack").clone();
                        if stack.is_empty() {
                            continue;
                        }
                        total += 1;
                        let key = (
                            slot.name.clone(),
                            stack.iter().map(|s| s.to_string()).collect(),
                        );
                        *samples.entry(key).or_default() += 1;
                    }
                }
                global().counter("live.profiler.samples").add(total);
                ProfileReport {
                    tick_micros: tick_nanos / 1_000,
                    total_samples: total,
                    samples,
                }
            })
            .expect("spawn profiler thread");
        Profiler { stop, handle }
    }

    /// Stop sampling, turn stack mirroring back off, and return the
    /// aggregated report.
    pub fn stop(self) -> ProfileReport {
        self.stop.store(true, Ordering::Relaxed);
        let report = self.handle.join().expect("profiler thread");
        set_stack_mirror(false);
        report
    }
}

// ---------------------------------------------------------------------------
// Progress cells
// ---------------------------------------------------------------------------

/// A lock-free progress mailbox one engine writes and watchers read. All
/// fields are relaxed atomics: readers get a recent (not atomic-across-
/// fields) view, which is all a heartbeat needs. Publication never feeds
/// back into the engine.
#[derive(Debug, Default)]
pub struct ProgressCell {
    epoch: AtomicU64,
    states: AtomicU64,
    frontier: AtomicU64,
    depth: AtomicU64,
    steals: AtomicU64,
    saved: AtomicU64,
    budget: AtomicU64,
    done: AtomicU64,
}

/// One point-in-time read of a [`ProgressCell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Bumped by every [`ProgressCell::begin`]; watchers reset their rate
    /// tracking when it changes.
    pub epoch: u64,
    /// States interned/visited so far.
    pub states: u64,
    /// Frontier width (queued, unexpanded states).
    pub frontier: u64,
    /// Frontier cursor (BFS) or current recursion depth (DFS).
    pub depth: u64,
    /// Work-stealing events so far (parallel engines only).
    pub steals: u64,
    /// States pruned by ample-set/symmetry reduction so far.
    pub saved: u64,
    /// The exploration's state budget (`max_states`), 0 when unknown.
    pub budget: u64,
    /// True once the exploration finished.
    pub done: bool,
}

impl ProgressCell {
    /// A zeroed cell.
    pub const fn new() -> ProgressCell {
        ProgressCell {
            epoch: AtomicU64::new(0),
            states: AtomicU64::new(0),
            frontier: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            saved: AtomicU64::new(0),
            budget: AtomicU64::new(0),
            done: AtomicU64::new(0),
        }
    }

    /// Start a new exploration: zero the counters, record its budget and
    /// bump the epoch.
    pub fn begin(&self, budget: u64) {
        self.states.store(0, Ordering::Relaxed);
        self.frontier.store(0, Ordering::Relaxed);
        self.depth.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.saved.store(0, Ordering::Relaxed);
        self.budget.store(budget, Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Publish the current state count, frontier width and depth/cursor.
    #[inline]
    pub fn publish(&self, states: u64, frontier: u64, depth: u64) {
        self.states.store(states, Ordering::Relaxed);
        self.frontier.store(frontier, Ordering::Relaxed);
        self.depth.store(depth, Ordering::Relaxed);
    }

    /// Publish the running steal total (parallel engines).
    #[inline]
    pub fn set_steals(&self, steals: u64) {
        self.steals.store(steals, Ordering::Relaxed);
    }

    /// Bump the steal total (parallel workers that only know their own
    /// deltas).
    #[inline]
    pub fn add_steals(&self, n: u64) {
        self.steals.fetch_add(n, Ordering::Relaxed);
    }

    /// Publish the running reduction-pruned total.
    #[inline]
    pub fn set_saved(&self, saved: u64) {
        self.saved.store(saved, Ordering::Relaxed);
    }

    /// Mark the exploration finished with its final state count.
    pub fn finish(&self, states: u64) {
        self.states.store(states, Ordering::Relaxed);
        self.frontier.store(0, Ordering::Relaxed);
        self.done.store(1, Ordering::Relaxed);
    }

    /// Read the cell.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            epoch: self.epoch.load(Ordering::Relaxed),
            states: self.states.load(Ordering::Relaxed),
            frontier: self.frontier.load(Ordering::Relaxed),
            depth: self.depth.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            saved: self.saved.load(Ordering::Relaxed),
            budget: self.budget.load(Ordering::Relaxed),
            done: self.done.load(Ordering::Relaxed) != 0,
        }
    }
}

/// The cell `petri::reach` publishes into (while [`progress_enabled`]).
pub fn reach_progress() -> &'static ProgressCell {
    static CELL: ProgressCell = ProgressCell::new();
    &CELL
}

/// The cell `vm::explore` publishes into (while [`progress_enabled`]).
pub fn explore_progress() -> &'static ProgressCell {
    static CELL: ProgressCell = ProgressCell::new();
    &CELL
}

// ---------------------------------------------------------------------------
// Heartbeat watcher
// ---------------------------------------------------------------------------

/// One heartbeat observation of one engine, derived by the watcher.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatStats {
    /// Which engine: `"reach"` or `"explore"`.
    pub engine: &'static str,
    /// The raw cell read this beat derives from.
    pub snapshot: ProgressSnapshot,
    /// Exponentially-weighted moving average of states/second.
    pub states_per_sec: f64,
    /// Estimated seconds until the state budget is exhausted (None when
    /// done, budget-less, or the rate is still ~zero).
    pub eta_seconds: Option<f64>,
    /// Seconds since the watcher first saw this exploration epoch.
    pub elapsed_seconds: f64,
}

impl HeartbeatStats {
    /// The `jcc top`-style one-line rendering.
    pub fn render_line(&self) -> String {
        let s = &self.snapshot;
        let mut line = format!(
            "[{}] {} states",
            self.engine,
            s.states,
        );
        if s.budget > 0 {
            line.push_str(&format!(
                "/{} ({:.1}%)",
                s.budget,
                s.states as f64 * 100.0 / s.budget as f64
            ));
        }
        line.push_str(&format!(" frontier {} depth {}", s.frontier, s.depth));
        if s.steals > 0 {
            line.push_str(&format!(" steals {}", s.steals));
        }
        if s.saved > 0 {
            line.push_str(&format!(" pruned {}", s.saved));
        }
        line.push_str(&format!(" | {:.0} st/s", self.states_per_sec));
        if s.done {
            line.push_str(" | done");
        } else if let Some(eta) = self.eta_seconds {
            line.push_str(&format!(" | ETA {eta:.1}s"));
        }
        line
    }
}

#[derive(Debug, Clone, Copy)]
struct RateTracker {
    epoch: u64,
    last_states: u64,
    last_at: Instant,
    started_at: Instant,
    ewma: f64,
    reported_done: bool,
}

/// EWMA smoothing factor for the heartbeat's states/sec estimate.
const EWMA_ALPHA: f64 = 0.3;

/// A watcher thread that drains the global [`ProgressCell`]s every
/// `interval` into heartbeat metrics (`live.heartbeat.count`,
/// `live.<engine>.*` gauges), trace events, and a caller-supplied
/// callback (the `jcc profile` one-line refresh).
#[derive(Debug)]
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl Heartbeat {
    /// Start the watcher. `on_beat` runs on the watcher thread once per
    /// active engine per tick.
    pub fn start<F>(interval: Duration, mut on_beat: F) -> Heartbeat
    where
        F: FnMut(&HeartbeatStats) + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("jcc-obs-heartbeat".to_string())
            .spawn(move || {
                let cells: [(&'static str, &'static ProgressCell); 2] = [
                    ("reach", reach_progress()),
                    ("explore", explore_progress()),
                ];
                let mut trackers: [Option<RateTracker>; 2] = [None, None];
                loop {
                    std::thread::sleep(interval);
                    let stopping = stop2.load(Ordering::Relaxed);
                    for (i, (engine, cell)) in cells.iter().enumerate() {
                        let snap = cell.snapshot();
                        if snap.epoch == 0 {
                            continue; // engine never ran
                        }
                        let now = Instant::now();
                        let tracker = match &mut trackers[i] {
                            Some(t) if t.epoch == snap.epoch => t,
                            slot => slot.insert(RateTracker {
                                epoch: snap.epoch,
                                last_states: 0,
                                last_at: now,
                                started_at: now,
                                ewma: 0.0,
                                reported_done: false,
                            }),
                        };
                        if tracker.reported_done {
                            continue;
                        }
                        // Floor the window at one interval: a tracker created
                        // this very tick (or a stop()-triggered final drain
                        // right after a regular one) would otherwise divide
                        // by a near-zero dt and report a nonsense rate.
                        let dt = now
                            .duration_since(tracker.last_at)
                            .as_secs_f64()
                            .max(interval.as_secs_f64())
                            .max(1e-9);
                        let instant_rate =
                            snap.states.saturating_sub(tracker.last_states) as f64 / dt;
                        tracker.ewma = if tracker.last_states == 0 && tracker.ewma == 0.0 {
                            instant_rate
                        } else {
                            EWMA_ALPHA * instant_rate + (1.0 - EWMA_ALPHA) * tracker.ewma
                        };
                        tracker.last_states = snap.states;
                        tracker.last_at = now;
                        if snap.done {
                            tracker.reported_done = true;
                        }
                        let eta_seconds = if !snap.done
                            && snap.budget > snap.states
                            && tracker.ewma >= 1.0
                        {
                            Some((snap.budget - snap.states) as f64 / tracker.ewma)
                        } else {
                            None
                        };
                        let stats = HeartbeatStats {
                            engine,
                            snapshot: snap,
                            states_per_sec: tracker.ewma,
                            eta_seconds,
                            elapsed_seconds: now
                                .duration_since(tracker.started_at)
                                .as_secs_f64(),
                        };
                        let reg = global();
                        reg.counter("live.heartbeat.count").inc();
                        reg.gauge(&format!("live.{engine}.states")).set(snap.states);
                        reg.gauge(&format!("live.{engine}.frontier"))
                            .set(snap.frontier);
                        reg.gauge(&format!("live.{engine}.states_per_sec"))
                            .set(tracker.ewma as u64);
                        crate::event!(
                            "heartbeat";
                            "engine" => engine,
                            "states" => snap.states,
                            "frontier" => snap.frontier,
                            "states_per_sec" => format!("{:.0}", tracker.ewma),
                            "done" => snap.done
                        );
                        on_beat(&stats);
                    }
                    if stopping {
                        break;
                    }
                }
            })
            .expect("spawn heartbeat thread");
        Heartbeat { stop, handle }
    }

    /// Stop the watcher after one final drain (so a finished exploration's
    /// terminal state is always reported).
    pub fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{set_level, ObsLevel};
    use crate::span::tests::level_lock;
    use crate::span_enter;

    #[test]
    fn span_tree_attributes_self_and_total() {
        let _guard = level_lock().lock().unwrap();
        set_level(ObsLevel::Summary);
        SpanTree::reset();
        set_span_tree(true);
        {
            let _outer = span_enter("tree_outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span_enter("tree_inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        set_span_tree(false);
        set_level(ObsLevel::Off);
        let snap = SpanTree::snapshot();
        let outer = snap
            .nodes
            .iter()
            .find(|n| n.path == ["tree_outer"])
            .expect("outer node");
        let inner = snap
            .nodes
            .iter()
            .find(|n| n.path == ["tree_outer", "tree_inner"])
            .expect("inner node");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_nanos >= inner.total_nanos);
        assert!(
            outer.self_nanos <= outer.total_nanos - inner.total_nanos + 1,
            "self excludes the child: {} vs {}",
            outer.self_nanos,
            outer.total_nanos
        );
        assert_eq!(inner.self_nanos, inner.total_nanos, "leaf is all self");
        let table = snap.render_ascii();
        assert!(table.contains("tree_outer"), "{table}");
        assert!(table.contains("  tree_inner"), "{table}");
    }

    #[test]
    fn span_tree_off_records_nothing() {
        let _guard = level_lock().lock().unwrap();
        set_level(ObsLevel::Summary);
        SpanTree::reset();
        {
            let _s = span_enter("untracked");
        }
        set_level(ObsLevel::Off);
        assert!(SpanTree::snapshot().nodes.is_empty());
    }

    #[test]
    fn profiler_samples_registered_thread_stacks() {
        let _guard = level_lock().lock().unwrap();
        set_level(ObsLevel::Summary);
        let profiler = Profiler::start(Duration::from_micros(200), 42);
        let worker = std::thread::spawn(|| {
            let _reg = register_thread("busy-worker");
            let _span = span_enter("busy_phase");
            std::thread::sleep(Duration::from_millis(30));
        });
        worker.join().unwrap();
        let report = profiler.stop();
        set_level(ObsLevel::Off);
        assert!(report.total_samples > 0, "sampler saw the busy thread");
        let key = ("busy-worker".to_string(), vec!["busy_phase".to_string()]);
        assert!(
            report.samples.contains_key(&key),
            "expected busy_phase stack in {:?}",
            report.samples.keys().collect::<Vec<_>>()
        );
        let table = report.render_flame_table();
        assert!(table.contains("busy-worker"), "{table}");
        assert!(table.contains("busy_phase"), "{table}");
        let chrome = report.to_chrome_string();
        assert!(chrome.contains("\"traceEvents\""), "{chrome}");
        assert!(chrome.contains("busy_phase"), "{chrome}");
        assert!(
            !stack_mirror_enabled(),
            "profiler stop turns mirroring back off"
        );
    }

    #[test]
    fn progress_cell_lifecycle_and_heartbeat() {
        let _guard = level_lock().lock().unwrap();
        set_level(ObsLevel::Summary);
        let cell = reach_progress();
        cell.begin(1_000);
        cell.publish(100, 40, 7);
        cell.set_steals(3);
        let beats: Arc<Mutex<Vec<HeartbeatStats>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&beats);
        let hb = Heartbeat::start(Duration::from_millis(5), move |s| {
            sink.lock().unwrap().push(s.clone());
        });
        std::thread::sleep(Duration::from_millis(40));
        cell.publish(600, 10, 9);
        std::thread::sleep(Duration::from_millis(40));
        cell.finish(1_000);
        std::thread::sleep(Duration::from_millis(20));
        hb.stop();
        set_level(ObsLevel::Off);
        let beats = beats.lock().unwrap();
        let reach_beats: Vec<_> = beats.iter().filter(|b| b.engine == "reach").collect();
        assert!(!reach_beats.is_empty(), "watcher saw the reach cell");
        assert!(
            reach_beats.iter().any(|b| b.states_per_sec > 0.0),
            "rate estimated"
        );
        let last = reach_beats.last().unwrap();
        assert!(last.snapshot.done, "final drain reports completion");
        assert_eq!(last.snapshot.states, 1_000);
        let line = last.render_line();
        assert!(line.contains("[reach]"), "{line}");
        assert!(line.contains("done"), "{line}");
        let mid = reach_beats.iter().find(|b| !b.snapshot.done);
        if let Some(mid) = mid {
            let line = mid.render_line();
            assert!(line.contains("states"), "{line}");
        }
    }

    #[test]
    fn progress_gate_defaults_off() {
        // Other tests may toggle progress; this only asserts the flag API.
        set_progress(true);
        assert!(progress_enabled());
        set_progress(false);
        assert!(!progress_enabled());
    }

    #[test]
    fn heartbeat_eta_tracks_budget() {
        let snap = ProgressSnapshot {
            epoch: 1,
            states: 500,
            frontier: 10,
            depth: 3,
            steals: 0,
            saved: 0,
            budget: 1_000,
            done: false,
        };
        let stats = HeartbeatStats {
            engine: "reach",
            snapshot: snap,
            states_per_sec: 250.0,
            eta_seconds: Some(2.0),
            elapsed_seconds: 2.0,
        };
        let line = stats.render_line();
        assert!(line.contains("50.0%"), "{line}");
        assert!(line.contains("ETA 2.0s"), "{line}");
    }
}
