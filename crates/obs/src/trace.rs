//! The structured trace-event stream (recorded at `trace` level) and its
//! JSONL rendering.

use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;
use crate::level::trace_enabled;

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Microseconds since the process's trace epoch.
    pub ts_micros: u64,
    /// What happened: `span_enter` / `span_exit` / a user event name.
    pub name: String,
    /// Span nesting depth on the recording thread at emission time.
    pub depth: u32,
    /// Free-form `(key, value)` fields.
    pub fields: Vec<(String, String)>,
}

impl TraceRecord {
    /// Render as one JSON object (one JSONL line).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ts_micros".to_string(), Json::Num(self.ts_micros as f64)),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("depth".to_string(), Json::Num(self.depth as f64)),
            (
                "fields".to_string(),
                Json::obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone()))),
                ),
            ),
        ])
    }

    /// Parse one JSONL line back into a record.
    pub fn from_json(v: &Json) -> Option<TraceRecord> {
        let fields = match v.get("fields") {
            Some(Json::Obj(map)) => map
                .iter()
                .map(|(k, val)| (k.clone(), val.as_str().unwrap_or_default().to_string()))
                .collect(),
            _ => Vec::new(),
        };
        Some(TraceRecord {
            ts_micros: v.get("ts_micros")?.as_u64()?,
            name: v.get("name")?.as_str()?.to_string(),
            depth: v.get("depth")?.as_u64()? as u32,
            fields,
        })
    }
}

/// Cap on buffered trace records; beyond it, new records are counted but
/// dropped (the drop count is reported by [`drain_trace`]).
pub const TRACE_CAPACITY: usize = 1 << 20;

struct TraceBuffer {
    records: Vec<TraceRecord>,
    dropped: u64,
}

fn buffer() -> &'static Mutex<TraceBuffer> {
    static BUFFER: OnceLock<Mutex<TraceBuffer>> = OnceLock::new();
    BUFFER.get_or_init(|| {
        Mutex::new(TraceBuffer {
            records: Vec::new(),
            dropped: 0,
        })
    })
}

pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn push_record(name: &str, depth: u32, fields: Vec<(String, String)>) {
    let ts_micros = epoch().elapsed().as_micros() as u64;
    let mut buf = buffer().lock().expect("trace buffer");
    if buf.records.len() >= TRACE_CAPACITY {
        buf.dropped += 1;
        return;
    }
    buf.records.push(TraceRecord {
        ts_micros,
        name: name.to_string(),
        depth,
        fields,
    });
}

/// Record a user trace event (no-op below `trace` level). Prefer the
/// [`crate::event!`] macro, which skips evaluating its fields when off.
pub fn trace_event(name: &str, fields: Vec<(String, String)>) {
    if trace_enabled() {
        push_record(name, crate::span::current_depth(), fields);
    }
}

/// Take all buffered records (and the overflow-drop count), leaving the
/// buffer empty.
pub fn drain_trace() -> (Vec<TraceRecord>, u64) {
    let mut buf = buffer().lock().expect("trace buffer");
    let dropped = buf.dropped;
    buf.dropped = 0;
    (std::mem::take(&mut buf.records), dropped)
}

/// Render records as JSONL (one compact JSON object per line).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

/// Render a drained trace stream as a Chrome Trace Event Format document:
/// `span_enter`/`span_exit` pairs become `X` (complete) slices, everything
/// else an instant event. Assumes a single-threaded stream (spans pair
/// LIFO), which is what a lint run or any one-thread phase produces;
/// unclosed spans are dropped.
pub fn to_chrome_string(records: &[TraceRecord]) -> String {
    let field = |r: &TraceRecord, key: &str| {
        r.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    let mut events = Vec::new();
    let mut stack: Vec<(String, u64)> = Vec::new();
    for r in records {
        match r.name.as_str() {
            "span_enter" => {
                let name = field(r, "span").unwrap_or_else(|| "?".to_string());
                stack.push((name, r.ts_micros));
            }
            "span_exit" => {
                if let Some((name, start)) = stack.pop() {
                    events.push(Json::obj([
                        ("name".to_string(), Json::Str(name)),
                        ("cat".to_string(), Json::Str("span".to_string())),
                        ("ph".to_string(), Json::Str("X".to_string())),
                        ("ts".to_string(), Json::Num(start as f64)),
                        (
                            "dur".to_string(),
                            Json::Num(r.ts_micros.saturating_sub(start) as f64),
                        ),
                        ("pid".to_string(), Json::Num(1.0)),
                        ("tid".to_string(), Json::Num(1.0)),
                    ]));
                }
            }
            _ => {
                events.push(Json::obj([
                    ("name".to_string(), Json::Str(r.name.clone())),
                    ("cat".to_string(), Json::Str("event".to_string())),
                    ("ph".to_string(), Json::Str("i".to_string())),
                    ("s".to_string(), Json::Str("t".to_string())),
                    ("ts".to_string(), Json::Num(r.ts_micros as f64)),
                    ("pid".to_string(), Json::Num(1.0)),
                    ("tid".to_string(), Json::Num(1.0)),
                    (
                        "args".to_string(),
                        Json::obj(
                            r.fields
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone()))),
                        ),
                    ),
                ]));
            }
        }
    }
    Json::obj([("traceEvents".to_string(), Json::Arr(events))]).to_string_compact()
}

/// Parse a JSONL document produced by [`to_jsonl`].
pub fn from_jsonl(text: &str) -> Result<Vec<TraceRecord>, crate::json::ParseError> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line)?;
        out.push(TraceRecord::from_json(&v).ok_or(crate::json::ParseError {
            message: "not a trace record".to_string(),
            offset: 0,
        })?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trip() {
        let records = vec![
            TraceRecord {
                ts_micros: 10,
                name: "span_enter".into(),
                depth: 0,
                fields: vec![("span".into(), "petri.reach".into())],
            },
            TraceRecord {
                ts_micros: 52,
                name: "probe.failure".into(),
                depth: 1,
                fields: vec![
                    ("seed".into(), "24301".into()),
                    ("verdict".into(), "Deadlock".into()),
                ],
            },
        ];
        let text = to_jsonl(&records);
        assert_eq!(text.lines().count(), 2);
        assert_eq!(from_jsonl(&text).unwrap(), records);
    }

    #[test]
    fn from_jsonl_skips_blank_lines_rejects_garbage() {
        assert_eq!(from_jsonl("\n\n").unwrap(), vec![]);
        assert!(from_jsonl("{not json}\n").is_err());
    }

    #[test]
    fn chrome_rendering_pairs_spans_and_keeps_events() {
        let records = vec![
            TraceRecord {
                ts_micros: 10,
                name: "span_enter".into(),
                depth: 0,
                fields: vec![("span".into(), "jcc.check".into())],
            },
            TraceRecord {
                ts_micros: 20,
                name: "probe.hit".into(),
                depth: 1,
                fields: vec![("k".into(), "v".into())],
            },
            TraceRecord {
                ts_micros: 60,
                name: "span_exit".into(),
                depth: 0,
                fields: vec![("span".into(), "jcc.check".into())],
            },
        ];
        let text = to_chrome_string(&records);
        assert!(text.contains("\"traceEvents\""), "{text}");
        assert!(text.contains("\"jcc.check\""), "{text}");
        assert!(text.contains("\"dur\":50"), "{text}");
        assert!(text.contains("\"probe.hit\""), "{text}");
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("traceEvents").unwrap().as_arr().unwrap().len(), 2);
    }
}
