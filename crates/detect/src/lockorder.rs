//! Lock-order-graph deadlock detection (the LockTree idea the paper cites
//! from JPF's runtime analysis).
//!
//! Whenever a thread acquires lock `b` while holding lock `a`, the edge
//! `a → b` is added to the lock-order graph. A cycle in the graph means two
//! threads can acquire the same locks in opposite orders — the potential
//! deadlock the paper's FF-T2 row describes ("one thread continuously holds
//! the lock" from the victim's point of view).

use std::collections::{BTreeMap, BTreeSet};

use crate::normalize::{MonEvent, MonEventKind};

/// A cycle found in the lock-order graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockOrderCycle {
    /// The locks on the cycle, starting from the smallest id.
    pub locks: Vec<u64>,
}

/// The accumulated lock-order graph.
#[derive(Debug, Default)]
pub struct LockOrderGraph {
    /// edge a → b with the set of threads that exhibited it.
    edges: BTreeMap<u64, BTreeMap<u64, BTreeSet<u64>>>,
    held: BTreeMap<u64, Vec<u64>>,
}

impl LockOrderGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the graph from a whole event stream.
    pub fn build(events: &[MonEvent]) -> Self {
        let mut g = Self::new();
        for e in events {
            g.observe(e);
        }
        g
    }

    /// Feed one event.
    pub fn observe(&mut self, event: &MonEvent) {
        match event.kind {
            MonEventKind::Acquire(lock) => {
                let held = self.held.entry(event.thread).or_default();
                for &h in held.iter() {
                    if h != lock {
                        self.edges
                            .entry(h)
                            .or_default()
                            .entry(lock)
                            .or_default()
                            .insert(event.thread);
                    }
                }
                held.push(lock);
            }
            MonEventKind::Release(lock) => {
                if let Some(held) = self.held.get_mut(&event.thread) {
                    if let Some(pos) = held.iter().rposition(|&h| h == lock) {
                        held.remove(pos);
                    }
                }
            }
            _ => {}
        }
    }

    /// Edges as (from, to, threads) triples.
    pub fn edges(&self) -> Vec<(u64, u64, Vec<u64>)> {
        let mut out = Vec::new();
        for (&a, targets) in &self.edges {
            for (&b, threads) in targets {
                out.push((a, b, threads.iter().copied().collect()));
            }
        }
        out
    }

    /// Find all elementary cycles' node sets (reported once per strongly
    /// connected component with ≥ 2 nodes, or a self-loop).
    pub fn cycles(&self) -> Vec<LockOrderCycle> {
        // Tarjan-style SCC over the small graph.
        let nodes: Vec<u64> = self
            .edges
            .iter()
            .flat_map(|(&a, ts)| std::iter::once(a).chain(ts.keys().copied()))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let index_of: BTreeMap<u64, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let n = nodes.len();
        let adj: Vec<Vec<usize>> = nodes
            .iter()
            .map(|a| {
                self.edges
                    .get(a)
                    .map(|ts| ts.keys().map(|b| index_of[b]).collect())
                    .unwrap_or_default()
            })
            .collect();

        let mut sccs = tarjan(n, &adj);
        sccs.retain(|scc| {
            scc.len() > 1 || adj[scc[0]].contains(&scc[0]) // self-loop
        });
        sccs.into_iter()
            .map(|mut scc| {
                scc.sort_unstable();
                LockOrderCycle {
                    locks: scc.into_iter().map(|i| nodes[i]).collect(),
                }
            })
            .collect()
    }

    /// True when the graph has no cycles — a consistent global lock order
    /// exists.
    pub fn is_acyclic(&self) -> bool {
        self.cycles().is_empty()
    }
}

fn tarjan(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeInfo {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    struct State<'a> {
        adj: &'a [Vec<usize>],
        info: Vec<NodeInfo>,
        stack: Vec<usize>,
        next_index: usize,
        sccs: Vec<Vec<usize>>,
    }
    fn strongconnect(v: usize, st: &mut State<'_>) {
        st.info[v].index = Some(st.next_index);
        st.info[v].lowlink = st.next_index;
        st.next_index += 1;
        st.stack.push(v);
        st.info[v].on_stack = true;
        for i in 0..st.adj[v].len() {
            let w = st.adj[v][i];
            if st.info[w].index.is_none() {
                strongconnect(w, st);
                st.info[v].lowlink = st.info[v].lowlink.min(st.info[w].lowlink);
            } else if st.info[w].on_stack {
                st.info[v].lowlink = st.info[v].lowlink.min(st.info[w].index.unwrap());
            }
        }
        if Some(st.info[v].lowlink) == st.info[v].index {
            let mut scc = Vec::new();
            loop {
                let w = st.stack.pop().unwrap();
                st.info[w].on_stack = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            st.sccs.push(scc);
        }
    }
    let mut st = State {
        adj,
        info: vec![
            NodeInfo {
                index: None,
                lowlink: 0,
                on_stack: false
            };
            n
        ],
        stack: Vec::new(),
        next_index: 0,
        sccs: Vec::new(),
    };
    for v in 0..n {
        if st.info[v].index.is_none() {
            strongconnect(v, &mut st);
        }
    }
    st.sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acq(thread: u64, lock: u64) -> MonEvent {
        MonEvent {
            thread,
            kind: MonEventKind::Acquire(lock),
        }
    }
    fn rel(thread: u64, lock: u64) -> MonEvent {
        MonEvent {
            thread,
            kind: MonEventKind::Release(lock),
        }
    }

    #[test]
    fn consistent_order_is_acyclic() {
        let events = vec![
            acq(1, 1),
            acq(1, 2),
            rel(1, 2),
            rel(1, 1),
            acq(2, 1),
            acq(2, 2),
            rel(2, 2),
            rel(2, 1),
        ];
        let g = LockOrderGraph::build(&events);
        assert!(g.is_acyclic());
        assert_eq!(g.edges().len(), 1);
    }

    #[test]
    fn opposite_orders_cycle() {
        let events = vec![
            acq(1, 1),
            acq(1, 2),
            rel(1, 2),
            rel(1, 1),
            acq(2, 2),
            acq(2, 1),
            rel(2, 1),
            rel(2, 2),
        ];
        let g = LockOrderGraph::build(&events);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec![1, 2]);
    }

    #[test]
    fn three_lock_rotation_cycles() {
        let events = vec![
            acq(1, 1),
            acq(1, 2),
            rel(1, 2),
            rel(1, 1),
            acq(2, 2),
            acq(2, 3),
            rel(2, 3),
            rel(2, 2),
            acq(3, 3),
            acq(3, 1),
            rel(3, 1),
            rel(3, 3),
        ];
        let g = LockOrderGraph::build(&events);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec![1, 2, 3]);
    }

    #[test]
    fn wait_release_breaks_nesting() {
        // Thread holds 1, acquires 2, releases 2 via wait, re-acquires:
        // still just edge 1 -> 2.
        let events = vec![acq(1, 1), acq(1, 2), rel(1, 2), acq(1, 2)];
        let g = LockOrderGraph::build(&events);
        assert!(g.is_acyclic());
    }

    #[test]
    fn lock_order_component_detected_via_vm() {
        use jcc_vm::{compile, CallSpec, RunConfig, ThreadSpec, Vm};
        let c = jcc_model::examples::lock_order_deadlock();
        // A single thread running both methods sequentially exhibits both
        // acquisition orders without deadlocking — the detector predicts the
        // deadlock a concurrent run could hit.
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![ThreadSpec {
                name: "t".into(),
                calls: vec![
                    CallSpec::new("forward", vec![]),
                    CallSpec::new("backward", vec![]),
                ],
            }],
        );
        let out = vm.run(&RunConfig::default());
        let norm = crate::normalize::from_vm_trace(&out.trace);
        let g = LockOrderGraph::build(&norm);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1, "opposite lock orders must cycle");
        // Locks 1 and 2 are `a` and `b` (0 is `this`).
        assert_eq!(cycles[0].locks, vec![1, 2]);
    }

    #[test]
    fn edges_record_threads() {
        let events = vec![acq(7, 1), acq(7, 2)];
        let g = LockOrderGraph::build(&events);
        let edges = g.edges();
        assert_eq!(edges, vec![(1, 2, vec![7])]);
    }

    #[test]
    fn dining_philosophers_cycle_predicted_and_fix_verified() {
        use jcc_vm::{compile, CallSpec, RunConfig, ThreadSpec, Vm};
        // The circular version: one probe thread runs all three eats;
        // the lock-order graph must contain the 3-cycle.
        let bad = jcc_model::examples::dining_deadlock();
        let mut vm = Vm::new(
            compile(&bad).unwrap(),
            vec![ThreadSpec {
                name: "probe".into(),
                calls: vec![
                    CallSpec::new("eat0", vec![]),
                    CallSpec::new("eat1", vec![]),
                    CallSpec::new("eat2", vec![]),
                ],
            }],
        );
        let out = vm.run(&RunConfig::default());
        let g = LockOrderGraph::build(&crate::normalize::from_vm_trace(&out.trace));
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks.len(), 3);

        // The hierarchy-ordered version: acyclic.
        let good = jcc_model::examples::dining_ordered();
        let mut vm = Vm::new(
            compile(&good).unwrap(),
            vec![ThreadSpec {
                name: "probe".into(),
                calls: vec![
                    CallSpec::new("eat0", vec![]),
                    CallSpec::new("eat1", vec![]),
                    CallSpec::new("eat2", vec![]),
                ],
            }],
        );
        let out = vm.run(&RunConfig::default());
        let g = LockOrderGraph::build(&crate::normalize::from_vm_trace(&out.trace));
        assert!(g.is_acyclic());
    }

    #[test]
    fn dining_deadlock_confirmed_and_fix_holds_exhaustively() {
        use jcc_vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Vm};
        let philosophers = |component: &jcc_model::Component| {
            let vm = Vm::new(
                compile(component).unwrap(),
                (0..3)
                    .map(|i| ThreadSpec {
                        name: format!("p{i}"),
                        calls: vec![CallSpec::new(format!("eat{i}"), vec![])],
                    })
                    .collect(),
            );
            explore(vm, &ExploreConfig::default(), None)
        };
        let bad = philosophers(&jcc_model::examples::dining_deadlock());
        assert!(bad.deadlock_paths > 0, "circular wait must deadlock somewhere");
        let good = philosophers(&jcc_model::examples::dining_ordered());
        assert_eq!(good.deadlock_paths, 0, "resource hierarchy prevents deadlock");
        assert!(good.completed_paths > 0);
    }
}
