//! The Eraser lockset algorithm (Savage, Burrows, Nelson, Sobalvarro &
//! Anderson 1997) — the dynamic data-race detector the paper cites as the
//! technique for FF-T1 (interference).
//!
//! Per shared variable, the analyzer tracks a state machine and a candidate
//! lockset `C(v)`:
//!
//! * **Virgin** → first access moves to **Exclusive(t)** (one thread only —
//!   initialization is exempt),
//! * a second thread moves to **Shared** (reads) or **SharedModified**
//!   (writes), refining `C(v)` to the intersection of locks held at each
//!   access,
//! * an empty `C(v)` in **SharedModified** is a race report.

use std::collections::{BTreeSet, HashMap};

use crate::normalize::{MonEvent, MonEventKind};

#[derive(Debug, Clone, PartialEq, Eq)]
enum VarState {
    Virgin,
    Exclusive(u64),
    Shared,
    SharedModified,
}

/// A reported potential race on one variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The variable.
    pub var: String,
    /// Whether the offending access was a write.
    pub on_write: bool,
    /// The accessing thread.
    pub thread: u64,
    /// Index of the offending event in the analyzed stream.
    pub event_index: usize,
}

/// The lockset analyzer. Feed events with [`LocksetAnalyzer::observe`] or
/// run a whole stream with [`LocksetAnalyzer::analyze`].
#[derive(Debug, Default)]
pub struct LocksetAnalyzer {
    held: HashMap<u64, BTreeSet<u64>>,
    state: HashMap<String, VarState>,
    candidates: HashMap<String, BTreeSet<u64>>,
    reported: BTreeSet<String>,
    races: Vec<RaceReport>,
    index: usize,
}

impl LocksetAnalyzer {
    /// A fresh analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run the whole stream and return the race reports.
    pub fn analyze(events: &[MonEvent]) -> Vec<RaceReport> {
        let mut a = Self::new();
        for e in events {
            a.observe(e);
        }
        a.into_races()
    }

    /// Locks currently held by `thread` as far as the analyzer has seen.
    pub fn held_by(&self, thread: u64) -> BTreeSet<u64> {
        self.held.get(&thread).cloned().unwrap_or_default()
    }

    /// Feed one event.
    pub fn observe(&mut self, event: &MonEvent) {
        match &event.kind {
            MonEventKind::Acquire(lock) => {
                self.held.entry(event.thread).or_default().insert(*lock);
            }
            MonEventKind::Release(lock) => {
                if let Some(set) = self.held.get_mut(&event.thread) {
                    set.remove(lock);
                }
            }
            MonEventKind::Read(var) => self.access(event.thread, var, false),
            MonEventKind::Write(var) => self.access(event.thread, var, true),
        }
        self.index += 1;
    }

    fn access(&mut self, thread: u64, var: &str, is_write: bool) {
        let held = self.held.get(&thread).cloned().unwrap_or_default();
        let state = self
            .state
            .get(var)
            .cloned()
            .unwrap_or(VarState::Virgin);
        let next = match (&state, is_write) {
            (VarState::Virgin, _) => VarState::Exclusive(thread),
            (VarState::Exclusive(t), _) if *t == thread => VarState::Exclusive(thread),
            (VarState::Exclusive(_), false) => {
                // Second thread reads: enter Shared, initialize candidates.
                self.candidates.insert(var.to_string(), held.clone());
                VarState::Shared
            }
            (VarState::Exclusive(_), true) => {
                self.candidates.insert(var.to_string(), held.clone());
                VarState::SharedModified
            }
            (VarState::Shared, false) => {
                self.refine(var, &held);
                VarState::Shared
            }
            (VarState::Shared, true) => {
                self.refine(var, &held);
                VarState::SharedModified
            }
            (VarState::SharedModified, _) => {
                self.refine(var, &held);
                VarState::SharedModified
            }
        };
        let in_shared_modified = next == VarState::SharedModified;
        self.state.insert(var.to_string(), next);
        if in_shared_modified
            && self
                .candidates
                .get(var)
                .map(BTreeSet::is_empty)
                .unwrap_or(false)
            && self.reported.insert(var.to_string())
        {
            self.races.push(RaceReport {
                var: var.to_string(),
                on_write: is_write,
                thread,
                event_index: self.index,
            });
        }
    }

    fn refine(&mut self, var: &str, held: &BTreeSet<u64>) {
        if let Some(c) = self.candidates.get_mut(var) {
            *c = c.intersection(held).copied().collect();
        }
    }

    /// Finish and return the reports.
    pub fn into_races(self) -> Vec<RaceReport> {
        self.races
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acq(thread: u64, lock: u64) -> MonEvent {
        MonEvent {
            thread,
            kind: MonEventKind::Acquire(lock),
        }
    }
    fn rel(thread: u64, lock: u64) -> MonEvent {
        MonEvent {
            thread,
            kind: MonEventKind::Release(lock),
        }
    }
    fn rd(thread: u64, var: &str) -> MonEvent {
        MonEvent {
            thread,
            kind: MonEventKind::Read(var.to_string()),
        }
    }
    fn wr(thread: u64, var: &str) -> MonEvent {
        MonEvent {
            thread,
            kind: MonEventKind::Write(var.to_string()),
        }
    }

    #[test]
    fn consistently_locked_variable_is_clean() {
        let events = vec![
            acq(1, 10),
            wr(1, "x"),
            rel(1, 10),
            acq(2, 10),
            wr(2, "x"),
            rel(2, 10),
            acq(1, 10),
            rd(1, "x"),
            rel(1, 10),
        ];
        assert!(LocksetAnalyzer::analyze(&events).is_empty());
    }

    #[test]
    fn unlocked_shared_write_is_a_race() {
        let events = vec![wr(1, "x"), wr(2, "x")];
        let races = LocksetAnalyzer::analyze(&events);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].var, "x");
        assert!(races[0].on_write);
        assert_eq!(races[0].thread, 2);
    }

    #[test]
    fn initialization_by_single_thread_exempt() {
        // One thread reads and writes without locks: no race.
        let events = vec![wr(1, "x"), rd(1, "x"), wr(1, "x")];
        assert!(LocksetAnalyzer::analyze(&events).is_empty());
    }

    #[test]
    fn read_shared_without_locks_not_reported_until_written() {
        // Threads only read after initialization: Shared, never
        // SharedModified — Eraser stays quiet.
        let events = vec![wr(1, "x"), rd(2, "x"), rd(3, "x")];
        assert!(LocksetAnalyzer::analyze(&events).is_empty());
        // A later unprotected write tips it into a race.
        let mut events = events;
        events.push(wr(3, "x"));
        let races = LocksetAnalyzer::analyze(&events);
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn inconsistent_locks_detected() {
        // Thread 1 protects x with lock 10, thread 2 with lock 20. The
        // candidate set starts at {20} on the first shared access and the
        // third access intersects it to ∅.
        let events = vec![
            acq(1, 10),
            wr(1, "x"),
            rel(1, 10),
            acq(2, 20),
            wr(2, "x"),
            rel(2, 20),
            acq(1, 10),
            wr(1, "x"),
            rel(1, 10),
        ];
        let races = LocksetAnalyzer::analyze(&events);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].thread, 1);
    }

    #[test]
    fn one_report_per_variable() {
        let events = vec![wr(1, "x"), wr(2, "x"), wr(1, "x"), wr(2, "x")];
        assert_eq!(LocksetAnalyzer::analyze(&events).len(), 1);
    }

    #[test]
    fn distinct_variables_reported_separately() {
        let events = vec![wr(1, "x"), wr(2, "x"), wr(1, "y"), wr(2, "y")];
        let races = LocksetAnalyzer::analyze(&events);
        let vars: Vec<_> = races.iter().map(|r| r.var.clone()).collect();
        assert_eq!(vars, vec!["x", "y"]);
    }

    #[test]
    fn reentrant_holding_keeps_protection() {
        // Release of one of two held locks keeps the other protecting x.
        let events = vec![
            acq(1, 10),
            acq(1, 20),
            wr(1, "x"),
            rel(1, 20),
            rel(1, 10),
            acq(2, 10),
            wr(2, "x"),
            rel(2, 10),
        ];
        assert!(LocksetAnalyzer::analyze(&events).is_empty());
    }

    #[test]
    fn racy_counter_component_detected_via_vm() {
        use jcc_vm::{compile, CallSpec, RunConfig, Scheduler, ThreadSpec, Vm};
        let c = jcc_model::examples::racy_counter();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "a".into(),
                    calls: vec![CallSpec::new("increment", vec![])],
                },
                ThreadSpec {
                    name: "b".into(),
                    calls: vec![CallSpec::new("increment", vec![])],
                },
            ],
        );
        let out = vm.run(&RunConfig {
            scheduler: Scheduler::RoundRobin,
            max_steps: 10_000,
        });
        let norm = crate::normalize::from_vm_trace(&out.trace);
        let races = LocksetAnalyzer::analyze(&norm);
        assert!(
            races.iter().any(|r| r.var == "count"),
            "unsynchronized counter must race: {races:?}"
        );
    }
}
