//! The completion-time oracle — "check completion time of call", the
//! detection technique Table 1 lists for T3, T4 and T5 failures.
//!
//! The tester states, per scheduled call, when it should complete on the
//! abstract clock; deviations are classified:
//!
//! * completed **too early** — the thread did not wait when it should have
//!   (FF-T3), or re-entered the critical section prematurely (EF-T5),
//! * completed **too late** — erroneous suspension (EF-T3),
//! * **never completed** — permanently suspended: never notified (FF-T5),
//!   blocked on a retained lock (FF-T2, caused by another thread's FF-T4),
//!   or erroneously waiting with nobody to wake it (EF-T3),
//! * completed although it should have stayed suspended — FF-T3 again (the
//!   call barged through its guard).

use jcc_clock::CallRecord;
use jcc_petri::{Deviation, FailureClass, Transition};

/// When a call is expected to complete (in abstract clock units).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionExpectation {
    /// Exactly at clock time `t`.
    At(u64),
    /// At any time up to and including `t`.
    By(u64),
    /// Between the two times inclusive.
    Between(u64, u64),
    /// Never (the call must stay suspended for the whole schedule).
    Never,
}

/// An expectation for one labelled call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    /// The schedule label the expectation applies to.
    pub label: String,
    /// The expected completion.
    pub expect: CompletionExpectation,
}

impl Expectation {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, expect: CompletionExpectation) -> Self {
        Expectation {
            label: label.into(),
            expect,
        }
    }
}

/// How a call deviated from its expectation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletionDeviation {
    /// Completed before the earliest allowed time.
    TooEarly {
        /// Observed completion time.
        at: u64,
        /// Earliest allowed.
        earliest: u64,
    },
    /// Completed after the latest allowed time.
    TooLate {
        /// Observed completion time.
        at: u64,
        /// Latest allowed.
        latest: u64,
    },
    /// Never completed although completion was expected.
    NeverCompleted,
    /// Completed although it was expected to stay suspended.
    UnexpectedCompletion {
        /// Observed completion time.
        at: u64,
    },
    /// The schedule has no record for this expectation's label.
    MissingRecord,
}

/// A violated expectation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The call's label.
    pub label: String,
    /// What was expected.
    pub expected: CompletionExpectation,
    /// How it deviated.
    pub deviation: CompletionDeviation,
}

impl Violation {
    /// The Table-1 failure classes this deviation points at, most likely
    /// first. The completion-time technique narrows the failure down to a
    /// small candidate set; pinning it exactly needs the arc context
    /// (which CoFG arc the call was exercising).
    pub fn candidate_classes(&self) -> Vec<FailureClass> {
        use Deviation::*;
        use Transition::*;
        match &self.deviation {
            CompletionDeviation::TooEarly { .. } | CompletionDeviation::UnexpectedCompletion { .. } => vec![
                FailureClass::new(FailureToFire, T3),
                FailureClass::new(ErroneousFiring, T5),
                FailureClass::new(ErroneousFiring, T4),
            ],
            CompletionDeviation::TooLate { .. } => vec![
                FailureClass::new(ErroneousFiring, T3),
                FailureClass::new(FailureToFire, T5),
            ],
            CompletionDeviation::NeverCompleted => vec![
                FailureClass::new(FailureToFire, T5),
                FailureClass::new(FailureToFire, T2),
                FailureClass::new(ErroneousFiring, T3),
                FailureClass::new(FailureToFire, T4),
            ],
            CompletionDeviation::MissingRecord => vec![],
        }
    }
}

/// Check a set of call records against expectations. Records without an
/// expectation are ignored; expectations without a record produce a
/// [`CompletionDeviation::MissingRecord`] violation.
pub fn check_completions(
    records: &[CallRecord],
    expectations: &[Expectation],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for exp in expectations {
        let Some(record) = records.iter().find(|r| r.label == exp.label) else {
            out.push(Violation {
                label: exp.label.clone(),
                expected: exp.expect,
                deviation: CompletionDeviation::MissingRecord,
            });
            continue;
        };
        let (earliest, latest) = match exp.expect {
            CompletionExpectation::At(t) => (t, Some(t)),
            CompletionExpectation::By(t) => (0, Some(t)),
            CompletionExpectation::Between(a, b) => (a, Some(b)),
            CompletionExpectation::Never => (u64::MAX, None),
        };
        match record.completed_at {
            None => {
                if !matches!(exp.expect, CompletionExpectation::Never) {
                    out.push(Violation {
                        label: exp.label.clone(),
                        expected: exp.expect,
                        deviation: CompletionDeviation::NeverCompleted,
                    });
                }
            }
            Some(at) => {
                if matches!(exp.expect, CompletionExpectation::Never) {
                    out.push(Violation {
                        label: exp.label.clone(),
                        expected: exp.expect,
                        deviation: CompletionDeviation::UnexpectedCompletion { at },
                    });
                } else if at < earliest {
                    out.push(Violation {
                        label: exp.label.clone(),
                        expected: exp.expect,
                        deviation: CompletionDeviation::TooEarly { at, earliest },
                    });
                } else if let Some(l) = latest {
                    if at > l {
                        out.push(Violation {
                            label: exp.label.clone(),
                            expected: exp.expect,
                            deviation: CompletionDeviation::TooLate { at, latest: l },
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, completed_at: Option<u64>) -> CallRecord {
        CallRecord {
            label: label.to_string(),
            released_at: 1,
            completed_at,
        }
    }

    #[test]
    fn exact_time_match_passes() {
        let v = check_completions(
            &[record("a", Some(3))],
            &[Expectation::new("a", CompletionExpectation::At(3))],
        );
        assert!(v.is_empty());
    }

    #[test]
    fn too_early_detected() {
        let v = check_completions(
            &[record("a", Some(1))],
            &[Expectation::new("a", CompletionExpectation::At(3))],
        );
        assert_eq!(v.len(), 1);
        assert_eq!(
            v[0].deviation,
            CompletionDeviation::TooEarly { at: 1, earliest: 3 }
        );
        let classes = v[0].candidate_classes();
        assert_eq!(classes[0].code(), "FF-T3");
    }

    #[test]
    fn too_late_detected() {
        let v = check_completions(
            &[record("a", Some(9))],
            &[Expectation::new("a", CompletionExpectation::Between(2, 4))],
        );
        assert_eq!(
            v[0].deviation,
            CompletionDeviation::TooLate { at: 9, latest: 4 }
        );
        assert_eq!(v[0].candidate_classes()[0].code(), "EF-T3");
    }

    #[test]
    fn never_completed_detected() {
        let v = check_completions(
            &[record("a", None)],
            &[Expectation::new("a", CompletionExpectation::By(5))],
        );
        assert_eq!(v[0].deviation, CompletionDeviation::NeverCompleted);
        let codes: Vec<String> = v[0]
            .candidate_classes()
            .iter()
            .map(|c| c.code())
            .collect();
        assert!(codes.contains(&"FF-T5".to_string()));
        assert!(codes.contains(&"FF-T2".to_string()));
    }

    #[test]
    fn expected_suspension_ok_and_violated() {
        let ok = check_completions(
            &[record("a", None)],
            &[Expectation::new("a", CompletionExpectation::Never)],
        );
        assert!(ok.is_empty());
        let bad = check_completions(
            &[record("a", Some(2))],
            &[Expectation::new("a", CompletionExpectation::Never)],
        );
        assert_eq!(
            bad[0].deviation,
            CompletionDeviation::UnexpectedCompletion { at: 2 }
        );
    }

    #[test]
    fn by_and_between_bounds() {
        let v = check_completions(
            &[record("a", Some(5)), record("b", Some(2))],
            &[
                Expectation::new("a", CompletionExpectation::By(5)),
                Expectation::new("b", CompletionExpectation::Between(2, 3)),
            ],
        );
        assert!(v.is_empty());
    }

    #[test]
    fn missing_record_reported() {
        let v = check_completions(
            &[],
            &[Expectation::new("ghost", CompletionExpectation::At(1))],
        );
        assert_eq!(v[0].deviation, CompletionDeviation::MissingRecord);
        assert!(v[0].candidate_classes().is_empty());
    }

    #[test]
    fn unexpected_records_ignored() {
        let v = check_completions(
            &[record("extra", Some(1))],
            &[],
        );
        assert!(v.is_empty());
    }
}
