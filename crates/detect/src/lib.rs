//! # jcc-detect — failure detectors and Table-1 classification
//!
//! Section 5 of the paper annotates every failure class with a detection
//! technique: static/dynamic race analysis for FF-T1, lock analysis for
//! FF-T2, and *check call completion time* for nearly everything else.
//! This crate implements those detectors over the traces the rest of the
//! workspace produces:
//!
//! * [`lockset`] — the Eraser algorithm (Savage et al., cited by the paper
//!   as the dynamic detector for interference / FF-T1),
//! * [`hb`] — a precise happens-before (vector-clock) race detector in the
//!   DJIT⁺ family (the paper cites Choi et al.'s precise datarace
//!   detection as the refined alternative),
//! * [`lockorder`] — lock-order-graph cycle detection (the LockTree idea the
//!   paper cites from JPF's runtime analysis; FF-T2/FF-T4),
//! * [`completion`] — the completion-time oracle of the ConAn method
//!   (FF-T3, EF-T3, EF-T4, FF-T5, EF-T5),
//! * [`classify`] — mapping detector output and VM verdicts onto the ten
//!   [`FailureClass`](jcc_petri::FailureClass)es of Table 1.
//!
//! Both event sources — the native runtime's [`jcc_runtime::EventLog`] and
//! the VM's [`jcc_vm::TraceEvent`] stream — normalize into one monitor-event
//! shape ([`normalize`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod completion;
pub mod hb;
pub mod lockorder;
pub mod lockset;
pub mod normalize;

pub use classify::{
    classify_explore, classify_lost_notifications, classify_outcome, classify_runtime_events,
    classify_trace_events, Finding,
};
pub use hb::{HbAnalyzer, HbRace};
pub use completion::{check_completions, CompletionExpectation, Expectation, Violation};
pub use lockorder::{LockOrderCycle, LockOrderGraph};
pub use lockset::{LocksetAnalyzer, RaceReport};
pub use normalize::{from_runtime_log, from_vm_trace, MonEvent, MonEventKind};
